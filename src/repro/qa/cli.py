"""Command-line entry points for the differential-testing harness.

``python -m repro.qa fuzz``     — run seeded fuzz cases through the matrix.
``python -m repro.qa replay``   — re-execute a saved failure bundle.
``python -m repro.qa selftest`` — prove the harness catches seeded defects.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.qa.bundle import ReplayBundle
from repro.qa.fuzzer import PlanFuzzer
from repro.qa.mutations import MUTATIONS, mutation_by_name
from repro.qa.oracles import evaluate
from repro.qa.runner import run_case
from repro.qa.shrinker import shrink

DEFAULT_BUNDLE_DIR = Path("qa-failures")


def cmd_fuzz(args: argparse.Namespace) -> int:
    fuzzer = PlanFuzzer(seed=args.seed, max_ops=args.max_ops)
    mutation = mutation_by_name(args.mutate) if args.mutate else None
    failures = 0
    started = time.monotonic()
    for index in range(args.n):
        case = fuzzer.case(index)
        violations = evaluate(run_case(case, mutation=mutation))
        if not violations:
            if args.verbose:
                print(f"case {index:3d} ok    {case.plan.describe()}")
            continue
        failures += 1
        print(f"case {index:3d} FAIL  {case.plan.describe()}")
        for violation in violations:
            print(f"    {violation}")
        if args.shrink:
            result = shrink(case, mutation=mutation)
            print(
                f"    shrunk to {result.case.plan.op_count()} ops / "
                f"{result.case.corpus.n_records} records in "
                f"{result.evaluations} evaluations: "
                f"{result.case.plan.describe()}"
            )
            bundle = ReplayBundle.capture(
                result.case, result.violations, mutation=args.mutate
            )
        else:
            bundle = ReplayBundle.capture(case, violations, mutation=args.mutate)
        path = Path(args.out) / f"case-{args.seed}-{index}.json"
        bundle.save(path)
        print(f"    bundle: {path}")
        if args.fail_fast:
            break
    elapsed = time.monotonic() - started
    print(
        f"fuzz: {args.n} cases, {failures} failing, seed {args.seed} "
        f"({elapsed:.1f}s)"
    )
    return 1 if failures else 0


def cmd_replay(args: argparse.Namespace) -> int:
    bundle = ReplayBundle.load(args.bundle)
    print(f"replaying {args.bundle}")
    print(f"  plan:    {bundle.case.plan.describe()}")
    print(f"  corpus:  seed={bundle.case.corpus.seed} "
          f"n={bundle.case.corpus.n_records}")
    if bundle.mutation:
        print(f"  mutation: {bundle.mutation}")
    violations, reproduced = bundle.replay()
    for violation in violations:
        print(f"  {violation}")
    if bundle.expected_oracles:
        status = "reproduced" if reproduced else "NOT reproduced"
        print(f"  expected oracles {bundle.expected_oracles}: {status}")
        return 0 if reproduced else 1
    print(f"  clean capture: {'still clean' if reproduced else 'now failing'}")
    return 0 if reproduced else 1


def cmd_selftest(args: argparse.Namespace) -> int:
    """Prove each seeded defect is caught and shrinks to a tiny repro."""
    fuzzer = PlanFuzzer(seed=args.seed, max_ops=args.max_ops)
    exit_code = 0
    for name, mutation in sorted(MUTATIONS.items()):
        caught = None
        for index in range(args.n):
            case = fuzzer.case(index)
            violations = evaluate(run_case(case, mutation=mutation))
            if any(v.oracle == mutation.expected_oracle for v in violations):
                caught = (case, violations)
                break
        if caught is None:
            print(f"{name}: NOT caught in {args.n} cases — harness is blind")
            exit_code = 1
            continue
        case, violations = caught
        result = shrink(case, mutation=mutation)
        ops = result.case.plan.op_count()
        oracles = sorted({v.oracle for v in result.violations})
        ok = (
            ops <= args.max_repro_ops
            and mutation.expected_oracle in oracles
        )
        print(
            f"{name}: caught by {oracles} on case {case.index}, "
            f"shrunk to {ops} ops / {result.case.corpus.n_records} records "
            f"({result.evaluations} evaluations)"
            + ("" if ok else "  FAILED self-test criteria")
        )
        if args.out:
            bundle = ReplayBundle.capture(
                result.case, result.violations, mutation=name
            )
            path = Path(args.out) / f"selftest-{name}.json"
            bundle.save(path)
            print(f"    bundle: {path}")
        if not ok:
            exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Plan-space differential testing harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run seeded fuzz cases")
    fuzz.add_argument("--n", type=int, default=20, help="number of cases")
    fuzz.add_argument("--seed", type=int, default=0, help="fuzzer seed")
    fuzz.add_argument("--max-ops", type=int, default=5)
    fuzz.add_argument("--mutate", choices=sorted(MUTATIONS),
                      help="apply a seeded runtime defect")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="skip delta-debugging failures")
    fuzz.add_argument("--fail-fast", action="store_true")
    fuzz.add_argument("--out", default=str(DEFAULT_BUNDLE_DIR),
                      help="directory for failure bundles")
    fuzz.add_argument("--verbose", action="store_true")
    fuzz.set_defaults(fn=cmd_fuzz)

    replay = sub.add_parser("replay", help="re-execute a failure bundle")
    replay.add_argument("bundle", help="path to a replay bundle JSON")
    replay.set_defaults(fn=cmd_replay)

    selftest = sub.add_parser(
        "selftest", help="verify seeded defects are caught and shrunk"
    )
    selftest.add_argument("--n", type=int, default=25,
                          help="max cases to try per mutation")
    selftest.add_argument("--seed", type=int, default=0)
    selftest.add_argument("--max-ops", type=int, default=5)
    selftest.add_argument("--max-repro-ops", type=int, default=3,
                          help="shrunk repro must be at most this many ops")
    selftest.add_argument("--out", help="directory for selftest bundles")
    selftest.set_defaults(fn=cmd_selftest)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
