"""Equivalence and invariant oracles over a case's observation matrix.

Each oracle inspects a :class:`~repro.qa.runner.CaseRun` and yields
:class:`Violation` objects.  An honest runtime produces none; the oracles
are calibrated so that every asserted property is a *contract* of the
runtime (documented in ``configs.py``'s answer classes), not a statistical
tendency — a violation is a bug, never noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isfinite

#: Slack for float comparisons on dollar totals.
COST_EPS = 1e-9
#: Slack for virtual-time comparisons.
TIME_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one matrix cell."""

    oracle: str
    spec: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.spec}: {self.message}"


def check_no_errors(run) -> list[Violation]:
    """No configuration may raise out of the runtime."""
    violations = []
    for name, observations in run.observations.items():
        for observation in observations:
            if observation.error is not None:
                violations.append(
                    Violation("no-errors", name, observation.error)
                )
    return violations


def check_determinism(run) -> list[Violation]:
    """Re-running the identical config must reproduce the identical result."""
    violations = []
    for name, observations in run.observations.items():
        if len(observations) < 2:
            continue
        first, second = observations[0], observations[1]
        if first.error or second.error:
            continue  # no-errors already flags these
        if first.records != second.records:
            violations.append(
                Violation("determinism", name, "records differ between reruns")
            )
        if abs(first.total_cost_usd - second.total_cost_usd) > COST_EPS:
            violations.append(
                Violation(
                    "determinism", name,
                    f"cost differs between reruns: "
                    f"{first.total_cost_usd} vs {second.total_cost_usd}",
                )
            )
        if abs(first.total_time_s - second.total_time_s) > TIME_EPS:
            violations.append(
                Violation(
                    "determinism", name,
                    f"time differs between reruns: "
                    f"{first.total_time_s} vs {second.total_time_s}",
                )
            )
    return violations


def check_exec_equivalence(run) -> list[Violation]:
    """Execution mechanics must not change the answer.

    Records (uids and fields, in order) are bit-identical across the exec
    class.  Cost is compared against the barrier run as an upper bound:
    pipelined early-exit pushdown may only ever *save* calls.
    """
    violations = []
    baseline = run.first("baseline")
    if baseline is None or baseline.error:
        return violations
    barrier = run.first("barrier")
    for observation in run.by_class("exec"):
        name = observation.spec.name
        if name == "baseline" or observation.error:
            continue
        if observation.records != baseline.records:
            detail = _first_diff(baseline.records, observation.records)
            violations.append(
                Violation("exec-equivalence", name, f"records differ: {detail}")
            )
        if observation.truncated:
            violations.append(
                Violation("exec-equivalence", name, "truncated without a cap")
            )
        if barrier is not None and not barrier.error:
            if observation.total_cost_usd > barrier.total_cost_usd + COST_EPS:
                violations.append(
                    Violation(
                        "exec-equivalence", name,
                        f"cost {observation.total_cost_usd} exceeds barrier "
                        f"cost {barrier.total_cost_usd}",
                    )
                )
    # Note: wall-time is deliberately NOT compared across modes.  Batches
    # round up to whole waves, so an upstream filter that thins a batch can
    # legally make the pipelined makespan exceed the barrier stage-sum
    # (see ``QueryProcessorConfig.resolved_batch_size``).  Cost has no wave
    # rounding, so the dollar bound above is a real contract.
    return violations


def check_opt_equivalence(run) -> list[Violation]:
    """The max-quality optimizer must preserve the naive plan's answer."""
    violations = []
    baseline = run.first("baseline")
    if baseline is None or baseline.error:
        return violations
    for observation in run.by_class("opt"):
        if observation.error:
            continue
        if observation.records != baseline.records:
            detail = _first_diff(baseline.records, observation.records)
            violations.append(
                Violation(
                    "opt-equivalence", observation.spec.name,
                    f"optimized records differ from naive: {detail}",
                )
            )
    return violations


def check_policy_cost(run) -> list[Violation]:
    """Cost-seeking policies never choose a model pricier than the champion.

    The champion always meets its own agreement floor, so min-cost and
    balanced selection have it as a candidate — the chosen model's sampled
    cost-per-record is bounded by the champion's on every operator.
    """
    violations = []
    for observation in run.by_class("probe"):
        if observation.error or not observation.optimized:
            continue
        for label, chosen in observation.chosen_models.items():
            profiles = observation.profiles.get(label, {})
            champion = profiles.get(observation.champion_model)
            picked = profiles.get(chosen)
            if champion is None or picked is None:
                continue
            if picked.cost_per_record > champion.cost_per_record + COST_EPS:
                violations.append(
                    Violation(
                        "policy-cost", observation.spec.name,
                        f"{label}: chose {chosen} at "
                        f"{picked.cost_per_record}/record over champion at "
                        f"{champion.cost_per_record}/record",
                    )
                )
    return violations


def check_estimates(run) -> list[Violation]:
    """Optimizer estimates are finite and non-negative when present."""
    violations = []
    for answer_class in ("opt", "probe"):
        for observation in run.by_class(answer_class):
            if observation.error or observation.estimate_cost_usd is None:
                continue
            name = observation.spec.name
            for attr in ("estimate_cost_usd", "estimate_time_s",
                         "estimate_cardinality"):
                value = getattr(observation, attr)
                if value is None:
                    continue
                if not isfinite(value) or value < 0:
                    violations.append(
                        Violation("estimates", name, f"{attr} = {value}")
                    )
    return violations


def check_budget(run) -> list[Violation]:
    """Spend caps bound actual spend up to one guarded call saga.

    A guarded call may legally overshoot by its own saga — up to
    ``max_attempts`` billed attempts plus a fallback re-ask — so the
    allowance is ``2 * max_attempts * max_event_cost``.  Anything beyond
    that means a budget check was skipped.
    """
    violations = []
    budget_runs = sorted(
        (obs for obs in run.by_class("budget") if not obs.error),
        key=lambda obs: obs.spec.budget_fraction or 0.0,
    )
    for observation in budget_runs:
        cap = observation.max_cost_usd
        if cap is None:
            continue
        allowance = 2 * observation.max_attempts * observation.max_event_cost_usd
        if observation.total_cost_usd > cap + allowance + COST_EPS:
            violations.append(
                Violation(
                    "budget-cap", observation.spec.name,
                    f"spent {observation.total_cost_usd:.6f} against cap "
                    f"{cap:.6f} (allowance {allowance:.6f})",
                )
            )
    # Monotonicity: a tighter cap can never spend more than a looser one.
    for tighter, looser in zip(budget_runs, budget_runs[1:]):
        if tighter.total_cost_usd > looser.total_cost_usd + COST_EPS:
            violations.append(
                Violation(
                    "budget-monotonic", tighter.spec.name,
                    f"cap {tighter.max_cost_usd:.6f} spent "
                    f"{tighter.total_cost_usd:.6f} but looser cap "
                    f"{looser.max_cost_usd:.6f} spent "
                    f"{looser.total_cost_usd:.6f}",
                )
            )
    return violations


def check_reuse_equivalence(run) -> list[Violation]:
    """Warm runs against a primed MaterializationStore change nothing but cost.

    The reuse class runs the same spec cold then warm with a shared store
    and a fresh substrate per pass, so any difference is attributable to
    materialization replay.  Contract: the warm records are bit-identical
    to the cold records (and to the baseline's, since the spec shares the
    baseline's execution semantics), and replaying a materialized prefix
    can only ever save money.
    """
    violations = []
    baseline = run.first("baseline")
    for observation in run.by_class("reuse"):
        name = observation.spec.name
        if observation.error or observation.reuse_cold_records is None:
            continue
        if observation.records != observation.reuse_cold_records:
            detail = _first_diff(observation.reuse_cold_records, observation.records)
            violations.append(
                Violation(
                    "reuse-equivalence", name,
                    f"warm records differ from cold: {detail}",
                )
            )
        if observation.truncated:
            violations.append(
                Violation("reuse-equivalence", name, "truncated without a cap")
            )
        cold_cost = observation.reuse_cold_cost_usd or 0.0
        if observation.total_cost_usd > cold_cost + COST_EPS:
            violations.append(
                Violation(
                    "reuse-equivalence", name,
                    f"warm cost {observation.total_cost_usd} exceeds cold "
                    f"cost {cold_cost}",
                )
            )
        if baseline is not None and not baseline.error:
            if observation.records != baseline.records:
                detail = _first_diff(baseline.records, observation.records)
                violations.append(
                    Violation(
                        "reuse-equivalence", name,
                        f"warm records differ from baseline: {detail}",
                    )
                )
    return violations


def check_serve_equivalence(run) -> list[Violation]:
    """Serving a plan through the multi-tenant layer changes no answer.

    The serve class submits the same plan as two tenant sessions on one
    shared substrate with cross-query batching on.  Contract: the first
    tenant's records are bit-identical to the baseline's, and the peer
    tenant's records are bit-identical to the first tenant's — neither the
    cross-query schedule nor tenant-scoped caching may leak into answers.
    """
    violations = []
    baseline = run.first("baseline")
    for observation in run.by_class("serve"):
        name = observation.spec.name
        if observation.error:
            continue
        if baseline is not None and not baseline.error:
            if observation.records != baseline.records:
                detail = _first_diff(baseline.records, observation.records)
                violations.append(
                    Violation(
                        "serve-equivalence", name,
                        f"served records differ from baseline: {detail}",
                    )
                )
        if observation.serve_peer_records is not None:
            if observation.serve_peer_records != observation.records:
                detail = _first_diff(
                    observation.records, observation.serve_peer_records
                )
                violations.append(
                    Violation(
                        "serve-equivalence", name,
                        f"peer tenant records differ: {detail}",
                    )
                )
    return violations


def check_pushdown_equivalence(run) -> list[Violation]:
    """SQL pushdown and columnar batches change cost, never answers.

    The pushdown class re-runs the baseline spec with structured-prefix
    SQL compilation and/or columnar batches disabled.  The baseline runs
    with both on, so the contract is two-sided: records are bit-identical
    either way, and the pushed-down baseline never costs more than the
    row-at-a-time run — pruning records before the first LLM operator can
    only ever *remove* billed calls.
    """
    violations = []
    baseline = run.first("baseline")
    if baseline is None or baseline.error:
        return violations
    for observation in run.by_class("pushdown"):
        name = observation.spec.name
        if observation.error:
            continue
        if observation.records != baseline.records:
            detail = _first_diff(baseline.records, observation.records)
            violations.append(
                Violation(
                    "pushdown-equivalence", name,
                    f"records differ from pushed-down baseline: {detail}",
                )
            )
        if observation.truncated:
            violations.append(
                Violation("pushdown-equivalence", name, "truncated without a cap")
            )
        if baseline.total_cost_usd > observation.total_cost_usd + COST_EPS:
            violations.append(
                Violation(
                    "pushdown-equivalence", name,
                    f"pushdown cost {baseline.total_cost_usd} exceeds "
                    f"{name} cost {observation.total_cost_usd}",
                )
            )
    return violations


def check_shard_equivalence(run) -> list[Violation]:
    """Scale-out sharding changes makespan, never answers.

    The sharded class re-runs the baseline spec across N simulated
    workers, sweeping shard count and partitioner.  Contract:
    bit-identical records at every point of the sweep.  Cost is
    deliberately *not* asserted here: on limit-bearing plans each shard
    may legally overfetch up to the limit before the global merge
    truncates (the classic distributed limit-pushdown overfetch), so only
    the answer itself is a cross-shard contract.
    """
    violations = []
    baseline = run.first("baseline")
    if baseline is None or baseline.error:
        return violations
    for observation in run.by_class("sharded"):
        name = observation.spec.name
        if observation.error:
            continue
        if observation.records != baseline.records:
            detail = _first_diff(baseline.records, observation.records)
            violations.append(
                Violation(
                    "shard-equivalence", name,
                    f"sharded records differ from shards=1 baseline: {detail}",
                )
            )
        if observation.truncated:
            violations.append(
                Violation("shard-equivalence", name, "truncated without a cap")
            )
    return violations


def check_streaming_equivalence(run) -> list[Violation]:
    """Incremental view maintenance converges on the one-shot answer.

    The streaming class registers the plan as a standing query over a
    prefix of the corpus and appends the remainder in chunks, refreshing
    incrementally off the materialization store.  Contract: after the last
    append the standing view is bit-identical to the baseline's one-shot
    run over the full corpus, and the changelog folded from empty
    reproduced the live view at every tick.  Cost is deliberately not
    asserted: plans with incremental-unsafe operators (group-by, top-k,
    limit) legally recompute each tick.
    """
    violations = []
    baseline = run.first("baseline")
    for observation in run.by_class("streaming"):
        name = observation.spec.name
        if observation.error:
            continue
        if baseline is not None and not baseline.error:
            if observation.records != baseline.records:
                detail = _first_diff(baseline.records, observation.records)
                violations.append(
                    Violation(
                        "streaming-equivalence", name,
                        f"standing view differs from one-shot baseline: "
                        f"{detail}",
                    )
                )
        if observation.streaming_fold_identical is False:
            violations.append(
                Violation(
                    "streaming-equivalence", name,
                    "folded changelog diverged from the live standing view",
                )
            )
        if observation.streaming_ticks < 1:
            violations.append(
                Violation(
                    "streaming-equivalence", name,
                    "standing query never evaluated a refresh tick",
                )
            )
    return violations


def check_trace(run) -> list[Violation]:
    """The traced baseline run must export a structurally valid span tree."""
    from repro.obs.export import validate_spans

    observations = run.observations.get("baseline", [])
    traced = next((obs for obs in observations if obs.spans is not None), None)
    if traced is None or traced.error:
        return []
    if not traced.spans:
        return [Violation("trace", "baseline", "traced run produced no spans")]
    try:
        validate_spans(traced.spans)
    except ValueError as exc:
        return [Violation("trace", "baseline", str(exc))]
    if not any(span.kind == "query" for span in traced.spans):
        return [Violation("trace", "baseline", "no query span recorded")]
    return []


ORACLES = (
    check_no_errors,
    check_determinism,
    check_exec_equivalence,
    check_opt_equivalence,
    check_policy_cost,
    check_estimates,
    check_budget,
    check_reuse_equivalence,
    check_serve_equivalence,
    check_pushdown_equivalence,
    check_shard_equivalence,
    check_streaming_equivalence,
    check_trace,
)


def evaluate(run) -> list[Violation]:
    """Run every oracle over one case's observations."""
    violations: list[Violation] = []
    for oracle in ORACLES:
        violations.extend(oracle(run))
    return violations


def _first_diff(expected: list, actual: list) -> str:
    if len(expected) != len(actual):
        return f"{len(expected)} records vs {len(actual)}"
    for index, (left, right) in enumerate(zip(expected, actual)):
        if left != right:
            return f"record {index}: {left!r} vs {right!r}"
    return "unknown difference"
