"""Serializable execution configurations and the differential matrix.

A :class:`ConfigSpec` is the JSON form of one way to run a plan.  The
matrix builder groups specs into *answer classes* — sets of configurations
the runtime promises produce the same answer:

- ``exec`` — same plan, same models, different execution mechanics
  (pipeline on/off, batch size, parallelism, embedding batching, adaptive
  wave control).  Contract: bit-identical records and dollar cost.
- ``opt`` — the optimizer with the max-quality policy against the naive
  plan.  Filter reordering within commuting runs and champion-model
  selection must not change the answer; sampling spend means cost may
  legitimately differ.  Applies to linear plans only (joins are bound
  without sampling).
- ``probe`` — cost-seeking policies (min-cost, balanced).  These may
  legally change answers; only well-formedness and determinism oracles
  apply.
- ``budget`` — a spend cap at a fraction of the measured baseline cost.
  Contract: overshoot bounded by one guarded call saga.
- ``fault`` — seeded fault schedules with retries.  Fault draws depend on
  attempt ordering, so the only cross-run promise is determinism: the
  identical config must reproduce the identical result.
- ``reuse`` — the same spec run twice against a shared
  :class:`~repro.sem.materialize.MaterializationStore` (fresh substrate
  each time).  Contract: the warm run's records are bit-identical to the
  cold run's (and to the baseline's), and the warm run never costs more
  than the cold run.
- ``serve`` — the plan submitted by two tenant sessions through the
  multi-tenant serving layer (cross-query batching on).  Contract: both
  tenants' records are bit-identical to the baseline's — the cross-query
  schedule and tenant-scoped caches must never change an answer.
- ``pushdown`` — structured-prefix SQL compilation disabled.  The
  baseline runs with pushdown (and columnar batches) on; the pushdown
  spec turns both off.  Contract: bit-identical records, and the
  pushed-down baseline never costs more than the row-at-a-time run —
  pushdown prunes records before LLM operators, it never adds calls.
- ``sharded`` — the plan executed across N simulated workers via the
  scale-out exchange planner (``repro.sem.shard``), sweeping shard count
  and partitioner.  Contract: bit-identical records at every shard
  count/partitioner — only makespan (and, on limit-bearing plans, the
  per-shard overfetch cost) may change.
- ``streaming`` — the plan registered as a standing query over a prefix
  of the corpus, with the remainder appended in chunks and each append
  refreshed incrementally (``repro.sem.streaming``).  Contract: the final
  standing view is bit-identical to the baseline's one-shot run over the
  full corpus, and the changelog folded from empty reproduces the live
  view at every tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.optimizer.policies import policy_by_name


@dataclass(frozen=True)
class ConfigSpec:
    """One serializable way to execute a fuzzed plan."""

    name: str
    #: Which equivalence contract this spec participates in (see module doc).
    answer_class: str = "exec"
    pipeline: bool = True
    optimize: bool = False
    policy: str = "max-quality"
    select_models: bool = True
    reorder_filters: bool = True
    parallelism: int = 4
    batch_size: int | None = None
    embed_batch_size: int | None = None
    adaptive: bool = True
    join_method: str = "nested"
    on_failure: str = "skip"
    sample_size: int = 6
    llm_seed: int = 0
    #: Run cold-then-warm against a shared MaterializationStore; the warm
    #: run is the recorded observation (reuse class).
    reuse: bool = False
    #: Run through the multi-tenant serving layer (two tenant sessions on
    #: one shared substrate, cross-query batching on); the first tenant's
    #: observation is recorded (serve class).
    serve: bool = False
    #: Register as a standing query over a corpus prefix and append the
    #: rest in chunks, refreshing incrementally (streaming class).
    streaming: bool = False
    #: Compile structured filter/project/agg prefixes to SQL before LLM
    #: operators (pushdown class disables this to prove equivalence).
    pushdown: bool = True
    #: Thread columnar RecordBatches through fused pipelined sections.
    columnar: bool = True
    #: Spend cap as a fraction of the measured baseline cost (budget class).
    budget_fraction: float | None = None
    #: Fault schedule for the substrate (``FaultConfig.to_dict`` form).
    fault: dict | None = None
    #: Retry policy override (``RetryPolicy.to_dict`` form).
    retry: dict | None = None
    #: Simulated scale-out workers (sharded class; 1 = unsharded engine).
    shards: int = 1
    #: Shard-assignment strategy ("hash" | "range" | "round_robin").
    partitioner: str = "hash"

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "answer_class": self.answer_class,
            "pipeline": self.pipeline,
            "optimize": self.optimize,
            "policy": self.policy,
            "select_models": self.select_models,
            "reorder_filters": self.reorder_filters,
            "parallelism": self.parallelism,
            "batch_size": self.batch_size,
            "embed_batch_size": self.embed_batch_size,
            "adaptive": self.adaptive,
            "join_method": self.join_method,
            "on_failure": self.on_failure,
            "sample_size": self.sample_size,
            "llm_seed": self.llm_seed,
            "reuse": self.reuse,
            "serve": self.serve,
            "streaming": self.streaming,
            "pushdown": self.pushdown,
            "columnar": self.columnar,
            "budget_fraction": self.budget_fraction,
            "fault": self.fault,
            "retry": self.retry,
            "shards": self.shards,
            "partitioner": self.partitioner,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ConfigSpec":
        return cls(**payload)

    # -- realization ----------------------------------------------------

    def make_llm(self, bundle, tracer=None) -> SimulatedLLM:
        """A fresh simulated substrate for one run of this spec."""
        faults = (
            FaultInjector(FaultConfig.from_dict(self.fault), seed=self.llm_seed)
            if self.fault
            else None
        )
        retry = RetryPolicy.from_dict(self.retry) if self.retry else None
        kwargs = {}
        if tracer is not None:
            kwargs["tracer"] = tracer
        return SimulatedLLM(
            oracle=SemanticOracle(bundle.registry),
            seed=self.llm_seed,
            faults=faults,
            retry=retry,
            **kwargs,
        )

    def build(
        self, llm: SimulatedLLM, max_cost_usd: float | None = None
    ) -> QueryProcessorConfig:
        """Materialize the query-processor config around a substrate."""
        kwargs = {}
        if self.embed_batch_size is not None:
            kwargs["embed_batch_size"] = self.embed_batch_size
        return QueryProcessorConfig(
            llm=llm,
            policy=policy_by_name(self.policy),
            optimize=self.optimize,
            reorder_filters=self.reorder_filters,
            select_models=self.select_models,
            sample_size=self.sample_size,
            parallelism=self.parallelism,
            seed=self.llm_seed,
            tag=f"qa:{self.name}",
            join_method=self.join_method,
            max_cost_usd=max_cost_usd,
            on_failure=self.on_failure,
            pipeline=self.pipeline,
            batch_size=self.batch_size,
            adaptive_parallelism=self.adaptive,
            pushdown=self.pushdown,
            columnar=self.columnar,
            shards=self.shards,
            partitioner=self.partitioner,
            **kwargs,
        )


#: The baseline every differential comparison anchors on.
BASELINE = ConfigSpec(name="baseline", answer_class="exec")


def config_matrix(plan, case_seed: int = 0) -> list[ConfigSpec]:
    """The configuration matrix exercised for one fuzzed plan.

    ``plan`` decides which classes apply: join plans skip the optimizer
    classes (the optimizer binds them without sampling, making ``opt``
    trivially identical and the probes uninteresting).
    """
    specs: list[ConfigSpec] = [BASELINE]

    # exec class: execution mechanics must not change the answer.
    specs.append(replace(BASELINE, name="barrier", pipeline=False))
    specs.append(replace(BASELINE, name="small-batch", batch_size=4))
    specs.append(replace(BASELINE, name="serial", parallelism=1, batch_size=6))
    specs.append(replace(BASELINE, name="tight-embed", embed_batch_size=2))
    specs.append(replace(BASELINE, name="no-adaptive", adaptive=False))

    # pushdown class: SQL compilation of structured prefixes (and the
    # columnar fast path) must preserve the answer and never cost more.
    specs.append(
        replace(
            BASELINE,
            name="no-pushdown",
            answer_class="pushdown",
            pushdown=False,
            columnar=False,
        )
    )
    specs.append(
        replace(
            BASELINE,
            name="row-mode",
            answer_class="pushdown",
            columnar=False,
        )
    )

    # sharded class: scale-out execution over simulated workers must be
    # answer-invariant for every shard count and partitioner (joins run
    # broadcast exchanges, group-bys shuffle — all plans qualify).
    specs.append(
        replace(BASELINE, name="sharded-4", answer_class="sharded", shards=4)
    )
    specs.append(
        replace(
            BASELINE, name="sharded-3-range", answer_class="sharded",
            shards=3, partitioner="range",
        )
    )
    specs.append(
        replace(
            BASELINE, name="sharded-8-rr", answer_class="sharded",
            shards=8, partitioner="round_robin",
        )
    )

    if not plan.has_join():
        # opt class: max-quality optimization preserves the answer.
        specs.append(
            ConfigSpec(
                name="optimized-maxq",
                answer_class="opt",
                optimize=True,
                policy="max-quality",
            )
        )
        # reuse class: warm-vs-cold identity against a shared
        # materialization store (baseline execution semantics).
        specs.append(
            replace(BASELINE, name="warm-reuse", answer_class="reuse", reuse=True)
        )
        # serve class: the plan submitted by two tenants through the
        # serving layer (cross-query batching on, barrier execution) must
        # reproduce the baseline answer for both tenants.
        specs.append(
            replace(
                BASELINE,
                name="served",
                answer_class="serve",
                serve=True,
                pipeline=False,
            )
        )
        # streaming class: incremental standing-query maintenance over
        # chunked appends must converge on the one-shot baseline answer.
        specs.append(
            replace(
                BASELINE,
                name="standing",
                answer_class="streaming",
                streaming=True,
            )
        )
        # probes: answer-changing policies, weak oracles only.
        specs.append(
            ConfigSpec(name="probe-mincost", answer_class="probe",
                       optimize=True, policy="min-cost")
        )
        specs.append(
            ConfigSpec(name="probe-balanced", answer_class="probe",
                       optimize=True, policy="balanced")
        )
    else:
        specs.append(
            replace(BASELINE, name="blocked-join", answer_class="probe",
                    join_method="blocked")
        )

    if plan.semantic_op_count() > 0:
        # budget class: cap at a fraction of the measured baseline spend.
        specs.append(
            ConfigSpec(name="budget-half", answer_class="budget",
                       budget_fraction=0.5)
        )
        specs.append(
            ConfigSpec(name="budget-tight", answer_class="budget",
                       budget_fraction=0.15)
        )
        # fault class: seeded faults + retries; determinism only.
        specs.append(
            ConfigSpec(
                name="faulty",
                answer_class="fault",
                llm_seed=case_seed % 1000,
                fault=FaultConfig(
                    rate=0.08,
                    kinds=("rate_limit", "api"),
                    rate_limit_storms=((5.0, 20.0),),
                    storm_rate=0.5,
                ).to_dict(),
                retry=RetryPolicy(max_attempts=3, base_backoff_s=0.5).to_dict(),
            )
        )

    return specs
