"""``python -m repro.qa`` — differential-testing harness entry point."""

import sys

from repro.qa.cli import main

sys.exit(main())
