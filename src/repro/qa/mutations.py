"""Seeded runtime mutations for the harness's self-test.

A differential harness is only trustworthy if it *fails* when the runtime
is broken.  Each mutation here monkeypatches one guard or invariant out of
the live runtime — inside a context manager, so the patch never leaks —
and the self-test asserts that the oracles catch it and that the shrinker
reduces the failing case to a minimal repro.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class Mutation:
    """One deliberate runtime defect, applied for the duration of a block."""

    name: str
    description: str
    #: Which oracle family is expected to catch this defect.
    expected_oracle: str
    _apply: Callable

    @contextlib.contextmanager
    def applied(self) -> Iterator[None]:
        with self._apply():
            yield


@contextlib.contextmanager
def _drop_budget_check() -> Iterator[None]:
    """Disable the per-call budget guard (engine boundary checks remain)."""
    from repro.sem.physical import ExecutionContext

    original = ExecutionContext.check_budget
    ExecutionContext.check_budget = lambda self: None
    try:
        yield
    finally:
        ExecutionContext.check_budget = original


@contextlib.contextmanager
def _scramble_cell_order() -> Iterator[None]:
    """Reverse each pipelined cell's emitted records (an ordering bug)."""
    from repro.sem.batch import RecordBatch
    from repro.sem.execution import Engine

    original = Engine._run_cell

    def scrambled(self, operator, batch, state, account):
        records, seconds = original(self, operator, batch, state, account)
        if isinstance(records, RecordBatch):
            return RecordBatch(list(reversed(records.records))), seconds
        return list(reversed(records)), seconds

    Engine._run_cell = scrambled
    try:
        yield
    finally:
        Engine._run_cell = original


MUTATIONS: dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="drop-budget-check",
            description="per-call spend-cap guard removed from ExecutionContext",
            expected_oracle="budget-cap",
            _apply=_drop_budget_check,
        ),
        Mutation(
            name="scramble-cell-order",
            description="pipelined cells emit records in reversed order",
            expected_oracle="exec-equivalence",
            _apply=_scramble_cell_order,
        ),
    )
}


def mutation_by_name(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        ) from None
