"""Plan-space differential testing and deterministic replay.

The paper's central claim is that an AI-driven analytics runtime can keep
declarative semantics while swapping execution strategies underneath —
pipelining, optimization policies, budget enforcement, fault recovery.
This package *tests* that claim mechanically: a seeded fuzzer generates
random logical plans over synthetic corpora, a runner executes each plan
under a matrix of configurations, and equivalence oracles assert the
contracts each configuration class must uphold.  Failures are minimized
by a delta-debugging shrinker and captured as deterministic replay
bundles.

Entry points: ``python -m repro.qa fuzz | replay | selftest``.
"""

from repro.qa.bundle import ReplayBundle
from repro.qa.configs import ConfigSpec, config_matrix
from repro.qa.corpus import CorpusSpec, build_corpus
from repro.qa.fuzzer import FuzzCase, PlanFuzzer
from repro.qa.oracles import Violation, evaluate
from repro.qa.plans import PlanSpec, normalized_records
from repro.qa.runner import CaseRun, Observation, run_case, run_spec
from repro.qa.shrinker import ShrinkResult, shrink

__all__ = [
    "CaseRun",
    "ConfigSpec",
    "CorpusSpec",
    "FuzzCase",
    "Observation",
    "PlanFuzzer",
    "PlanSpec",
    "ReplayBundle",
    "ShrinkResult",
    "Violation",
    "build_corpus",
    "config_matrix",
    "evaluate",
    "normalized_records",
    "run_case",
    "run_spec",
    "shrink",
]
