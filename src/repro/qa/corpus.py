"""Seeded synthetic corpora for plan-space differential testing.

The fuzz harness needs corpora it can regenerate bit-identically from a
tiny JSON spec (seed + size), with a rich enough intent surface that random
plans exercise every semantic operator: boolean filter intents, numeric and
string extraction intents, classification/group-by intents, and an
equality-style join intent.  Records carry explicit uids (``qa-<n>``) so
corpus generation never consumes the global derived-record uid counter —
runs that compare uid sequences across executions depend on that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets.base import DatasetBundle
from repro.data.corpus import FileCorpus
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry
from repro.llm.simulated import DISTRACTOR_PREFIX
from repro.utils.hashing import stable_hash, stable_uniform

#: Intent keys -> (keywords, canonical instruction).  Instructions are what
#: the fuzzer puts on plan operators; every instruction resolves to its
#: intent with keyword score 1.0 (all keywords present as tokens).
INTENTS: dict[str, tuple[tuple[str, ...], str]] = {
    "qa.flag_urgent": (
        ("ticket", "marked", "urgent"),
        "The ticket is marked urgent.",
    ),
    "qa.flag_security": (
        ("mentions", "security", "incident"),
        "The ticket mentions a security incident.",
    ),
    "qa.flag_refund": (
        ("requests", "refund", "payment"),
        "The ticket requests a refund of a payment.",
    ),
    "qa.amount": (
        ("total", "invoice", "dollars"),
        "Extract the total invoice amount in dollars.",
    ),
    "qa.customer": (
        ("name", "account", "holder"),
        "Extract the name of the account holder.",
    ),
    "qa.department": (
        ("department", "responsible", "handling"),
        "Which department is responsible for handling this ticket?",
    ),
    "qa.region": (
        ("sales", "region", "office"),
        "Which sales region office filed this ticket?",
    ),
    "qa.same_customer": (
        ("records", "same", "customer"),
        "The two records concern the same customer.",
    ),
}

DEPARTMENTS = ("engineering", "finance", "support", "legal")
REGIONS = ("north", "south", "east", "west")
CUSTOMERS = ("acme", "globex", "initech", "umbrella", "stark", "wayne")

_TOPIC_WORDS = (
    "outage", "invoice", "renewal", "login", "latency", "migration",
    "contract", "audit", "backup", "quota", "upgrade", "alert",
)


def instruction_for(intent_key: str) -> str:
    """Canonical natural-language instruction for a registered QA intent."""
    return INTENTS[intent_key][1]


@dataclass(frozen=True)
class CorpusSpec:
    """Everything needed to regenerate a QA corpus bit-identically."""

    seed: int = 0
    n_records: int = 24

    def to_dict(self) -> dict:
        return {"seed": self.seed, "n_records": self.n_records}

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusSpec":
        return cls(seed=int(payload["seed"]), n_records=int(payload["n_records"]))


def _difficulty(seed: int, index: int, intent: str) -> float:
    """Mostly easy-to-medium difficulties, occasionally ambiguous."""
    draw = stable_uniform(seed, "qa-difficulty", index, intent)
    if draw > 0.9:  # ~10% genuinely ambiguous records per intent
        return round(0.7 + 0.25 * stable_uniform(seed, "qa-hard", index, intent), 3)
    return round(0.05 + 0.55 * draw, 3)


def build_corpus(spec: CorpusSpec) -> DatasetBundle:
    """Generate the QA ticket corpus described by ``spec``.

    Deterministic: two calls with equal specs produce records with identical
    uids, fields, and annotations.
    """
    seed, n = spec.seed, spec.n_records
    registry = IntentRegistry()
    for key, (keywords, description) in INTENTS.items():
        registry.register(key, keywords, description)

    records: list[DataRecord] = []
    for index in range(n):
        customer = CUSTOMERS[stable_hash(seed, "qa-cust", index) % len(CUSTOMERS)]
        department = DEPARTMENTS[stable_hash(seed, "qa-dept", index) % len(DEPARTMENTS)]
        region = REGIONS[stable_hash(seed, "qa-region", index) % len(REGIONS)]
        priority = 1 + stable_hash(seed, "qa-priority", index) % 4
        amount = round(10.0 + 990.0 * stable_uniform(seed, "qa-amount", index), 2)
        urgent = stable_uniform(seed, "qa-urgent", index) < 0.4
        security = stable_uniform(seed, "qa-security", index) < 0.3
        refund = stable_uniform(seed, "qa-refund", index) < 0.35
        topic_a = _TOPIC_WORDS[stable_hash(seed, "qa-topic-a", index) % len(_TOPIC_WORDS)]
        topic_b = _TOPIC_WORDS[stable_hash(seed, "qa-topic-b", index) % len(_TOPIC_WORDS)]

        body = (
            f"Ticket {index} from {customer} about {topic_a} and {topic_b}. "
            f"Priority {priority}, routed via the {region} office to "
            f"{department}. Invoice total ${amount:.2f}."
        )
        annotations = {
            "qa.flag_urgent": urgent,
            "qa.flag_security": security,
            "qa.flag_refund": refund,
            "qa.amount": amount,
            "qa.customer": customer,
            "qa.department": department,
            "qa.region": region,
            "qa.same_customer": customer,
        }
        for intent in list(annotations):
            annotations[DIFFICULTY_PREFIX + intent] = _difficulty(seed, index, intent)
        # A plausible wrong amount that actually appears in the corpus.
        if stable_uniform(seed, "qa-distract", index) < 0.5:
            annotations[DISTRACTOR_PREFIX + "qa.amount"] = round(amount * 0.1, 2)
        records.append(
            DataRecord(
                fields={
                    "title": f"{topic_a}-{index}",
                    "body": body,
                    "priority": priority,
                },
                uid=f"qa-{index:04d}",
                annotations=annotations,
                source_id=f"qa-corpus-{seed}",
            )
        )

    schema = Schema(
        [
            Field("title", str, "short ticket title"),
            Field("body", str, "full ticket text"),
            Field("priority", int, "priority 1 (low) to 4 (critical)"),
        ],
        name="QATicket",
        desc="synthetic support tickets for the fuzz harness",
    )
    corpus = FileCorpus(name=f"qa-corpus-{seed}")
    return DatasetBundle(
        name=f"qa-corpus-{seed}",
        corpus=corpus,
        schema=schema,
        registry=registry,
        description="Synthetic support-ticket corpus for plan-space fuzzing.",
        record_list=records,
    )
