"""Replay bundles: a failing fuzz case as a few lines of JSON.

A bundle is everything ``python -m repro.qa replay`` needs to re-execute a
failure bit-identically on any machine: the corpus spec (seed + size), the
plan spec, the case seed the config matrix derives from, and the runtime
mutation (if the failure came from the self-test).  Violations observed at
capture time ride along so replay can confirm it reproduced the *same*
failure, not merely a failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.qa.fuzzer import FuzzCase
from repro.qa.mutations import mutation_by_name
from repro.qa.oracles import Violation, evaluate
from repro.qa.runner import run_case

BUNDLE_VERSION = 1


@dataclass
class ReplayBundle:
    """A self-contained, deterministic repro of one harness failure."""

    case: FuzzCase
    mutation: str | None = None
    #: Oracle names that fired when the bundle was captured.
    expected_oracles: list = field(default_factory=list)
    #: Human-readable violation lines from capture time.
    captured_violations: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "version": BUNDLE_VERSION,
            "case": self.case.to_dict(),
            "mutation": self.mutation,
            "expected_oracles": list(self.expected_oracles),
            "captured_violations": list(self.captured_violations),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplayBundle":
        version = payload.get("version", BUNDLE_VERSION)
        if version != BUNDLE_VERSION:
            raise ValueError(
                f"unsupported bundle version {version}; expected {BUNDLE_VERSION}"
            )
        return cls(
            case=FuzzCase.from_dict(payload["case"]),
            mutation=payload.get("mutation"),
            expected_oracles=list(payload.get("expected_oracles", [])),
            captured_violations=list(payload.get("captured_violations", [])),
        )

    @classmethod
    def capture(cls, case: FuzzCase, violations: list[Violation],
                mutation: str | None = None) -> "ReplayBundle":
        return cls(
            case=case,
            mutation=mutation,
            expected_oracles=sorted({v.oracle for v in violations}),
            captured_violations=[str(v) for v in violations],
        )

    # -- persistence ----------------------------------------------------

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReplayBundle":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- replay ---------------------------------------------------------

    def replay(self) -> tuple[list[Violation], bool]:
        """Re-execute the case; returns (violations, reproduced).

        ``reproduced`` is True when at least one violation fires from an
        oracle that fired at capture time (or, for a clean capture, when
        replay is also clean).
        """
        mutation = mutation_by_name(self.mutation) if self.mutation else None
        violations = evaluate(run_case(self.case, mutation=mutation))
        if not self.expected_oracles:
            return violations, not violations
        fired = {violation.oracle for violation in violations}
        return violations, bool(fired & set(self.expected_oracles))
