"""Execute one fuzz case under its configuration matrix.

The runner is the bridge between serializable specs and the live runtime:
it rebuilds the corpus, constructs a fresh simulated substrate per run (so
no cache or usage state leaks between matrix cells), executes the plan,
and captures an :class:`Observation` — everything the oracles need without
holding the live objects.

Run order per case:

1. ``baseline`` twice (same-config determinism), the second time traced.
2. Every other non-budget spec once (``fault`` specs twice, for their own
   determinism check).
3. Budget specs, whose spend caps are fractions of the measured baseline
   cost — a two-phase design so caps track plan size automatically.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.data.records import reset_uid_counter
from repro.obs.tracer import Tracer
from repro.qa.configs import ConfigSpec, config_matrix
from repro.qa.corpus import build_corpus
from repro.qa.fuzzer import FuzzCase
from repro.qa.plans import normalized_records
from repro.sem.materialize import MaterializationStore


@dataclass
class Observation:
    """What one execution of one (case, config) cell produced."""

    spec: ConfigSpec
    #: ``(uid, sorted field items)`` per output record, in output order.
    records: list = field(default_factory=list)
    total_cost_usd: float = 0.0
    total_time_s: float = 0.0
    truncated: bool = False
    retried_calls: int = 0
    failed_records: int = 0
    #: The spend cap this run executed under (budget class only).
    max_cost_usd: float | None = None
    #: Largest single usage-event cost (bounds legal budget overshoot).
    max_event_cost_usd: float = 0.0
    #: Retry attempts allowed per call (bounds legal budget overshoot).
    max_attempts: int = 1
    #: Optimizer report extracts (opt/probe classes).
    optimized: bool = False
    chosen_models: dict = field(default_factory=dict)
    profiles: dict = field(default_factory=dict)
    champion_model: str = ""
    estimate_cost_usd: float | None = None
    estimate_time_s: float | None = None
    estimate_cardinality: float | None = None
    #: Spans captured when the run was traced (baseline only).
    spans: list | None = None
    #: Cold-pass capture for the reuse class: the priming run's normalized
    #: records and cost, against which the warm observation is compared.
    reuse_cold_records: list | None = None
    reuse_cold_cost_usd: float | None = None
    #: Second tenant's normalized records for the serve class (must match
    #: the recorded first tenant's and the baseline's).
    serve_peer_records: list | None = None
    #: Streaming class: did the changelog folded from empty match the live
    #: standing view at every refresh tick (None = not a streaming run).
    streaming_fold_identical: bool | None = None
    #: Streaming class: refresh ticks evaluated / ticks that took the
    #: delta-reuse path.
    streaming_ticks: int = 0
    streaming_delta_ticks: int = 0
    #: Materialization reuse achieved by the warm run (0 = no reuse).
    reused_prefix: int = 0
    reuse_kind: str = ""
    #: Exception repr when the run blew up (oracles flag it).
    error: str | None = None


@dataclass
class CaseRun:
    """All observations for one fuzz case, keyed for the oracles."""

    case: FuzzCase
    #: Spec name -> list of observations (two entries = determinism pair).
    observations: dict = field(default_factory=dict)

    def first(self, name: str) -> Observation | None:
        runs = self.observations.get(name)
        return runs[0] if runs else None

    def by_class(self, answer_class: str) -> list[Observation]:
        return [
            runs[0]
            for runs in self.observations.values()
            if runs and runs[0].spec.answer_class == answer_class
        ]


def run_spec(
    case: FuzzCase,
    spec: ConfigSpec,
    max_cost_usd: float | None = None,
    traced: bool = False,
    mutation=None,
) -> Observation:
    """Execute ``case.plan`` under ``spec`` with a fresh substrate."""
    reset_uid_counter()
    bundle = build_corpus(case.corpus)
    tracer = Tracer() if traced else None
    llm = spec.make_llm(bundle, tracer=tracer)
    config = spec.build(llm, max_cost_usd=max_cost_usd)
    observation = Observation(spec=spec, max_cost_usd=max_cost_usd)
    try:
        dataset = case.plan.build(bundle)
        guard = mutation.applied() if mutation is not None else contextlib.nullcontext()
        with guard:
            if spec.streaming:
                # Standing query over the first two-thirds of the corpus;
                # the rest arrives as three append chunks, each refreshed
                # incrementally.  Record objects are shared with the full
                # corpus, so derived uids line up with the baseline's.
                from repro.data.sources import MemorySource
                from repro.sem.streaming import RefreshPolicy, StandingQueryManager

                records = bundle.records()
                split = max(1, (2 * len(records)) // 3)
                base, rest = records[:split], records[split:]
                source = MemorySource(
                    base, bundle.schema, source_id=bundle.name
                )
                dataset = case.plan.build(bundle, source=source)
                config.materialization_store = MaterializationStore()
                manager = StandingQueryManager(
                    store=config.materialization_store
                )
                query = manager.register(
                    f"qa:{spec.name}",
                    dataset,
                    config,
                    policy=RefreshPolicy(trigger="count", count=1),
                )
                fold_identical = normalized_records(
                    query.folded()
                ) == normalized_records(query.records)
                chunk = max(1, (len(rest) + 2) // 3)
                for start in range(0, len(rest), chunk):
                    source.append(rest[start : start + chunk])
                    manager.pump()
                    if normalized_records(query.folded()) != (
                        normalized_records(query.records)
                    ):
                        fold_identical = False
                observation.records = normalized_records(query.records)
                observation.total_cost_usd = query.cumulative_cost_usd
                observation.streaming_fold_identical = fold_identical
                observation.streaming_ticks = len(query.ticks)
                observation.streaming_delta_ticks = sum(
                    1 for tick in query.ticks if tick.reuse_kind == "delta"
                )
                last = query.ticks[-1]
                observation.reused_prefix = last.reused_prefix
                observation.reuse_kind = last.reuse_kind
                observation.max_event_cost_usd = max(
                    (event.cost_usd for event in llm.tracker.events),
                    default=0.0,
                )
                observation.max_attempts = llm.retry.max_attempts
                return observation
            if spec.serve:
                # Two tenant sessions submit the same plan through the
                # serving layer (shared substrate, cross-query batching);
                # the first tenant is the recorded observation and the
                # peer's records ride along for the serve oracle.
                from repro.core.runtime import AnalyticsRuntime
                from repro.serve import ServingRuntime, TenantSpec

                runtime = AnalyticsRuntime(
                    llm=llm, registry=bundle.registry, seed=spec.llm_seed
                )
                serving = ServingRuntime(
                    runtime,
                    tenants=[TenantSpec("qa-a"), TenantSpec("qa-b")],
                    batching=True,
                    parallelism=spec.parallelism,
                )
                job_a = serving.submit("qa-a", dataset, arrival_s=0.0)
                job_b = serving.submit("qa-b", dataset, arrival_s=1.0)
                serving.drain()
                observation.records = normalized_records(job_a.records)
                observation.serve_peer_records = normalized_records(
                    job_b.records
                )
                observation.total_cost_usd = job_a.raw_cost_usd
                observation.total_time_s = job_a.latency_s
                observation.max_event_cost_usd = max(
                    (event.cost_usd for event in llm.tracker.events),
                    default=0.0,
                )
                observation.max_attempts = llm.retry.max_attempts
                return observation
            if spec.reuse:
                # Cold pass primes a shared store with a fresh substrate so
                # the warm (recorded) run can only benefit from the store,
                # never from a shared generation cache.
                store = MaterializationStore()
                cold_llm = spec.make_llm(bundle)
                cold_config = spec.build(cold_llm, max_cost_usd=max_cost_usd)
                cold_config.materialization_store = store
                cold_result, _cold_report = dataset.run_with_report(cold_config)
                observation.reuse_cold_records = normalized_records(
                    cold_result.records
                )
                observation.reuse_cold_cost_usd = cold_result.total_cost_usd
                config.materialization_store = store
            result, report = dataset.run_with_report(config)
    except Exception as exc:  # noqa: BLE001 — oracles judge the failure
        observation.error = f"{type(exc).__name__}: {exc}"
        return observation

    observation.records = normalized_records(result.records)
    observation.total_cost_usd = result.total_cost_usd
    observation.total_time_s = result.total_time_s
    observation.truncated = result.truncated
    observation.retried_calls = result.retried_calls
    observation.failed_records = result.failed_records
    observation.max_event_cost_usd = max(
        (event.cost_usd for event in llm.tracker.events), default=0.0
    )
    observation.max_attempts = llm.retry.max_attempts
    observation.optimized = report.optimized
    observation.chosen_models = dict(report.chosen_models)
    observation.profiles = report.profiles
    observation.champion_model = config.champion_model
    if report.estimate is not None:
        observation.estimate_cost_usd = report.estimate.cost_usd
        observation.estimate_time_s = report.estimate.time_s
        observation.estimate_cardinality = report.estimate.cardinality
    observation.reused_prefix = report.reused_prefix
    observation.reuse_kind = report.reuse_kind
    if tracer is not None:
        observation.spans = tracer.spans
    return observation


def run_case(case: FuzzCase, mutation=None) -> CaseRun:
    """Run the full configuration matrix for one fuzz case."""
    specs = config_matrix(case.plan, case_seed=case.case_seed)
    run = CaseRun(case=case)

    baseline_cost = 0.0
    for spec in specs:
        if spec.answer_class == "budget":
            continue  # second phase: needs the measured baseline cost
        observations = [run_spec(case, spec, mutation=mutation)]
        if spec.name == "baseline":
            # Same-config determinism + the traced run for the trace oracle.
            observations.append(
                run_spec(case, spec, traced=True, mutation=mutation)
            )
            baseline_cost = observations[0].total_cost_usd
        elif spec.answer_class == "fault":
            observations.append(run_spec(case, spec, mutation=mutation))
        run.observations[spec.name] = observations

    for spec in specs:
        if spec.answer_class != "budget":
            continue
        if baseline_cost <= 0.0:
            continue  # free plan: a fractional cap would be invalid
        cap = spec.budget_fraction * baseline_cost
        run.observations[spec.name] = [
            run_spec(case, spec, max_cost_usd=cap, mutation=mutation)
        ]

    return run
