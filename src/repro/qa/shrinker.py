"""Delta-debugging minimizer for failing fuzz cases.

Given a (case, mutation) pair whose oracle evaluation produced violations,
the shrinker searches for the smallest case that still fails:

1. drop top-level plan operators one at a time, to a fixpoint;
2. drop operators from a join's right-hand sub-chain;
3. shrink the corpus record count (geometric, then linear).

Every candidate is judged by *re-running the full matrix and oracles* —
the only ground truth — so shrinking is slow but honest.  The result is
typically a 1-3 operator plan over a dozen records: small enough to read,
replay, and fix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.qa.corpus import CorpusSpec
from repro.qa.fuzzer import FuzzCase
from repro.qa.oracles import Violation, evaluate
from repro.qa.plans import PlanSpec
from repro.qa.runner import run_case


@dataclass
class ShrinkResult:
    """The minimized case and the violations it still produces."""

    case: FuzzCase
    violations: list[Violation]
    #: Matrix executions spent shrinking (a cost/benefit signal for tuning).
    evaluations: int = 0


def failing_violations(case: FuzzCase, mutation=None) -> list[Violation]:
    """Run the matrix and oracles once; empty list means the case passes."""
    return evaluate(run_case(case, mutation=mutation))


def shrink(case: FuzzCase, mutation=None) -> ShrinkResult:
    """Minimize ``case`` while it keeps failing at least one oracle.

    Candidates must fail one of the *original* oracles: dropping operators
    can manufacture fresh, unrelated failures (a projection whose source
    map was dropped), and latching onto those would shrink toward the
    wrong bug.
    """
    evaluations = 0
    target_oracles: set[str] = set()

    def fails(candidate: FuzzCase) -> list[Violation]:
        nonlocal evaluations
        evaluations += 1
        found = failing_violations(candidate, mutation=mutation)
        if target_oracles and not {v.oracle for v in found} & target_oracles:
            return []
        return found

    violations = fails(case)
    if not violations:
        return ShrinkResult(case=case, violations=[], evaluations=evaluations)
    target_oracles = {violation.oracle for violation in violations}

    current, violations = _shrink_plan(case, violations, fails)
    current, violations = _shrink_join(current, violations, fails)
    current, violations = _shrink_corpus(current, violations, fails)
    return ShrinkResult(
        case=current, violations=violations, evaluations=evaluations
    )


def _shrink_plan(case, violations, fails):
    """Drop top-level operators one at a time until no drop still fails."""
    changed = True
    while changed:
        changed = False
        for index in range(len(case.plan.ops)):
            candidate = replace(case, plan=case.plan.without_op(index))
            if not candidate.plan.ops:
                continue
            result = fails(candidate)
            if result:
                case, violations = candidate, result
                changed = True
                break
    return case, violations


def _shrink_join(case, violations, fails):
    """Drop operators inside a join's right-hand chain."""
    changed = True
    while changed:
        changed = False
        for position, op in enumerate(case.plan.ops):
            if op["op"] != "sem_join" or not op.get("right"):
                continue
            for sub_index in range(len(op["right"])):
                right = [
                    sub for i, sub in enumerate(op["right"]) if i != sub_index
                ]
                new_op = dict(op)
                new_op["right"] = right
                ops = list(case.plan.ops)
                ops[position] = new_op
                candidate = replace(case, plan=PlanSpec(ops=tuple(ops)))
                result = fails(candidate)
                if result:
                    case, violations = candidate, result
                    changed = True
                    break
            if changed:
                break
    return case, violations


def _shrink_corpus(case, violations, fails):
    """Shrink the record count: halve while failing, then step down."""
    n = case.corpus.n_records
    while n > 2:
        half = max(2, n // 2)
        if half == n:
            break
        candidate = replace(
            case, corpus=CorpusSpec(seed=case.corpus.seed, n_records=half)
        )
        result = fails(candidate)
        if not result:
            break
        case, violations, n = candidate, result, half
    while n > 2:
        candidate = replace(
            case, corpus=CorpusSpec(seed=case.corpus.seed, n_records=n - 1)
        )
        result = fails(candidate)
        if not result:
            break
        case, violations, n = candidate, result, n - 1
    return case, violations
