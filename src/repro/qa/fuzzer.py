"""Seeded random generation of logical plans over QA corpora.

The fuzzer samples the plan space the paper's optimizer and executor must
agree on: chains of semantic filters/maps/classifies, top-k, group-by,
aggregation, joins, limits, projections, and free Python operators, over
corpora of varying size.  Generation is a pure function of the fuzzer seed
and case index, so ``fuzz --seed 0`` explores the identical plan space on
every machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.qa.corpus import CorpusSpec, DEPARTMENTS, REGIONS
from repro.qa.plans import (
    MAP_FIELDS,
    PY_MAPPERS,
    PY_PREDICATES,
    PlanSpec,
    TOPK_QUERIES,
    WHERE_CONDITIONS,
)

_FILTER_INTENTS = ("qa.flag_urgent", "qa.flag_security", "qa.flag_refund")

#: Base fields always present on source records.
_BASE_FIELDS = ("title", "body", "priority")


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed (corpus, plan) pair plus the seed its matrix derives from."""

    index: int
    corpus: CorpusSpec
    plan: PlanSpec
    case_seed: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "corpus": self.corpus.to_dict(),
            "plan": self.plan.to_dict(),
            "case_seed": self.case_seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        return cls(
            index=int(payload.get("index", 0)),
            corpus=CorpusSpec.from_dict(payload["corpus"]),
            plan=PlanSpec.from_dict(payload["plan"]),
            case_seed=int(payload["case_seed"]),
        )


class PlanFuzzer:
    """Generates random-but-reproducible plans and corpora."""

    def __init__(self, seed: int = 0, max_ops: int = 5, min_records: int = 12,
                 max_records: int = 32) -> None:
        self.seed = seed
        self.max_ops = max_ops
        self.min_records = min_records
        self.max_records = max_records

    def case(self, index: int) -> FuzzCase:
        rng = random.Random((self.seed, "qa-case", index).__repr__())
        corpus = CorpusSpec(
            seed=rng.randrange(1_000_000),
            n_records=rng.randint(self.min_records, self.max_records),
        )
        plan = self.generate_plan(rng, corpus)
        return FuzzCase(
            index=index, corpus=corpus, plan=plan,
            case_seed=rng.randrange(1_000_000),
        )

    def cases(self, n: int) -> list[FuzzCase]:
        return [self.case(index) for index in range(n)]

    # ------------------------------------------------------------------
    # Plan generation
    # ------------------------------------------------------------------

    def generate_plan(self, rng: random.Random, corpus: CorpusSpec) -> PlanSpec:
        ops: list[dict] = []
        fields = list(_BASE_FIELDS)
        length = rng.randint(1, self.max_ops)

        # Access path: occasionally replace the full scan with retrieval.
        if rng.random() < 0.15:
            ops.append({
                "op": "retrieve",
                "query": rng.choice(TOPK_QUERIES),
                "k": rng.randint(6, max(8, corpus.n_records - 2)),
            })

        while len(ops) < length:
            kind = rng.choices(
                ("sem_filter", "sem_map", "sem_classify", "sem_topk",
                 "limit", "py_filter", "py_map", "sem_join", "where"),
                weights=(30, 18, 12, 10, 8, 8, 6, 8, 10),
            )[0]
            if kind == "sem_filter":
                ops.append({"op": "sem_filter", "intent": rng.choice(_FILTER_INTENTS)})
            elif kind == "sem_map":
                name = rng.choice(sorted(MAP_FIELDS))
                ops.append({"op": "sem_map", "field": name})
                if name not in fields:
                    fields.append(name)
            elif kind == "sem_classify":
                intent, options = rng.choice(
                    (("qa.department", DEPARTMENTS), ("qa.region", REGIONS))
                )
                field = "dept" if intent == "qa.department" else "region_label"
                ops.append({
                    "op": "sem_classify", "field": field,
                    "intent": intent, "options": list(options),
                })
                if field not in fields:
                    fields.append(field)
            elif kind == "sem_topk":
                ops.append({
                    "op": "sem_topk",
                    "query": rng.choice(TOPK_QUERIES),
                    "k": rng.randint(2, 10),
                    "method": rng.choice(("embedding", "llm")),
                })
            elif kind == "limit":
                ops.append({"op": "limit", "n": rng.randint(3, corpus.n_records)})
            elif kind == "py_filter":
                ops.append({"op": "py_filter", "name": rng.choice(sorted(PY_PREDICATES))})
            elif kind == "where":
                ops.append({"op": "where", "name": rng.choice(sorted(WHERE_CONDITIONS))})
            elif kind == "py_map":
                name = rng.choice(sorted(PY_MAPPERS))
                ops.append({"op": "py_map", "name": name})
            elif kind == "sem_join":
                if any(op["op"] == "sem_join" for op in ops):
                    continue  # at most one join per plan
                right: list[dict] = []
                if rng.random() < 0.5:
                    right.append({"op": "py_filter",
                                  "name": rng.choice(sorted(PY_PREDICATES))})
                right.append({"op": "limit", "n": rng.randint(2, 5)})
                ops.append({"op": "sem_join", "intent": "qa.same_customer",
                            "right": right})

        # Terminal decoration: group-by / aggregate / projection.
        tail = rng.random()
        if tail < 0.12:
            ops.append({
                "op": "sem_groupby", "intent": "qa.region",
                "groups": list(REGIONS), "summarize": rng.random() < 0.5,
            })
        elif tail < 0.20:
            ops.append({"op": "sem_agg",
                        "instruction": "Summarize the overall ticket workload.",
                        "field": "answer"})
        elif tail < 0.30:
            keep = [name for name in fields if rng.random() < 0.7] or ["title"]
            ops.append({"op": "project", "fields": keep})

        return PlanSpec(ops=tuple(ops))
