"""Serializable logical-plan specifications for the fuzz harness.

A :class:`PlanSpec` is a JSON-friendly description of a plan — a list of
operator specs (dicts), with a join operator carrying its right-hand
sub-chain inline.  Specs build real :class:`~repro.sem.dataset.Dataset`
plans against any QA corpus bundle, so a replay bundle can rebuild the
exact failing plan from a few lines of JSON.

Python operators (``py_filter`` / ``py_map``) come from a named catalog:
lambdas are not serializable, named catalog entries are.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.data.records import DataRecord
from repro.data.schemas import Field
from repro.errors import PlanError
from repro.sem.dataset import Dataset
from repro.qa.corpus import instruction_for

#: Named, deterministic Python predicates available to fuzzed plans.
PY_PREDICATES = {
    "priority_ge_2": lambda record: record.get("priority", 0) >= 2,
    "priority_le_3": lambda record: record.get("priority", 0) <= 3,
    "odd_priority": lambda record: record.get("priority", 0) % 2 == 1,
}

#: Named, deterministic Python field derivations available to fuzzed plans.
PY_MAPPERS = {
    "priority_bucket": lambda record: {
        "bucket": "high" if record.get("priority", 0) >= 3 else "low"
    },
    "title_len": lambda record: {"title_len": len(str(record.get("title", "")))},
}

#: Named structured SQL predicates available to fuzzed ``where`` ops.
#: Every condition reads only corpus-provided fields so it is pushdown-
#: eligible when adjacent to the scan.
WHERE_CONDITIONS = {
    "priority_top": "priority = 4",
    "priority_mid": "priority BETWEEN 2 AND 3",
    "priority_set": "priority IN (1, 3)",
    "priority_or_low": "priority >= 3 OR priority <= 1",
}

#: Fixed query pool for top-k / retrieve operators (embedding relevance).
TOPK_QUERIES = (
    "tickets about a service outage",
    "billing and invoice disputes",
    "contract renewals and audits",
    "login and latency problems",
)

#: Field specs a sem_map can produce: name -> (python type, intent key).
MAP_FIELDS = {
    "amount": (float, "qa.amount"),
    "customer": (str, "qa.customer"),
}

_TYPES = {"str": str, "int": int, "float": float, "bool": bool}
_TYPE_NAMES = {v: k for k, v in _TYPES.items()}


@dataclass(frozen=True)
class PlanSpec:
    """A serializable linear plan (joins carry their right chain inline)."""

    ops: tuple = ()
    metadata: dict = dataclass_field(default_factory=dict, compare=False)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {"ops": [dict(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanSpec":
        return cls(ops=tuple(dict(op) for op in payload["ops"]))

    # -- structure ------------------------------------------------------

    def op_count(self) -> int:
        """Operators in the plan, join right-chains included."""
        total = 0
        for op in self.ops:
            total += 1
            if op["op"] == "sem_join":
                total += len(op.get("right", []))
        return total

    def without_op(self, index: int) -> "PlanSpec":
        """A copy with the ``index``-th top-level operator removed."""
        ops = list(self.ops)
        del ops[index]
        return PlanSpec(ops=tuple(ops))

    def describe(self) -> str:
        parts = []
        for op in self.ops:
            name = op["op"]
            if name == "sem_join":
                name += f"[{'+'.join(sub['op'] for sub in op.get('right', []))}]"
            parts.append(name)
        return " -> ".join(parts) or "(scan only)"

    def has_join(self) -> bool:
        return any(op["op"] == "sem_join" for op in self.ops)

    def semantic_op_count(self) -> int:
        names = ("sem_filter", "sem_map", "sem_classify", "sem_groupby",
                 "sem_topk", "sem_agg", "sem_join")
        return sum(1 for op in self.ops if op["op"] in names)

    # -- building -------------------------------------------------------

    def build(self, bundle, source=None) -> Dataset:
        """Materialize this spec as a Dataset over ``bundle``'s source.

        ``source`` overrides the scan's data source (the streaming class
        builds the plan over a live :class:`~repro.data.sources.MemorySource`
        it appends to); join right-chains still read the full bundle.
        """
        dataset = Dataset.from_source(
            source if source is not None else bundle.source()
        )
        for op in self.ops:
            dataset = _apply(dataset, op, bundle)
        return dataset


def _apply(dataset: Dataset, op: dict, bundle) -> Dataset:
    kind = op["op"]
    if kind == "sem_filter":
        return dataset.sem_filter(instruction_for(op["intent"]))
    if kind == "sem_map":
        field_type, intent = MAP_FIELDS[op["field"]]
        return dataset.sem_map(
            Field(op["field"], field_type, f"extracted {op['field']}"),
            instruction_for(intent),
        )
    if kind == "sem_classify":
        options = list(op["options"])
        return dataset.sem_classify(
            op["field"], options, instruction_for(op["intent"])
        )
    if kind == "sem_groupby":
        return dataset.sem_groupby(
            instruction_for(op["intent"]),
            list(op["groups"]),
            summarize=bool(op.get("summarize", False)),
        )
    if kind == "sem_topk":
        return dataset.sem_topk(op["query"], op["k"], method=op.get("method", "embedding"))
    if kind == "sem_agg":
        return dataset.sem_agg(op["instruction"], output_field=op.get("field", "answer"))
    if kind == "sem_join":
        right = Dataset.from_source(bundle.source())
        for sub in op.get("right", []):
            right = _apply(right, sub, bundle)
        return dataset.sem_join(right, instruction_for(op["intent"]))
    if kind == "limit":
        return dataset.limit(op["n"])
    if kind == "project":
        return dataset.project(list(op["fields"]))
    if kind == "retrieve":
        return dataset.retrieve(op["query"], op["k"])
    if kind == "where":
        return dataset.where(WHERE_CONDITIONS[op["name"]])
    if kind == "py_filter":
        return dataset.filter(PY_PREDICATES[op["name"]], description=op["name"])
    if kind == "py_map":
        return dataset.map(PY_MAPPERS[op["name"]], description=op["name"])
    raise PlanError(f"unknown plan-spec operator {kind!r}")


def normalized_records(records: list[DataRecord]) -> list[tuple]:
    """Canonical comparable form of an output record list.

    ``(uid, sorted field items)`` per record, order-preserving — the shape
    the bit-identical equivalence oracle compares across execution modes.
    """
    return [
        (record.uid, tuple(sorted(record.fields.items(), key=lambda kv: kv[0])))
        for record in records
    ]
