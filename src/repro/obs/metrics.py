"""Counters and histograms for the runtime's choke points.

A :class:`MetricsRegistry` is a flat namespace of named counters and
histograms, updated at the same instrumentation points the tracer covers:
LLM calls, cache hits/evictions, retries, circuit-breaker opens, wave
widths, cell/section makespans, tokens, and dollars.  Like the tracer, the
default is a null object (:data:`NULL_METRICS`) whose ``enabled`` flag
gates every update site, so disabled-mode cost is one attribute check.
"""

from __future__ import annotations

from repro.utils.formatting import format_table


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Streaming summary (count/sum/min/max) of an observed distribution."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use registry of counters and histograms."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def snapshot(self) -> dict:
        """Plain-data view of everything recorded (JSON-exportable)."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "mean": histogram.mean,
                    "min": histogram.min if histogram.count else 0.0,
                    "max": histogram.max if histogram.count else 0.0,
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def render(self, title: str = "Runtime metrics") -> str:
        rows = [
            [name, "counter", f"{counter.value:g}", "-", "-", "-"]
            for name, counter in sorted(self.counters.items())
        ]
        for name, histogram in sorted(self.histograms.items()):
            low = histogram.min if histogram.count else 0.0
            high = histogram.max if histogram.count else 0.0
            rows.append(
                [
                    name,
                    "histogram",
                    str(histogram.count),
                    f"{histogram.mean:.3f}",
                    f"{low:.3f}",
                    f"{high:.3f}",
                ]
            )
        return format_table(
            ["Metric", "Type", "Count/Value", "Mean", "Min", "Max"], rows, title=title
        )


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Disabled registry: constant-time no-ops, records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def render(self, title: str = "Runtime metrics") -> str:
        return f"{title}: metrics disabled"


NULL_METRICS = NullMetrics()

_default_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_default_metrics() -> MetricsRegistry | NullMetrics:
    """The registry new :class:`SimulatedLLM` instances adopt."""
    return _default_metrics


def set_default_metrics(
    metrics: MetricsRegistry | NullMetrics | None,
) -> MetricsRegistry | NullMetrics:
    """Install ``metrics`` (None restores the null); returns the previous one."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = metrics if metrics is not None else NULL_METRICS
    return previous
