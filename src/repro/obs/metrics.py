"""Counters and histograms for the runtime's choke points.

A :class:`MetricsRegistry` is a flat namespace of named counters and
histograms, updated at the same instrumentation points the tracer covers:
LLM calls, cache hits/evictions, retries, circuit-breaker opens, wave
widths, cell/section makespans, tokens, and dollars.  Like the tracer, the
default is a null object (:data:`NULL_METRICS`) whose ``enabled`` flag
gates every update site, so disabled-mode cost is one attribute check.
"""

from __future__ import annotations

import math

from repro.utils.formatting import format_table

#: Reservoir bound per histogram; past it, samples are decimated (every
#: other one dropped, keep-stride doubled) so memory stays O(cap) while
#: the kept samples remain an evenly spaced — and deterministic — subset.
SAMPLE_CAP = 2048


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Streaming summary (count/sum/min/max/percentiles) of a distribution.

    Percentiles come from a strided sample: every ``_stride``-th
    observation is kept, and when the kept set exceeds
    :data:`SAMPLE_CAP` every other sample is dropped and the stride
    doubles.  No randomness — the same observation sequence always
    yields the same percentiles, which the replay/QA harness relies on.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_stride", "_pending")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) > SAMPLE_CAP:
                del self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over kept samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]


class MetricsRegistry:
    """Create-on-first-use registry of counters and histograms."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def snapshot(self) -> dict:
        """Plain-data view of everything recorded (JSON-exportable)."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "mean": histogram.mean,
                    "min": histogram.min if histogram.count else 0.0,
                    "max": histogram.max if histogram.count else 0.0,
                    "p50": histogram.percentile(50),
                    "p95": histogram.percentile(95),
                    "p99": histogram.percentile(99),
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def render(self, title: str = "Runtime metrics") -> str:
        rows = [
            [name, "counter", f"{counter.value:g}", "-", "-", "-", "-", "-"]
            for name, counter in sorted(self.counters.items())
        ]
        for name, histogram in sorted(self.histograms.items()):
            low = histogram.min if histogram.count else 0.0
            high = histogram.max if histogram.count else 0.0
            rows.append(
                [
                    name,
                    "histogram",
                    str(histogram.count),
                    f"{histogram.mean:.3f}",
                    f"{low:.3f}",
                    f"{high:.3f}",
                    f"{histogram.percentile(50):.3f}",
                    f"{histogram.percentile(99):.3f}",
                ]
            )
        return format_table(
            ["Metric", "Type", "Count/Value", "Mean", "Min", "Max", "p50", "p99"],
            rows,
            title=title,
        )


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Disabled registry: constant-time no-ops, records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def render(self, title: str = "Runtime metrics") -> str:
        return f"{title}: metrics disabled"


NULL_METRICS = NullMetrics()

_default_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_default_metrics() -> MetricsRegistry | NullMetrics:
    """The registry new :class:`SimulatedLLM` instances adopt."""
    return _default_metrics


def set_default_metrics(
    metrics: MetricsRegistry | NullMetrics | None,
) -> MetricsRegistry | NullMetrics:
    """Install ``metrics`` (None restores the null); returns the previous one."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = metrics if metrics is not None else NULL_METRICS
    return previous
