"""Hierarchical spans over the virtual clock.

A :class:`Span` is one timed node in the execution tree: a query, an
optimizer pass, a pipeline section, an operator, a (batch, stage) cell, an
LLM call, an agent episode/step, or a tool call.  Spans nest: the tracer
keeps an explicit stack, so a span opened while another is active becomes
its child.  All times are *virtual* seconds from the
:class:`~repro.utils.clock.VirtualClock` — the same accounting every other
subsystem charges against — so exported traces line up exactly with the
runtime's reported makespans.

Two kinds of spans exist:

- **Stack spans** (:meth:`Tracer.span`): a context manager reads the clock
  on entry and exit.  Right for anything that advances the clock while it
  runs (operators, agent steps, whole queries).
- **Explicitly-timed spans** (:meth:`Tracer.add_span`): the caller supplies
  start/end.  Needed where wall time is *reconstructed* rather than lived —
  pipelined (batch, stage) cells overlap on the schedule even though the
  executor runs them depth-first, and LLM calls inside a parallel wave all
  start at the wave's origin but occupy distinct slots.

The default tracer is the :data:`NOOP_TRACER` singleton: ``enabled`` is
False, ``span()`` hands back one shared null context manager, and nothing
is recorded — instrumented code guards every non-trivial branch with
``if tracer.enabled``, so disabled-mode overhead is a single attribute
check per choke point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    from repro.utils.clock import VirtualClock


@dataclass
class Span:
    """One timed node in the execution tree (virtual seconds)."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    end_s: float | None = None
    #: Named export track (Chrome-trace ``tid``); None = the caller's
    #: default track ("runtime" for stack spans).
    track: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


class _SpanContext:
    """Context manager binding one stack span to one tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Records a tree of spans against a virtual clock.

    The clock is usually bound lazily: :class:`~repro.llm.simulated.SimulatedLLM`
    adopts an unbound enabled tracer and points it at its own clock, so CLI
    and bench code can construct ``Tracer()`` before any runtime exists.
    """

    enabled = True

    def __init__(self, clock: "VirtualClock | None" = None) -> None:
        self.clock = clock
        #: All spans in start order (the export order).
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def now(self) -> float:
        return self.clock.elapsed if self.clock is not None else 0.0

    @property
    def current(self) -> Span | None:
        """The innermost open stack span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, kind: str = "span", **attributes: Any) -> _SpanContext:
        """Open a stack span; closes (reading the clock) when the block exits."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            start_s=self.now(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end_s = self.now()
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans closes them innermost-first anyway).
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop().end_s = self.now()
            self._stack.pop()

    def add_span(
        self,
        name: str,
        kind: str,
        start_s: float,
        end_s: float,
        track: str | None = None,
        parent: Span | None = None,
        **attributes: Any,
    ) -> Span:
        """Record an explicitly-timed span (reconstructed schedule time)."""
        if parent is None:
            parent = self.current
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind,
            start_s=start_s,
            end_s=end_s,
            track=track,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def open_spans(self) -> list[Span]:
        """Spans started but not yet finished (should be empty at export)."""
        return [span for span in self.spans if span.end_s is None]

    def by_kind(self, kind: str) -> list[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]


class _NullSpan:
    """Inert span stand-in; attribute writes land in a throwaway dict."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    kind = ""
    start_s = 0.0
    end_s = 0.0
    track = None
    duration_s = 0.0

    @property
    def attributes(self) -> dict:
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NoopTracer:
    """Disabled tracer: every call is a constant-time no-op."""

    enabled = False
    clock = None
    spans: tuple = ()
    current = None

    def now(self) -> float:
        return 0.0

    def span(self, name: str, kind: str = "span", **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def add_span(self, *args: Any, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def open_spans(self) -> list:
        return []

    def by_kind(self, kind: str) -> list:
        return []

    def children(self, span: Any) -> list:
        return []


NOOP_TRACER = NoopTracer()

_default_tracer: Tracer | NoopTracer = NOOP_TRACER


def get_default_tracer() -> Tracer | NoopTracer:
    """The tracer new :class:`SimulatedLLM` instances adopt."""
    return _default_tracer


def set_default_tracer(tracer: Tracer | NoopTracer | None) -> Tracer | NoopTracer:
    """Install ``tracer`` (None restores the no-op); returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


def walk(spans: list[Span]) -> Iterator[tuple[Span, int]]:
    """Yield ``(span, depth)`` in depth-first start order."""
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)

    def _walk(parent_id: int | None, depth: int) -> Iterator[tuple[Span, int]]:
        for span in by_parent.get(parent_id, []):
            yield span, depth
            yield from _walk(span.span_id, depth + 1)

    yield from _walk(None, 0)
