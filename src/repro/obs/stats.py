"""Trace-fed statistics store: learned per-operator priors.

The observability layer records what every operator *actually did* — rows
in/out, dollars, tokens, latency, retries, cache hits — on every run.  The
:class:`StatisticsStore` closes the loop the paper's runtime vision calls
for: it aggregates those observations into per-(operator, model, dataset)
**priors** that the cost model consults on later queries, replacing static
guesses (selectivity 0.5, cost 0) with learned values, and that the
engine's mid-query re-planner consults when observed cardinality diverges
from the plan.

Two ingestion paths feed the same accumulator:

- :meth:`ingest_run` — called by the query processor after each completed
  run with the engine's measured per-operator stats, aligned position by
  position with the plan's statistics keys.  Emits a zero-duration
  ``stats.ingest`` span so ingestion is visible in traces.
- :meth:`ingest_spans` — offline: walk a finished span tree (e.g. loaded
  from a JSONL export) and re-ingest the per-operator observations the
  engine attached to ``operator`` / ``pipeline-section`` spans.

Keys are opaque stable digests computed by the optimizer layer (see
``repro.sem.optimizer.replan``); this module never imports from
``repro.sem``, keeping ``obs`` at the bottom of the layering.

Updates are **decayed online means** (exponentially weighted): the first
observation sets each statistic, later ones blend in with weight
``decay``, so priors track drift without unbounded state.  Counters mirror
into an attached :class:`~repro.obs.metrics.MetricsRegistry` as
``stats.observations`` / ``stats.lookups`` / ``stats.hits``.

Priors are also keyed to a ``dataset`` (source id), and sources version
themselves on mutation (see :mod:`repro.data.sources`).  The standing
query layer calls :meth:`note_dataset_version` on every source event:
appends *decay* the affected priors (halved observation confidence — the
distribution likely still holds, the cardinalities may not) while in-place
updates *invalidate* them outright (the content the selectivities were
learned on no longer exists).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

#: Bump when the prior schema or key grammar changes; keeps persisted
#: stores honest across versions (a mismatched file loads as empty).
STATS_VERSION = 1

#: Fields updated with the decayed blend (everything but the metadata).
_BLENDED_FIELDS = (
    "selectivity",
    "rows_in",
    "rows_out",
    "tokens_per_record",
    "cost_per_record",
    "latency_per_record",
    "latency_per_call",
    "retry_rate",
    "failure_rate",
    "cache_hit_ratio",
)


@dataclass
class OperatorPrior:
    """Learned statistics for one (operator, model, dataset, scope) key."""

    key: str
    kind: str
    model: str
    dataset: str
    scope: str
    observations: int = 0
    #: Output/input row ratio (output cardinality = input * selectivity).
    selectivity: float = 1.0
    #: Decayed mean input/output cardinalities (absolute row counts).
    rows_in: float = 0.0
    rows_out: float = 0.0
    tokens_per_record: float = 0.0
    cost_per_record: float = 0.0
    latency_per_record: float = 0.0
    latency_per_call: float = 0.0
    #: Fraction of LLM calls that faulted and were retried.
    retry_rate: float = 0.0
    #: Fraction of input records degraded under the failure policy.
    failure_rate: float = 0.0
    cache_hit_ratio: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "OperatorPrior":
        return cls(**payload)


class StatisticsStore:
    """LRU-bounded accumulator of per-operator execution priors.

    ``decay`` is the weight of each new observation after the first
    (``value += decay * (new - value)``); ``min_observations`` is the
    evidence floor consumers should require before trusting a prior
    (exposed here so the optimizer and re-planner agree on it).
    """

    def __init__(
        self,
        decay: float = 0.3,
        min_observations: int = 1,
        max_entries: int = 4096,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.decay = decay
        self.min_observations = min_observations
        self.max_entries = max_entries
        self._priors: "OrderedDict[str, OperatorPrior]" = OrderedDict()
        self._dataset_versions: dict[str, int] = {}
        self.observations = 0
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
        self.dataset_decays = 0
        self.dataset_invalidations = 0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.
        self.metrics = None

    # -- writes ---------------------------------------------------------

    def observe(
        self,
        key: str,
        kind: str,
        model: str,
        dataset: str,
        scope: str,
        *,
        records_in: int,
        records_out: int,
        cost_usd: float = 0.0,
        time_s: float = 0.0,
        llm_calls: int = 0,
        cached_calls: int = 0,
        retried_calls: int = 0,
        failed_records: int = 0,
        tokens: int = 0,
    ) -> "OperatorPrior | None":
        """Fold one measured operator execution into the prior for ``key``.

        Executions that saw no input carry no information about
        selectivity or per-record cost and are dropped (returns None).
        """
        if records_in <= 0:
            return None
        prior = self._priors.get(key)
        if prior is None:
            prior = OperatorPrior(
                key=key, kind=kind, model=model, dataset=dataset, scope=scope
            )
            self._priors[key] = prior
        self._priors.move_to_end(key)
        observed = {
            "selectivity": records_out / records_in,
            "rows_in": float(records_in),
            "rows_out": float(records_out),
            "tokens_per_record": tokens / records_in,
            "cost_per_record": cost_usd / records_in,
            "latency_per_record": time_s / records_in,
            "latency_per_call": time_s / llm_calls if llm_calls else 0.0,
            "retry_rate": retried_calls / llm_calls if llm_calls else 0.0,
            "failure_rate": failed_records / records_in,
            "cache_hit_ratio": cached_calls / llm_calls if llm_calls else 0.0,
        }
        if prior.observations == 0:
            for name in _BLENDED_FIELDS:
                setattr(prior, name, observed[name])
        else:
            for name in _BLENDED_FIELDS:
                old = getattr(prior, name)
                setattr(prior, name, old + self.decay * (observed[name] - old))
        prior.observations += 1
        self.observations += 1
        self._count("stats.observations")
        while len(self._priors) > self.max_entries:
            self._priors.popitem(last=False)
            self.evictions += 1
            self._count("stats.evictions")
        return prior

    # -- reads ----------------------------------------------------------

    def prior(self, key: "str | None") -> "OperatorPrior | None":
        """Look up the prior for ``key`` (None misses without counting)."""
        if key is None:
            return None
        self.lookups += 1
        self._count("stats.lookups")
        prior = self._priors.get(key)
        if prior is None:
            return None
        self._priors.move_to_end(key)
        self.hits += 1
        self._count("stats.hits")
        return prior

    def usable_prior(self, key: "str | None") -> "OperatorPrior | None":
        """Like :meth:`prior` but None below the ``min_observations`` floor."""
        prior = self.prior(key)
        if prior is None or prior.observations < self.min_observations:
            return None
        return prior

    # -- ingestion ------------------------------------------------------

    def ingest_run(self, operator_stats, stats_plan, tracer=None) -> int:
        """Ingest one finished run's measured per-operator statistics.

        ``operator_stats`` is the engine's per-operator measurement list;
        ``stats_plan`` the position-aligned list of key-metadata dicts the
        optimizer produced (None = position not stat-keyed).  Positions
        whose operator label no longer matches the plan entry are skipped —
        alignment bugs must never poison priors.  Emits a zero-duration
        ``stats.ingest`` span on an enabled tracer.
        """
        ingested = 0
        for stats, entry in zip(operator_stats, stats_plan):
            if entry is None:
                continue
            if entry.get("label") != stats.label.split(" [")[0]:
                continue
            if self._observe_entry(
                entry,
                records_in=stats.records_in,
                records_out=stats.records_out,
                cost_usd=stats.cost_usd,
                time_s=stats.time_s,
                llm_calls=stats.llm_calls,
                cached_calls=stats.cached_calls,
                retried_calls=stats.retried_calls,
                failed_records=stats.failed_records,
                tokens=stats.input_tokens + stats.output_tokens,
            ):
                ingested += 1
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "stats.ingest",
                kind="stats.ingest",
                observations=ingested,
                store_size=len(self),
            ):
                pass
        return ingested

    def ingest_spans(self, spans) -> int:
        """Re-ingest observations from a finished span tree (offline path).

        Reads the ``stats`` entry the engine attaches to ``operator``
        spans (numeric attributes + span duration) and the ``stage_stats``
        list it attaches to ``pipeline-section`` spans.
        """
        ingested = 0
        for span in spans:
            attrs = span.attributes
            if span.kind == "operator" and "stats" in attrs:
                duration = (
                    (span.end_s - span.start_s) if span.end_s is not None else 0.0
                )
                if self._observe_entry(
                    attrs["stats"],
                    records_in=attrs.get("records_in", 0),
                    records_out=attrs.get("records_out", 0),
                    cost_usd=attrs.get("cost_usd", 0.0),
                    time_s=duration,
                    llm_calls=attrs.get("llm_calls", 0),
                    cached_calls=attrs.get("cached_calls", 0),
                    retried_calls=attrs.get("retried_calls", 0),
                    failed_records=attrs.get("failed_records", 0),
                    tokens=attrs.get("tokens", 0),
                ):
                    ingested += 1
            elif span.kind == "pipeline-section":
                for stage in attrs.get("stage_stats", ()):
                    if self._observe_entry(
                        stage["stats"],
                        records_in=stage.get("records_in", 0),
                        records_out=stage.get("records_out", 0),
                        cost_usd=stage.get("cost_usd", 0.0),
                        time_s=stage.get("time_s", 0.0),
                        llm_calls=stage.get("llm_calls", 0),
                        cached_calls=stage.get("cached_calls", 0),
                        retried_calls=stage.get("retried_calls", 0),
                        failed_records=stage.get("failed_records", 0),
                        tokens=stage.get("tokens", 0),
                    ):
                        ingested += 1
        return ingested

    def _observe_entry(self, entry: dict, **measured) -> "OperatorPrior | None":
        return self.observe(
            entry["key"],
            entry.get("kind", ""),
            entry.get("model", ""),
            entry.get("dataset", ""),
            entry.get("scope", ""),
            **measured,
        )

    # -- dataset versioning ---------------------------------------------

    def note_dataset_version(
        self, dataset: str, version: int, change: str = "append"
    ) -> int:
        """React to a source-version bump for ``dataset``.

        Appends decay the dataset's priors; in-place updates invalidate
        them.  Returns how many priors were touched.  Repeats of an
        already-seen version are no-ops, so callers can forward every
        source event without double-penalizing priors.
        """
        if not dataset:
            return 0
        previous = self._dataset_versions.get(dataset)
        self._dataset_versions[dataset] = version
        if previous is not None and version == previous:
            return 0
        if change == "update":
            return self.invalidate_dataset(dataset)
        return self.decay_dataset(dataset)

    def decay_dataset(self, dataset: str) -> int:
        """Halve the observation confidence of every prior on ``dataset``.

        The learned per-record statistics stay (new rows from the same
        source usually look like old rows) but consumers with a
        ``min_observations`` floor above 1 stop trusting them until fresh
        evidence re-accumulates.
        """
        touched = 0
        for prior in self._priors.values():
            if prior.dataset == dataset and prior.observations > 1:
                prior.observations = max(1, prior.observations // 2)
                touched += 1
        self.dataset_decays += touched
        self._count("stats.dataset_decays", touched)
        return touched

    def invalidate_dataset(self, dataset: str) -> int:
        """Drop every prior learned on ``dataset`` (in-place rewrite)."""
        stale = [
            key
            for key, prior in self._priors.items()
            if prior.dataset == dataset
        ]
        for key in stale:
            del self._priors[key]
        self.dataset_invalidations += len(stale)
        self._count("stats.dataset_invalidations", len(stale))
        return len(stale)

    # -- maintenance ----------------------------------------------------

    def clear(self) -> None:
        self._priors.clear()

    def priors(self) -> "list[OperatorPrior]":
        return list(self._priors.values())

    def __len__(self) -> int:
        return len(self._priors)

    def stats(self) -> dict:
        return {
            "entries": len(self._priors),
            "observations": self.observations,
            "lookups": self.lookups,
            "hits": self.hits,
            "evictions": self.evictions,
            "dataset_decays": self.dataset_decays,
            "dataset_invalidations": self.dataset_invalidations,
        }

    # -- persistence ----------------------------------------------------

    def save(self, path: "str | Path") -> int:
        """Persist all priors as JSON; returns how many were saved."""
        payload = {
            "version": STATS_VERSION,
            "decay": self.decay,
            "priors": [prior.to_dict() for prior in self._priors.values()],
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")
        return len(self._priors)

    def load(self, path: "str | Path") -> int:
        """Load priors saved by :meth:`save`; returns how many were loaded.

        A version mismatch loads nothing (stale key grammars must never
        feed estimates).  ``max_entries`` is enforced before insertion:
        oldest overflow (save order = LRU order) is dropped and counted as
        evictions.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != STATS_VERSION:
            return 0
        priors = payload.get("priors", [])
        overflow = max(0, len(priors) - self.max_entries)
        if overflow:
            self.evictions += overflow
            self._count("stats.evictions", overflow)
        loaded = 0
        for raw in priors[overflow:]:
            prior = OperatorPrior.from_dict(raw)
            self._priors[prior.key] = prior
            self._priors.move_to_end(prior.key)
            loaded += 1
        while len(self._priors) > self.max_entries:
            self._priors.popitem(last=False)
            self.evictions += 1
            self._count("stats.evictions")
        return loaded

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)
