"""Observability: hierarchical tracing, metrics, and trace exporters.

The runtime's execution layers (query → optimize → pipeline section →
operator → cell → LLM call; agent episode → step → tool call) all report
into one shared :class:`~repro.obs.tracer.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry`; exporters render the result
as a JSONL event log or a Perfetto-loadable Chrome trace.  Disabled by
default via no-op singletons — see ``docs/observability.md``.
"""

from repro.obs.export import (
    KNOWN_SPAN_KINDS,
    chrome_trace,
    validate_chrome_trace,
    validate_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    get_default_metrics,
    set_default_metrics,
)
from repro.obs.stats import OperatorPrior, StatisticsStore
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_default_tracer,
    set_default_tracer,
    walk,
)

__all__ = [
    "KNOWN_SPAN_KINDS",
    "NOOP_TRACER",
    "NULL_METRICS",
    "MetricsRegistry",
    "NoopTracer",
    "NullMetrics",
    "OperatorPrior",
    "Span",
    "StatisticsStore",
    "Tracer",
    "chrome_trace",
    "get_default_metrics",
    "get_default_tracer",
    "set_default_metrics",
    "set_default_tracer",
    "validate_chrome_trace",
    "validate_spans",
    "walk",
    "write_chrome_trace",
    "write_jsonl",
]
