"""Trace exporters: JSONL event log + Chrome-trace (Perfetto) JSON.

Two consumers, two formats:

- :func:`write_jsonl` — one JSON object per line (spans, then metric
  snapshots, then raw usage events when a tracker is supplied).  Greppable,
  diffable, streamable.
- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format (``"X"`` complete events with microsecond ``ts``/``dur``),
  loadable in https://ui.perfetto.dev or ``chrome://tracing``.  Each span
  track becomes a named thread: stack spans land on the ``runtime`` track,
  pipelined (batch, stage) cells on per-stage tracks, and parallel LLM
  calls on per-slot tracks — so pipeline overlap and wave fan-out are
  literally visible as parallel bars.

:func:`validate_chrome_trace` is the acceptance gate used by tests and
``scripts/check.sh``: the file must parse, spans must nest/abut cleanly on
every track, and the trace's end must match the virtual clock's elapsed
time (recorded in ``otherData``) within 1%.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:
    from repro.llm.usage import UsageTracker
    from repro.obs.metrics import MetricsRegistry

#: Process id used for all events (single simulated process).
PID = 1

#: Track (thread) name for stack spans with no explicit track.
DEFAULT_TRACK = "runtime"

#: Nesting slack in microseconds (float rounding across schedule math).
_NEST_EPS_US = 0.5

#: Every span kind the runtime emits.  :func:`validate_spans` rejects
#: anything else — a typo'd kind would otherwise slip past downstream
#: consumers (the stats store dispatches on kind) unnoticed.
KNOWN_SPAN_KINDS = frozenset(
    {
        "span",
        "cli",
        "query",
        "optimize",
        "profile",
        "reuse",
        "replan",
        "exchange",
        "stats.ingest",
        "operator",
        "pipeline-section",
        "cell",
        "llm-call",
        "trial",
        "tool-call",
        "agent-episode",
        "agent-step",
        "serving-query",
        "serving-wave",
        "standing-query",
        "standing-tick",
        "changelog",
    }
)


def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(
    tracer: Tracer,
    clock_elapsed_s: float | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> dict:
    """Build a Chrome-trace-format dict from ``tracer``'s spans."""
    if clock_elapsed_s is None and tracer.clock is not None:
        clock_elapsed_s = tracer.clock.elapsed
    track_ids: dict[str, int] = {DEFAULT_TRACK: 0}
    events: list[dict] = []
    for span in tracer.spans:
        track = span.track or DEFAULT_TRACK
        tid = track_ids.setdefault(track, len(track_ids))
        end = span.end_s if span.end_s is not None else span.start_s
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": _us(span.start_s),
            "dur": _us(end - span.start_s),
            "pid": PID,
            "tid": tid,
        }
        args = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event["args"] = args
        events.append(event)

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "args": {"name": "repro (virtual time)"},
        }
    ]
    for track, tid in track_ids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
        metadata.append(
            {"name": "thread_sort_index", "ph": "M", "pid": PID, "tid": tid,
             "args": {"sort_index": tid}}
        )

    other: dict[str, Any] = {"generator": "repro.obs"}
    if clock_elapsed_s is not None:
        other["clock_elapsed_s"] = clock_elapsed_s
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer,
    clock_elapsed_s: float | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> Path:
    path = Path(path)
    payload = chrome_trace(tracer, clock_elapsed_s=clock_elapsed_s, metrics=metrics)
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return path


def span_to_dict(span: Span) -> dict:
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "track": span.track,
        "attributes": span.attributes,
    }


def write_jsonl(
    path: str | Path,
    tracer: Tracer,
    metrics: "MetricsRegistry | None" = None,
    tracker: "UsageTracker | None" = None,
) -> Path:
    """Write spans (+ metrics snapshot, + usage events) as JSON lines."""
    path = Path(path)
    lines = [json.dumps(span_to_dict(span)) for span in tracer.spans]
    if metrics is not None:
        snapshot = metrics.snapshot()
        for name, value in snapshot["counters"].items():
            lines.append(json.dumps({"type": "counter", "name": name, "value": value}))
        for name, stats in snapshot["histograms"].items():
            lines.append(json.dumps({"type": "histogram", "name": name, **stats}))
    if tracker is not None:
        for event in tracker.events:
            lines.append(
                json.dumps(
                    {
                        "type": "usage_event",
                        "model": event.model,
                        "tag": event.tag,
                        "input_tokens": event.input_tokens,
                        "output_tokens": event.output_tokens,
                        "cost_usd": event.cost_usd,
                        "latency_s": event.latency_s,
                        "cached": event.cached,
                        "failed": event.failed,
                        "retries": event.retries,
                        "error": event.error,
                    }
                )
            )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def validate_spans(spans: list[Span]) -> None:
    """Structural checks on a span tree; raises ValueError on violation.

    Every span must be closed, carry a known kind, know its parent (or be
    a root), and lie within its parent's interval (small float slack).
    Siblings (same parent, same track) must nest or abut — a partial
    overlap means the trace would render as garbage in Perfetto and is
    rejected here instead of silently exported.  Root spans are exempt
    from the overlap check: concurrent serving queries legitimately
    overlap on a tenant's track.
    """
    by_id = {span.span_id: span for span in spans}
    eps = 1e-6
    for span in spans:
        if span.end_s is None:
            raise ValueError(f"span {span.span_id} ({span.name!r}) never closed")
        if span.end_s < span.start_s:
            raise ValueError(f"span {span.span_id} ({span.name!r}) ends before it starts")
        if span.kind not in KNOWN_SPAN_KINDS:
            raise ValueError(
                f"span {span.span_id} ({span.name!r}) has unknown kind "
                f"{span.kind!r}; known kinds: {sorted(KNOWN_SPAN_KINDS)}"
            )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            raise ValueError(f"span {span.span_id} has unknown parent {span.parent_id}")
        if parent.end_s is None:
            continue
        if span.start_s < parent.start_s - eps or span.end_s > parent.end_s + eps:
            raise ValueError(
                f"span {span.span_id} ({span.name!r}) "
                f"[{span.start_s:.6f}, {span.end_s:.6f}] escapes parent "
                f"{parent.span_id} ({parent.name!r}) "
                f"[{parent.start_s:.6f}, {parent.end_s:.6f}]"
            )

    siblings: dict[tuple, list[Span]] = {}
    for span in spans:
        if span.parent_id is None:
            continue
        siblings.setdefault((span.parent_id, span.track), []).append(span)
    for group in siblings.values():
        group.sort(key=lambda s: (s.start_s, -(s.end_s - s.start_s)))
        stack: list[Span] = []
        for span in group:
            if span.end_s - span.start_s <= eps:
                continue  # instant markers never unbalance
            while stack and span.start_s >= stack[-1].end_s - eps:
                stack.pop()
            if stack and span.end_s > stack[-1].end_s + eps:
                top = stack[-1]
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) "
                    f"[{span.start_s:.6f}, {span.end_s:.6f}] partially overlaps "
                    f"sibling {top.span_id} ({top.name!r}) "
                    f"[{top.start_s:.6f}, {top.end_s:.6f}] on track {span.track!r}"
                )
            stack.append(span)


def validate_chrome_trace(path: str | Path, tolerance: float = 0.01) -> dict:
    """Parse and check an exported Chrome trace; returns a summary dict.

    Checks: the JSON parses; there is at least one complete (``"X"``)
    event; on every track, events nest or abut without partial overlap
    (balanced spans); and, when ``otherData.clock_elapsed_s`` is present,
    the last event ends within ``tolerance`` of the clock's elapsed time.
    Raises ValueError on any violation.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    events = [e for e in payload.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        raise ValueError(f"{path}: no complete ('X') trace events")

    by_track: dict[int, list[dict]] = {}
    for event in events:
        if event["dur"] < 0:
            raise ValueError(f"{path}: negative duration on {event['name']!r}")
        by_track.setdefault(event["tid"], []).append(event)
    for tid, track_events in by_track.items():
        track_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []
        for event in track_events:
            if event["dur"] == 0:
                continue  # instant markers (cached calls) never unbalance
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - _NEST_EPS_US:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end + _NEST_EPS_US:
                    raise ValueError(
                        f"{path}: unbalanced spans on track {tid}: "
                        f"{event['name']!r} ends at {end:.1f}us, past "
                        f"{stack[-1]['name']!r} at {parent_end:.1f}us"
                    )
            stack.append(event)

    trace_end_s = max(e["ts"] + e["dur"] for e in events) / 1e6
    summary = {
        "events": len(events),
        "tracks": len(by_track),
        "trace_end_s": trace_end_s,
    }
    clock_elapsed = payload.get("otherData", {}).get("clock_elapsed_s")
    if clock_elapsed is not None:
        summary["clock_elapsed_s"] = clock_elapsed
        if clock_elapsed > 0:
            drift = abs(trace_end_s - clock_elapsed) / clock_elapsed
            summary["drift"] = drift
            if drift > tolerance:
                raise ValueError(
                    f"{path}: trace ends at {trace_end_s:.3f}s but the virtual "
                    f"clock elapsed {clock_elapsed:.3f}s ({drift:.1%} > {tolerance:.0%})"
                )
    return summary
