"""repro: a runtime for AI-driven analytics (CIDR 2026 reproduction).

Reproduction of Russo & Kraska, *Deep Research is the New Analytics
System: Towards Building the Runtime for AI-Driven Analytics* (CIDR 2026).

The library combines three execution paradigms over unstructured data:

- **semantic operators** (:mod:`repro.sem`): declarative AI-powered
  filters/maps/joins with cost-based optimization;
- **Deep Research agents** (:mod:`repro.agents`): CodeAgents that plan,
  write sandboxed Python, and use tools;
- **SQL** (:mod:`repro.sql`): an in-memory engine for structured tables
  materialized from unstructured data.

The paper's contribution lives in :mod:`repro.core`: the :class:`Context`
abstraction, the agent-backed ``search``/``compute`` operators with their
optimized-semantic-program tool, and the :class:`ContextManager` for
materialized-Context reuse.

Because this reproduction runs offline, all LLM calls go through a
deterministic simulated service (:mod:`repro.llm`); see DESIGN.md for the
substitution argument.

Quickstart::

    from repro import AnalyticsRuntime
    from repro.data.datasets import generate_enron_corpus

    bundle = generate_enron_corpus()
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=0)
    context = runtime.make_context(bundle)
    result = runtime.compute(context, "Return all emails which ...")
"""

from repro.core.context import Context
from repro.core.context_manager import ContextManager
from repro.core.operators import compute, search
from repro.core.runtime import AnalyticsRuntime
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sql.database import Database

__version__ = "1.0.0"

__all__ = [
    "AnalyticsRuntime",
    "Context",
    "ContextManager",
    "DataRecord",
    "Database",
    "Dataset",
    "Field",
    "QueryProcessorConfig",
    "Schema",
    "SimulatedLLM",
    "__version__",
    "compute",
    "search",
]
