"""Data substrate: records, schemas, sources, and synthetic corpora."""

from repro.data.corpus import FileCorpus
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.data.sources import DataSource, MemorySource

__all__ = [
    "DataRecord",
    "DataSource",
    "Field",
    "FileCorpus",
    "MemorySource",
    "Schema",
]
