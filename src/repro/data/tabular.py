"""Parsing helpers for the two file formats in the synthetic data lakes.

Agents' sandboxed Python and the dataset generators both need to read and
write small CSV files and extract tables from simple HTML reports.  The CSV
side wraps the stdlib; the HTML side is a minimal ``html.parser`` walk that
collects ``<table>`` rows.
"""

from __future__ import annotations

import csv
import io
import re
from html.parser import HTMLParser


def parse_csv(text: str) -> list[dict[str, str]]:
    """Parse CSV ``text`` into a list of header-keyed row dicts."""
    reader = csv.DictReader(io.StringIO(text))
    return [dict(row) for row in reader]


def render_csv(headers: list[str], rows: list[list[object]]) -> str:
    """Render ``rows`` under ``headers`` as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


class _TableCollector(HTMLParser):
    """Collects cell text from every <table> in a document."""

    def __init__(self) -> None:
        super().__init__()
        self.tables: list[list[list[str]]] = []
        self._row: list[str] | None = None
        self._cell: list[str] | None = None

    def handle_starttag(self, tag: str, attrs) -> None:
        if tag == "table":
            self.tables.append([])
        elif tag == "tr" and self.tables:
            self._row = []
        elif tag in ("td", "th") and self._row is not None:
            self._cell = []

    def handle_endtag(self, tag: str) -> None:
        if tag in ("td", "th") and self._cell is not None and self._row is not None:
            self._row.append(" ".join("".join(self._cell).split()))
            self._cell = None
        elif tag == "tr" and self._row is not None and self.tables:
            self.tables[-1].append(self._row)
            self._row = None

    def handle_data(self, data: str) -> None:
        if self._cell is not None:
            self._cell.append(data)


def parse_html_tables(text: str) -> list[list[list[str]]]:
    """Extract all tables from ``text`` as lists of rows of cell strings."""
    collector = _TableCollector()
    collector.feed(text)
    return collector.tables


def render_html_report(title: str, paragraphs: list[str], tables: list[tuple[list[str], list[list[object]]]]) -> str:
    """Render a small HTML report with a title, prose, and tables."""
    parts = [f"<html><head><title>{title}</title></head><body>", f"<h1>{title}</h1>"]
    for paragraph in paragraphs:
        parts.append(f"<p>{paragraph}</p>")
    for headers, rows in tables:
        parts.append("<table>")
        parts.append("<tr>" + "".join(f"<th>{cell}</th>" for cell in headers) + "</tr>")
        for row in rows:
            parts.append("<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)


_NUMBER_RE = re.compile(r"-?\d[\d,]*\.?\d*")


def extract_numbers(text: str) -> list[float]:
    """Pull numeric values (comma-grouped allowed) out of free text."""
    values = []
    for match in _NUMBER_RE.finditer(text):
        token = match.group(0).replace(",", "")
        try:
            values.append(float(token))
        except ValueError:
            continue
    return values
