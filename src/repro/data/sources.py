"""Data sources: where plans get their records.

A :class:`DataSource` yields :class:`DataRecord` objects and reports its
cardinality when known; the optimizer uses cardinalities for cost estimates.

Sources are also the *change feed* for standing queries (see
:mod:`repro.sem.streaming`): every mutation — an append of new records or
an in-place update of an existing one — bumps the source's version
counters, is logged as a :class:`SourceEvent`, and is pushed to any
subscribed listeners.  Two counters make the distinction the
materialization layer needs:

- ``version`` counts *every* mutation (appends and updates);
- ``content_version`` counts only in-place updates.  Appends grow the uid
  sequence, so the :class:`~repro.sem.materialize.MaterializationStore`
  catches them with its source-uid prefix check; updates keep the uids and
  would silently replay stale records — the store compares
  ``content_version`` to catch exactly that case.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.data.records import DataRecord
from repro.data.schemas import TEXT_FILE_SCHEMA, Schema
from repro.errors import DataSourceError


@dataclass(frozen=True)
class SourceEvent:
    """One logged mutation of a :class:`DataSource`.

    ``event_time_s`` is the *event time* the producer stamped on the
    change (watermark triggers compare it against allowed lateness); None
    means unstamped, which downstream triggers treat as immediately ripe.
    """

    kind: str  # "append" | "update"
    source_id: str
    uids: tuple[str, ...]
    #: Source version *after* this event (monotonic, counts all mutations).
    version: int
    #: Update-generation after this event (bumped by updates only).
    content_version: int
    event_time_s: float | None = None


class DataSource(abc.ABC):
    """Abstract record source with a schema and optional cardinality."""

    def __init__(self, source_id: str, schema: Schema) -> None:
        self.source_id = source_id
        self.schema = schema
        #: Monotonic mutation counter (appends and updates).
        self.version = 0
        #: Monotonic in-place-update counter (see module docstring).
        self.content_version = 0
        #: Append/update event log, oldest first.
        self.events: list[SourceEvent] = []
        self._subscribers: list[Callable[[SourceEvent], None]] = []

    @abc.abstractmethod
    def iterate(self) -> Iterator[DataRecord]:
        """Yield the source's records."""

    def cardinality(self) -> int | None:
        """Number of records, or None if unknown without scanning."""
        return None

    def subscribe(self, callback: Callable[[SourceEvent], None]) -> None:
        """Register a listener invoked synchronously on every mutation."""
        self._subscribers.append(callback)

    def _publish(self, event: SourceEvent) -> SourceEvent:
        self.events.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def __iter__(self) -> Iterator[DataRecord]:
        return self.iterate()


class MemorySource(DataSource):
    """A source over an in-memory list of records."""

    def __init__(
        self,
        records: Iterable[DataRecord],
        schema: Schema,
        source_id: str = "memory",
    ) -> None:
        super().__init__(source_id, schema)
        self._records = list(records)
        for record in self._records:
            if not record.source_id:
                record.source_id = source_id

    def iterate(self) -> Iterator[DataRecord]:
        return iter(self._records)

    def cardinality(self) -> int:
        return len(self._records)

    def records(self) -> list[DataRecord]:
        return list(self._records)

    # -- mutations (the standing-query change feed) ---------------------

    def append(
        self,
        records: Iterable[DataRecord],
        event_time_s: float | None = None,
    ) -> SourceEvent:
        """Append records at the end of the source and publish the event.

        Append-only growth preserves the existing uid prefix, so
        materialized prefixes stay delta-reusable.
        """
        appended = list(records)
        for record in appended:
            if not record.source_id:
                record.source_id = self.source_id
        self._records.extend(appended)
        self.version += 1
        return self._publish(
            SourceEvent(
                kind="append",
                source_id=self.source_id,
                uids=tuple(record.uid for record in appended),
                version=self.version,
                content_version=self.content_version,
                event_time_s=event_time_s,
            )
        )

    def update(
        self,
        uid: str,
        fields: dict,
        event_time_s: float | None = None,
    ) -> SourceEvent:
        """Mutate an existing record's fields in place and publish the event.

        Updates keep the record's uid, so prefix-matching alone cannot see
        them — the bumped ``content_version`` is what invalidates
        materialized entries built on the old contents.
        """
        for record in self._records:
            if record.uid == uid:
                record.fields.update(fields)
                break
        else:
            raise DataSourceError(
                f"source {self.source_id!r} has no record with uid {uid!r}"
            )
        self.version += 1
        self.content_version += 1
        return self._publish(
            SourceEvent(
                kind="update",
                source_id=self.source_id,
                uids=(uid,),
                version=self.version,
                content_version=self.content_version,
                event_time_s=event_time_s,
            )
        )


class DirectorySource(DataSource):
    """A source that wraps each file in a directory as one record.

    Used when a corpus has been dumped to disk; the synthetic benchmarks
    normally stay in memory via :class:`MemorySource`.
    """

    def __init__(self, root: str | Path, source_id: str | None = None) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise DataSourceError(f"not a directory: {self.root}")
        super().__init__(source_id or str(self.root), TEXT_FILE_SCHEMA)

    def _paths(self) -> list[Path]:
        return sorted(path for path in self.root.iterdir() if path.is_file())

    def iterate(self) -> Iterator[DataRecord]:
        for path in self._paths():
            try:
                contents = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise DataSourceError(f"cannot read {path}: {exc}") from exc
            yield DataRecord(
                fields={
                    "filename": path.name,
                    "contents": contents,
                    "format": path.suffix.lstrip(".").lower() or "txt",
                },
                uid=f"file:{path.name}",
                source_id=self.source_id,
            )

    def cardinality(self) -> int:
        return len(self._paths())
