"""Data sources: where plans get their records.

A :class:`DataSource` yields :class:`DataRecord` objects and reports its
cardinality when known; the optimizer uses cardinalities for cost estimates.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Iterable, Iterator

from repro.data.records import DataRecord
from repro.data.schemas import TEXT_FILE_SCHEMA, Schema
from repro.errors import DataSourceError


class DataSource(abc.ABC):
    """Abstract record source with a schema and optional cardinality."""

    def __init__(self, source_id: str, schema: Schema) -> None:
        self.source_id = source_id
        self.schema = schema

    @abc.abstractmethod
    def iterate(self) -> Iterator[DataRecord]:
        """Yield the source's records."""

    def cardinality(self) -> int | None:
        """Number of records, or None if unknown without scanning."""
        return None

    def __iter__(self) -> Iterator[DataRecord]:
        return self.iterate()


class MemorySource(DataSource):
    """A source over an in-memory list of records."""

    def __init__(
        self,
        records: Iterable[DataRecord],
        schema: Schema,
        source_id: str = "memory",
    ) -> None:
        super().__init__(source_id, schema)
        self._records = list(records)
        for record in self._records:
            if not record.source_id:
                record.source_id = source_id

    def iterate(self) -> Iterator[DataRecord]:
        return iter(self._records)

    def cardinality(self) -> int:
        return len(self._records)

    def records(self) -> list[DataRecord]:
        return list(self._records)


class DirectorySource(DataSource):
    """A source that wraps each file in a directory as one record.

    Used when a corpus has been dumped to disk; the synthetic benchmarks
    normally stay in memory via :class:`MemorySource`.
    """

    def __init__(self, root: str | Path, source_id: str | None = None) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise DataSourceError(f"not a directory: {self.root}")
        super().__init__(source_id or str(self.root), TEXT_FILE_SCHEMA)

    def _paths(self) -> list[Path]:
        return sorted(path for path in self.root.iterdir() if path.is_file())

    def iterate(self) -> Iterator[DataRecord]:
        for path in self._paths():
            try:
                contents = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise DataSourceError(f"cannot read {path}: {exc}") from exc
            yield DataRecord(
                fields={
                    "filename": path.name,
                    "contents": contents,
                    "format": path.suffix.lstrip(".").lower() or "txt",
                },
                uid=f"file:{path.name}",
                source_id=self.source_id,
            )

    def cardinality(self) -> int:
        return len(self._paths())
