"""In-memory file corpus with an optional on-disk mirror.

Agents interact with data lakes through file tools (``list_files``,
``read_file``).  A :class:`FileCorpus` backs those tools with an in-memory
mapping so benchmarks are hermetic, while :meth:`dump` can write the corpus
to disk for inspection or for the :class:`~repro.data.sources.DirectorySource`
path.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.records import DataRecord
from repro.data.schemas import TEXT_FILE_SCHEMA
from repro.data.sources import MemorySource
from repro.errors import DataSourceError


class FileCorpus:
    """A named set of text files."""

    def __init__(self, name: str, files: dict[str, str] | None = None) -> None:
        self.name = name
        self._files: dict[str, str] = dict(files or {})
        #: Hidden per-file annotations, keyed by filename (set by generators).
        self._annotations: dict[str, dict] = {}

    def add(self, filename: str, contents: str, annotations: dict | None = None) -> None:
        if filename in self._files:
            raise DataSourceError(f"duplicate file in corpus {self.name!r}: {filename}")
        self._files[filename] = contents
        if annotations:
            self._annotations[filename] = dict(annotations)

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def read_file(self, filename: str) -> str:
        try:
            return self._files[filename]
        except KeyError:
            raise DataSourceError(
                f"no file named {filename!r} in corpus {self.name!r}"
            ) from None

    def __contains__(self, filename: str) -> bool:
        return filename in self._files

    def __len__(self) -> int:
        return len(self._files)

    def annotations_for(self, filename: str) -> dict:
        return dict(self._annotations.get(filename, {}))

    def to_records(self) -> list[DataRecord]:
        """Wrap each file as a :class:`DataRecord` (sorted by filename)."""
        records = []
        for filename in self.list_files():
            suffix = filename.rsplit(".", 1)[-1].lower() if "." in filename else "txt"
            records.append(
                DataRecord(
                    fields={
                        "filename": filename,
                        "contents": self._files[filename],
                        "format": suffix,
                    },
                    uid=f"{self.name}:{filename}",
                    annotations=self._annotations.get(filename, {}),
                    source_id=self.name,
                )
            )
        return records

    def to_source(self) -> MemorySource:
        return MemorySource(self.to_records(), TEXT_FILE_SCHEMA, source_id=self.name)

    def dump(self, directory: str | Path) -> Path:
        """Write every file under ``directory`` and return the path."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        for filename, contents in self._files.items():
            (root / filename).write_text(contents, encoding="utf-8")
        return root

    @classmethod
    def from_directory(cls, directory: str | Path, name: str | None = None) -> "FileCorpus":
        root = Path(directory)
        if not root.is_dir():
            raise DataSourceError(f"not a directory: {root}")
        corpus = cls(name or root.name)
        for path in sorted(root.iterdir()):
            if path.is_file():
                corpus.add(path.name, path.read_text(encoding="utf-8"))
        return corpus
