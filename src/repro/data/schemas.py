"""Lightweight typed schemas for semantic-operator plans.

Palimpzest attaches schemas to datasets so maps can declare the fields they
compute.  We keep the same shape: a :class:`Schema` is an ordered set of
:class:`Field` objects, each with a Python type and a natural-language
description (the description is what gets put in extraction prompts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.records import DataRecord
from repro.errors import SchemaError

#: ``object`` means "any": no coercion is applied (used by synthesized
#: programs whose extraction type is unknown until runtime).
_ALLOWED_TYPES = (str, int, float, bool, list, dict, object)


@dataclass(frozen=True)
class Field:
    """One named, typed, described output column."""

    name: str
    type: type = str
    desc: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"field name must be an identifier, got {self.name!r}")
        if self.type not in _ALLOWED_TYPES:
            allowed = ", ".join(t.__name__ for t in _ALLOWED_TYPES)
            raise SchemaError(
                f"field {self.name!r} has unsupported type {self.type!r}; "
                f"allowed: {allowed}"
            )

    def coerce(self, value: Any) -> Any:
        """Best-effort coercion of ``value`` to this field's type.

        Simulated extractions can return numerics as strings and vice versa;
        coercion failures surface as ``None`` rather than raising, matching
        how semantic-operator systems tolerate malformed model output.
        """
        if self.type is object or value is None or isinstance(value, self.type):
            return value
        try:
            if self.type is bool and isinstance(value, str):
                return value.strip().lower() in ("true", "yes", "1")
            return self.type(value)
        except (TypeError, ValueError):
            return None


class Schema:
    """An ordered collection of fields."""

    def __init__(self, fields: list[Field], name: str = "Schema", desc: str = "") -> None:
        names = [field.name for field in fields]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate field names in schema: {sorted(duplicates)}")
        self.fields = list(fields)
        self.name = name
        self.desc = desc
        self._by_name = {field.name: field for field in fields}

    def field_names(self) -> list[str]:
        return [field.name for field in self.fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r}; "
                f"fields: {self.field_names()}"
            ) from None

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def union(self, other: "Schema", name: str | None = None) -> "Schema":
        """Schema with this schema's fields plus ``other``'s new fields."""
        merged = list(self.fields)
        for field in other.fields:
            if field.name not in self._by_name:
                merged.append(field)
        return Schema(merged, name=name or f"{self.name}+{other.name}")

    def project(self, names: list[str], name: str | None = None) -> "Schema":
        """Schema restricted to ``names`` (order taken from ``names``)."""
        return Schema([self[name_] for name_ in names], name=name or f"{self.name}[proj]")

    def validate(self, record: DataRecord) -> list[str]:
        """Return a list of problems with ``record`` under this schema."""
        problems = []
        for field in self.fields:
            if field.name not in record:
                problems.append(f"missing field {field.name!r}")
                continue
            value = record[field.name]
            if value is not None and not isinstance(value, field.type):
                problems.append(
                    f"field {field.name!r} expected {field.type.__name__}, "
                    f"got {type(value).__name__}"
                )
        return problems

    def __repr__(self) -> str:
        return f"Schema({self.name}, fields={self.field_names()})"


#: Schema for records wrapping whole files (the Kramabench corpus).
TEXT_FILE_SCHEMA = Schema(
    [
        Field("filename", str, "name of the file"),
        Field("contents", str, "full text contents of the file"),
        Field("format", str, "file format, e.g. csv or html"),
    ],
    name="TextFile",
    desc="A file from an unstructured data lake.",
)

#: Schema for email records (the Enron corpus).
EMAIL_SCHEMA = Schema(
    [
        Field("filename", str, "name of the email file"),
        Field("sender", str, "email address of the sender"),
        Field("subject", str, "subject line of the email"),
        Field("body", str, "full text body of the email"),
    ],
    name="Email",
    desc="An email message from a corporate mail archive.",
)
