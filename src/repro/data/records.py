"""The :class:`DataRecord` carried through semantic-operator plans.

A record is a bag of named fields plus two pieces of machinery:

- **annotations** — hidden ground truth written by the synthetic dataset
  generators and read only by the simulated LLM's oracle.  Operator code
  never inspects annotations; doing so would be cheating.
- **lineage** — every derived record remembers its parents, so executors can
  attribute outputs to source records (needed for precision/recall scoring
  and for the paper's materialized-Context provenance).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

_UID_COUNTER = itertools.count()


def reset_uid_counter() -> None:
    """Restart auto-assigned record uids at ``rec-0``.

    Derived records draw uids from a process-global counter, and the
    simulated LLM keys its per-record noise on the uid.  Experiments that
    compare two executions of the same plan (e.g. pipelined vs barrier)
    must reset the counter before each run so derived records line up;
    otherwise the second run sees different uids and different noise.
    """
    global _UID_COUNTER
    _UID_COUNTER = itertools.count()


class DataRecord:
    """A single row flowing through a plan."""

    __slots__ = ("uid", "fields", "annotations", "source_id", "parent_uids")

    def __init__(
        self,
        fields: dict[str, Any],
        uid: str | None = None,
        annotations: dict[str, Any] | None = None,
        source_id: str = "",
        parent_uids: tuple[str, ...] = (),
    ) -> None:
        self.uid = uid if uid is not None else f"rec-{next(_UID_COUNTER)}"
        self.fields = dict(fields)
        self.annotations = dict(annotations or {})
        self.source_id = source_id
        self.parent_uids = tuple(parent_uids)

    def __getitem__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"record {self.uid} has no field {name!r}; "
                f"fields: {sorted(self.fields)}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def field_names(self) -> list[str]:
        return sorted(self.fields)

    def derive(
        self,
        new_fields: dict[str, Any] | None = None,
        drop: Iterable[str] = (),
    ) -> "DataRecord":
        """Create a child record with updated fields and lineage to ``self``.

        Annotations are inherited so downstream semantic operators can still
        be judged by the oracle after projections and maps.

        The child's uid is a pure function of the parent uid and the shape
        of the change (field names added/dropped), NOT of a global counter.
        The simulated LLM keys its noise on record uids, so counter-drawn
        uids made answers depend on *when* a record was derived — pipelined
        and barrier executions interleave derivations differently and
        silently disagreed on plans with two or more deriving operators.
        Deterministic uids make the cross-mode bit-identical contract hold
        structurally.
        """
        from repro.utils.hashing import stable_digest

        dropped = set(drop)
        fields = {
            name: value for name, value in self.fields.items() if name not in dropped
        }
        if new_fields:
            fields.update(new_fields)
        suffix = stable_digest(
            self.uid, tuple(sorted(new_fields or ())), tuple(sorted(dropped))
        )[:6]
        return DataRecord(
            fields=fields,
            uid=f"{self.uid}.{suffix}",
            annotations=self.annotations,
            source_id=self.source_id,
            parent_uids=(self.uid,),
        )

    @staticmethod
    def merge(left: "DataRecord", right: "DataRecord") -> "DataRecord":
        """Join two records; right-hand fields win on name collisions.

        As with :meth:`derive`, the merged uid is a pure function of the
        parent uids so join outputs are identical across execution modes.
        """
        from repro.utils.hashing import stable_digest

        fields = dict(left.fields)
        fields.update(right.fields)
        annotations = dict(left.annotations)
        annotations.update(right.annotations)
        return DataRecord(
            fields=fields,
            uid=f"{left.uid}*{stable_digest(left.uid, right.uid)[:6]}",
            annotations=annotations,
            source_id=left.source_id or right.source_id,
            parent_uids=(left.uid, right.uid),
        )

    def as_text(self) -> str:
        """Render the record as text, as it would be placed in an LLM prompt."""
        parts = []
        for name in sorted(self.fields):
            value = self.fields[name]
            parts.append(f"{name}: {value}")
        return "\n".join(parts)

    def root_uids(self, resolver: "dict[str, DataRecord] | None" = None) -> tuple[str, ...]:
        """Return source-record uids reachable through lineage.

        When ``resolver`` (uid -> record) is provided, lineage is followed
        transitively; otherwise direct parents (or self for source records)
        are returned.
        """
        if not self.parent_uids:
            return (self.uid,)
        if resolver is None:
            # Order-preserving dedup: self-joins can list a parent twice
            # (derived uids are deterministic, so equal derivations of the
            # same parent share a uid).
            seen_parents: set[str] = set()
            return tuple(
                uid
                for uid in self.parent_uids
                if not (uid in seen_parents or seen_parents.add(uid))
            )
        roots: list[str] = []
        for parent_uid in self.parent_uids:
            parent = resolver.get(parent_uid)
            if parent is None:
                roots.append(parent_uid)
            else:
                roots.extend(parent.root_uids(resolver))
        # Preserve order, drop duplicates.
        seen: set[str] = set()
        unique = [uid for uid in roots if not (uid in seen or seen.add(uid))]
        return tuple(unique)

    def __repr__(self) -> str:
        preview = ", ".join(f"{k}={v!r}" for k, v in list(sorted(self.fields.items()))[:3])
        return f"DataRecord({self.uid}, {preview})"
