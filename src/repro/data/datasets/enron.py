"""Synthetic Enron email workload (250 emails, two NL predicates).

The paper's second evaluation query filters a 250-email subset of the Enron
corpus for emails "which contain firsthand discussion of one or more
specific business transactions", additionally extracting sender, subject,
and a summary.  This generator reproduces the statistical structure of that
task with fictional employees and the classic Enron deal codenames:

- **39 positives**: employees discussing a named deal firsthand.  Three are
  deliberately terse/allusive (difficulty 1.0) so a strong model misses
  about one per trial — the source of the paper's 97.44% recall.
- **45 forwarded news items** that mention deal names but are third-party
  content — keyword search cannot distinguish them, which is why the naive
  CodeAgent's precision survives only through manual reading while its
  recall collapses.
- **30 firsthand business emails** about other topics.
- **12 lexical red herrings** ("raptor" birds, "condor" trips) that punish
  keyword filters and cheap models.
- **124 unrelated emails** (ops, HR, personal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import FileCorpus
from repro.data.datasets.base import DatasetBundle
from repro.data.records import DataRecord
from repro.data.schemas import EMAIL_SCHEMA
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry
from repro.utils.seeding import SeededRng

# ---------------------------------------------------------------------------
# Intents and canonical instruction strings
# ---------------------------------------------------------------------------

INTENT_MENTIONS = "enron.mentions_transaction"
INTENT_FIRSTHAND = "enron.firsthand_discussion"
INTENT_RELEVANT = "enron.relevant"
INTENT_SENDER = "enron.sender"
INTENT_SUBJECT = "enron.subject"
INTENT_SUMMARY = "enron.summary"

#: The evaluation query, phrased as in the paper / Palimpzest demo.
QUERY_RELEVANT = (
    "Return all emails which contain firsthand discussion of one or more "
    "specific business transactions (e.g., Raptor, Condor, Death Star, "
    "Chewco), and extract the sender, subject, and a summary of each email."
)

FILTER_MENTIONS = (
    "The email mentions one or more of the specific business transactions "
    "(Raptor, Condor, Death Star, Chewco, JEDI, Talon)."
)
FILTER_FIRSTHAND = (
    "The email contains firsthand discussion of the business transactions, "
    "not forwarded news or third-party reports."
)
FILTER_RELEVANT = (
    "The email contains firsthand discussion of one or more specific "
    "business transactions (e.g., Raptor, Condor, Death Star, Chewco)."
)
MAP_SENDER = "Extract the sender of the email."
MAP_SUBJECT = "Extract the subject of the email."
MAP_SUMMARY = "Write a one-sentence summary of the email."

DEALS = ["Raptor", "Condor", "Death Star", "Chewco", "JEDI", "Talon"]

_FIRST_NAMES = [
    "alice", "ben", "carla", "david", "elena", "frank", "grace", "henry",
    "irene", "jack", "karen", "louis", "maria", "nathan", "olivia", "paul",
    "rachel", "sam", "tina", "victor",
]
_LAST_NAMES = [
    "mercer", "caldwell", "rhodes", "delgado", "foster", "whitman",
    "okafor", "lindqvist", "barnes", "sutton", "alvarez", "kessler",
    "monroe", "tran", "pierce", "hobbs", "navarro", "ellison", "grady",
    "voss",
]


def build_intent_registry() -> IntentRegistry:
    """Register every Enron-workload intent the oracle must resolve."""
    registry = IntentRegistry()
    registry.register(
        INTENT_MENTIONS,
        ["mentions", "business", "transactions"],
        "email mentions a named business transaction",
    )
    registry.register(
        INTENT_FIRSTHAND,
        ["firsthand", "discussion", "business", "transactions"],
        "email discusses the transactions firsthand (not forwarded)",
    )
    registry.register(
        INTENT_RELEVANT,
        ["firsthand", "discussion", "specific", "business", "transactions"],
        "email contains firsthand discussion of a specific transaction",
    )
    registry.register(INTENT_SENDER, ["sender"], "the email's sender address")
    registry.register(INTENT_SUBJECT, ["subject"], "the email's subject line")
    registry.register(INTENT_SUMMARY, ["summary"], "a one-sentence summary")
    return registry


# ---------------------------------------------------------------------------
# Email construction
# ---------------------------------------------------------------------------


@dataclass
class _EmailSpec:
    sender: str
    subject: str
    body: str
    mentions: bool
    firsthand_deal: bool
    relevant: bool
    mentions_difficulty: float
    firsthand_difficulty: float
    relevant_difficulty: float
    summary: str


def _person(rng: SeededRng) -> str:
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    return f"{first}.{last}@enron.com"


_FILLER_PARAGRAPHS = [
    "As a heads-up, the floor move scheduled for next month may shuffle a "
    "few of the desks on the east side; facilities will send seat "
    "assignments once the plan is final, so no need to pack anything yet.",
    "Reminder that the updated travel policy kicked in on the first of the "
    "month: itineraries booked outside the portal need a VP signature, and "
    "the expense system will bounce anything without a cost center code.",
    "If you have not completed the annual compliance training, please "
    "carve out the forty minutes before the deadline on Friday; the system "
    "locks badge access for anyone who misses it, which is a headache to "
    "undo.",
    "The cafeteria is piloting extended hours through the end of the "
    "quarter, so the grill line now runs until seven for anyone staying "
    "late on the trading floor.",
    "For those asking about the parking situation: the south garage "
    "reopens Monday, and the temporary passes for the overflow lot will "
    "stop working at the end of the week.",
    "Quick logistical note: conference room bookings now go through the "
    "shared calendar rather than the front desk, and recurring holds older "
    "than ninety days were cleared over the weekend.",
]


def _pad_body(body: str, rng: SeededRng) -> str:
    """Append generic office context so emails carry realistic token counts.

    Real Enron emails run hundreds of tokens; padding keeps the simulated
    per-email LLM cost in a realistic range without touching the content
    that determines any annotation.
    """
    n_paragraphs = rng.randint(2, 3)
    chosen = rng.sample(_FILLER_PARAGRAPHS, n_paragraphs)
    return body + "\n" + "\n\n".join(chosen) + "\n"


_POSITIVE_TOPICS = [
    ("hedge positions", "finalize the hedge positions before the quarter closes"),
    ("counterparty terms", "renegotiate the counterparty collateral terms"),
    ("SPE structure", "review the special purpose entity structure with legal"),
    ("mark-to-market", "walk through the mark-to-market assumptions"),
    ("funding schedule", "confirm the funding schedule with treasury"),
    ("board materials", "prepare the transaction overview for the board"),
    ("rating agency", "brief the rating agency on the restructuring"),
    ("unwind plan", "draft the unwind plan for the vehicles"),
]


def _positive_email(rng: SeededRng, deal: str, hard: bool) -> _EmailSpec:
    sender = _person(rng)
    topic, action = rng.choice(_POSITIVE_TOPICS)
    if hard:
        # Terse, allusive: the deal is referenced obliquely ("the vehicle",
        # codename once in a quoted fragment).  Hard even for strong models.
        subject = f"re: {topic}"
        body = (
            f"Quick follow-up from this morning -- we still need to {action}.\n"
            f"The {deal.lower()} numbers Rick circulated look stale; let's use\n"
            f"the desk's latest run instead. Keep this off the wider list for\n"
            f"now. I'll grab ten minutes with you before the close.\n"
        )
        summary = (
            f"A terse firsthand note about {topic} on the {deal} "
            f"transaction: the sender asks to replace stale numbers with "
            f"the desk's latest run and to keep the discussion off the "
            f"wider distribution list until they can meet before the close."
        )
        firsthand_difficulty = 1.0
        mentions_difficulty = 0.6
    else:
        subject = f"{deal} {topic}"
        body = (
            f"Team,\n\n"
            f"Following up on yesterday's call about the {deal} transaction.\n"
            f"We need to {action} by Friday. Accounting flagged two open\n"
            f"items on the {deal} book: the collateral true-up and the\n"
            f"quarterly valuation memo. I've asked the desk to send the\n"
            f"latest positions so we can close both out.\n\n"
            f"Please send comments on the draft term sheet by end of day\n"
            f"Thursday. We'll review open issues at the {topic} meeting.\n\n"
            f"Thanks,\n{sender.split('@')[0].split('.')[0].title()}\n"
        )
        summary = (
            f"Firsthand discussion of the {deal} transaction in which the "
            f"sender asks the team to {action}, flags two open accounting "
            f"items on the {deal} book (a collateral true-up and a "
            f"quarterly valuation memo), and requests comments on the "
            f"draft term sheet by Thursday."
        )
        firsthand_difficulty = rng.uniform(0.1, 0.3)
        mentions_difficulty = 0.1
    return _EmailSpec(
        sender=sender,
        subject=subject,
        body=body,
        mentions=True,
        firsthand_deal=True,
        relevant=True,
        mentions_difficulty=mentions_difficulty,
        firsthand_difficulty=firsthand_difficulty,
        relevant_difficulty=firsthand_difficulty,
        summary=summary,
    )


_NEWS_OUTLETS = [
    "The Wall Street Journal", "Houston Chronicle", "Reuters", "Bloomberg",
    "New York Times", "Financial Times",
]


def _forwarded_news_email(rng: SeededRng, deal: str) -> _EmailSpec:
    sender = _person(rng)
    outlet = rng.choice(_NEWS_OUTLETS)
    subject = f"FW: {outlet} piece on {deal}"
    body = (
        f"fyi -- saw this in today's paper.\n\n"
        f"---------- Forwarded message ----------\n"
        f"{outlet} reports that analysts continue to raise questions about\n"
        f"the company's {deal} vehicles and related-party structures. The\n"
        f"article cites unnamed sources familiar with the partnerships and\n"
        f"notes that the company declined to comment on the {deal}\n"
        f"transactions beyond its public filings. Industry observers said\n"
        f"the disclosures in recent quarterly reports leave open questions\n"
        f"about how the hedges perform if the stock declines further.\n"
    )
    return _EmailSpec(
        sender=sender,
        subject=subject,
        body=body,
        mentions=True,
        firsthand_deal=False,
        relevant=False,
        mentions_difficulty=0.1,
        # Distinguishing forwarded coverage from firsthand discussion takes
        # actual reading; cheap models err on these at a visible rate.
        firsthand_difficulty=rng.uniform(0.3, 0.55),
        relevant_difficulty=rng.uniform(0.3, 0.55),
        summary=(
            f"A forwarded {outlet} news article (not firsthand discussion) "
            f"in which analysts raise questions about the company's {deal} "
            f"vehicles and related-party structures, citing unnamed sources "
            f"and noting the company declined to comment beyond its filings."
        ),
    )


_BUSINESS_TOPICS = [
    ("gas desk staffing", "coverage for the west desk over the holidays"),
    ("Q3 expense report", "travel expenses from the Houston offsite"),
    ("performance reviews", "the PRC meeting schedule for next month"),
    ("pipeline capacity", "firm transport on the northern pipeline"),
    ("power scheduling", "day-ahead schedules for the west region"),
    ("new hire onboarding", "badge access and systems for the new analyst"),
]


def _business_email(rng: SeededRng) -> _EmailSpec:
    sender = _person(rng)
    topic, detail = rng.choice(_BUSINESS_TOPICS)
    subject = topic
    body = (
        f"Hi all,\n\n"
        f"Quick note on {topic}: we need to sort out {detail} before the\n"
        f"end of the week. I've put a hold on calendars for Thursday at 2pm\n"
        f"to walk through the details. Let me know if that conflicts with\n"
        f"anything on your side.\n\n"
        f"Also, a reminder that status updates are due to the group by\n"
        f"Wednesday noon so we can consolidate before the staff meeting.\n\n"
        f"Best,\n{sender.split('@')[0].split('.')[0].title()}\n"
    )
    return _EmailSpec(
        sender=sender,
        subject=subject,
        body=body,
        mentions=False,
        firsthand_deal=False,
        relevant=False,
        mentions_difficulty=0.1,
        firsthand_difficulty=0.15,
        relevant_difficulty=0.15,
        summary=(
            f"An internal business email about {topic}: the sender wants to "
            f"sort out {detail} this week, has placed a Thursday 2pm hold "
            f"on calendars, and reminds the group that status updates are "
            f"due by Wednesday noon."
        ),
    )


_RED_HERRINGS = [
    (
        "weekend birding trip",
        "We spotted a peregrine falcon and two raptors near the ridge trail. "
        "The condor sanctuary is supposed to be spectacular in the spring if "
        "anyone wants to join the next trip.",
        "Personal email about a birdwatching trip (raptor/condor as birds).",
    ),
    (
        "softball team name",
        "Votes so far: Raptors 6, Mustangs 4, Comets 2. If the Raptors win "
        "the vote we still need someone to order jerseys before the league "
        "deadline.",
        "Office softball team naming thread using the word Raptors.",
    ),
    (
        "movie night",
        "We're doing the original trilogy, so yes, the Death Star blows up "
        "twice. Pizza at seven, movie at seven thirty. RSVP so we know how "
        "many chairs to steal from the break room.",
        "Movie night invitation mentioning the Death Star (the film one).",
    ),
    (
        "kids dinosaur museum",
        "The new raptor exhibit was a hit -- highly recommend it for anyone "
        "with kids under ten. Tickets are cheaper on weekday afternoons.",
        "Personal note about a dinosaur museum raptor exhibit.",
    ),
]


def _red_herring_email(rng: SeededRng) -> _EmailSpec:
    sender = _person(rng)
    subject, body_core, summary = rng.choice(_RED_HERRINGS)
    body = f"Hey,\n\n{body_core}\n\nCheers,\n{sender.split('@')[0].split('.')[0].title()}\n"
    return _EmailSpec(
        sender=sender,
        subject=subject,
        body=body,
        mentions=False,
        firsthand_deal=False,
        relevant=False,
        mentions_difficulty=0.55,
        firsthand_difficulty=0.2,
        relevant_difficulty=0.3,
        summary=summary,
    )


_UNRELATED_TOPICS = [
    ("lunch on friday", "Anyone up for the taco place on Friday? Around noon."),
    ("parking garage closure", "Level 3 of the garage is closed Tuesday for resurfacing."),
    ("fantasy football", "Waiver wire closes Wednesday; league dues are overdue for three of you."),
    ("IT maintenance window", "Email and shared drives will be unavailable Saturday 10pm to 2am."),
    ("charity 5k", "The downtown 5k is in three weeks; the team signup sheet is by the kitchen."),
    ("conference registration", "Early-bird registration for the energy markets conference ends Friday."),
    ("office supplies", "The supply room is being reorganized; submit orders through the new form."),
    ("holiday party", "The holiday party is booked for the 14th at the museum; plus-ones welcome."),
    ("book club", "Next month's pick is the one about the LBO wave; meeting moved to the 3rd."),
    ("gym membership", "The corporate gym discount renews this month; bring your badge to sign up."),
]


def _unrelated_email(rng: SeededRng) -> _EmailSpec:
    sender = _person(rng)
    subject, body_core = rng.choice(_UNRELATED_TOPICS)
    filler = (
        "Forwarding to the whole floor since a few people asked. "
        "Details below; reply to me directly with questions.\n\n"
    )
    body = f"All,\n\n{filler}{body_core}\n\nThanks,\n{sender.split('@')[0].split('.')[0].title()}\n"
    return _EmailSpec(
        sender=sender,
        subject=subject,
        body=body,
        mentions=False,
        firsthand_deal=False,
        relevant=False,
        mentions_difficulty=0.05,
        firsthand_difficulty=0.1,
        relevant_difficulty=0.1,
        summary=f"Unrelated office email about {subject}.",
    )


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

N_POSITIVE = 39
N_HARD_POSITIVE = 3
N_FORWARDED = 45
N_BUSINESS = 30
N_RED_HERRING = 12
N_TOTAL = 250


def generate_enron_corpus(seed: int = 11) -> DatasetBundle:
    """Generate the 250-email corpus with gold labels.

    Category sizes are fixed; the seed controls senders, deal assignments,
    orderings, and per-email difficulty draws.
    """
    rng = SeededRng(seed).child("enron")
    specs: list[_EmailSpec] = []
    for index in range(N_POSITIVE):
        deal = DEALS[index % len(DEALS)]
        hard = index < N_HARD_POSITIVE
        specs.append(_positive_email(rng.child("pos", index), deal, hard))
    for index in range(N_FORWARDED):
        deal = DEALS[index % len(DEALS)]
        specs.append(_forwarded_news_email(rng.child("news", index), deal))
    for index in range(N_BUSINESS):
        specs.append(_business_email(rng.child("biz", index)))
    for index in range(N_RED_HERRING):
        specs.append(_red_herring_email(rng.child("herring", index)))
    n_unrelated = N_TOTAL - len(specs)
    for index in range(n_unrelated):
        specs.append(_unrelated_email(rng.child("misc", index)))

    order = list(range(len(specs)))
    rng.child("shuffle").shuffle(order)

    corpus = FileCorpus("enron")
    records: list[DataRecord] = []
    relevant_filenames: list[str] = []
    for position, spec_index in enumerate(order):
        spec = specs[spec_index]
        filename = f"email_{position:03d}.txt"
        body = _pad_body(spec.body, rng.child("pad", position))
        rendered = (
            f"From: {spec.sender}\n"
            f"Subject: {spec.subject}\n\n"
            f"{body}"
        )
        annotations = {
            INTENT_MENTIONS: spec.mentions,
            DIFFICULTY_PREFIX + INTENT_MENTIONS: spec.mentions_difficulty,
            INTENT_FIRSTHAND: spec.firsthand_deal,
            DIFFICULTY_PREFIX + INTENT_FIRSTHAND: spec.firsthand_difficulty,
            INTENT_RELEVANT: spec.relevant,
            DIFFICULTY_PREFIX + INTENT_RELEVANT: spec.relevant_difficulty,
            INTENT_SENDER: spec.sender,
            DIFFICULTY_PREFIX + INTENT_SENDER: 0.05,
            INTENT_SUBJECT: spec.subject,
            DIFFICULTY_PREFIX + INTENT_SUBJECT: 0.05,
            INTENT_SUMMARY: spec.summary,
            # Free-form summarization is the hardest extraction: cheap
            # tiers degrade visibly while sender/subject stay trivial.
            DIFFICULTY_PREFIX + INTENT_SUMMARY: 0.6,
        }
        corpus.add(filename, rendered, annotations)
        records.append(
            DataRecord(
                fields={
                    "filename": filename,
                    "sender": spec.sender,
                    "subject": spec.subject,
                    "body": body,
                },
                uid=f"enron:{filename}",
                annotations=annotations,
                source_id="enron",
            )
        )
        if spec.relevant:
            relevant_filenames.append(filename)

    description = (
        "A subset of 250 emails from a corporate mail archive (Enron-style). "
        "Emails include internal business discussion, forwarded news "
        "articles, and personal mail. Some emails discuss specific named "
        "business transactions (Raptor, Condor, Death Star, Chewco, JEDI, "
        "Talon) firsthand."
    )
    return DatasetBundle(
        name="enron",
        corpus=corpus,
        schema=EMAIL_SCHEMA,
        registry=build_intent_registry(),
        description=description,
        ground_truth={
            "relevant_filenames": sorted(relevant_filenames),
            "n_relevant": len(relevant_filenames),
        },
        record_list=records,
    )
