"""Synthetic dataset generators.

Each generator returns a :class:`~repro.data.datasets.base.DatasetBundle`:
the corpus (files and/or records), the intent registry the simulated LLM
needs to judge natural-language tasks on it, a description suitable for a
Context, and the ground truth the benchmarks score against.
"""

from repro.data.datasets.base import DatasetBundle
from repro.data.datasets.enron import generate_enron_corpus
from repro.data.datasets.kramabench import generate_legal_corpus
from repro.data.datasets.realestate import generate_realestate_corpus

__all__ = [
    "DatasetBundle",
    "generate_enron_corpus",
    "generate_legal_corpus",
    "generate_realestate_corpus",
]
