"""Synthetic Kramabench legal workload (132 files of consumer-report stats).

The paper's first evaluation query (``legal-easy-3``) runs over 132 CSV and
HTML files of FTC Consumer Sentinel statistics and asks for the ratio of
identity-theft reports in 2024 vs 2001.  The ground truth lives in a single
CSV; everything else is a distractor.  This generator reproduces that
needle-in-haystack structure:

- **1 ground-truth file** with national fraud / identity-theft / other
  counts for every year 2001-2024.
- **4 ambiguous near-misses** (a partial-year trends overview, a
  military-consumer subset covering both years, a hotline-call series
  covering both years, and an age-group breakdown).  These carry high
  difficulty so that semantic filters sometimes admit them — the source of
  the paper's "errant file returned by one of its semantic filters" — and
  they contain plausible wrong numbers, the source of the naive
  CodeAgent's spurious ratios.
- **50 state-level files** (the paper notes most files are state-level and
  ignorable for this query).
- **24 fraud-subcategory files, 20 scam-type files, 10 annual-review HTML
  reports, 23 misc consumer-protection files** rounding out the lake.

Every file carries hidden annotations keyed by the intents registered in
:func:`build_intent_registry`, which is how the simulated LLM judges
natural-language filters and extractions over the corpus.
"""

from __future__ import annotations

from repro.data.corpus import FileCorpus
from repro.data.datasets.base import DatasetBundle
from repro.data.schemas import TEXT_FILE_SCHEMA
from repro.data.tabular import render_csv, render_html_report
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry
from repro.llm.simulated import DISTRACTOR_PREFIX
from repro.utils.seeding import SeededRng

# ---------------------------------------------------------------------------
# Intents and canonical instruction strings
# ---------------------------------------------------------------------------

INTENT_MENTIONS_IT = "legal.mentions_identity_theft"
INTENT_STATS_BOTH = "legal.identity_theft_stats_2001_2024"
INTENT_STATE_LEVEL = "legal.state_level_identity_theft"
INTENT_NATIONAL_2001 = "legal.has_national_identity_theft_2001"
INTENT_NATIONAL_2024 = "legal.has_national_identity_theft_2024"
INTENT_IT_2001_VALUE = "legal.identity_theft_2001"
INTENT_IT_2024_VALUE = "legal.identity_theft_2024"
INTENT_RATIO_VALUE = "legal.identity_theft_ratio"

#: The evaluation query (Kramabench ``legal-easy-3``).
QUERY_RATIO = (
    "Compute the ratio between the number of identity theft reports in the "
    "year 2024 and the number of identity theft reports in the year 2001."
)

#: A second, state-level query (Kramabench-style) used to demonstrate the
#: compute operator's generality beyond the paper's single example.
QUERY_TOP_STATE = (
    "Which state had the most identity theft reports in the year 2024?"
)

FILTER_STATE_LEVEL = (
    "The file reports state level identity theft statistics."
)

#: Filters/maps used by the handcrafted semantic-operator program (Table 1).
FILTER_MENTIONS = "The file mentions identity theft."
FILTER_STATS_BOTH = (
    "The file contains the number of identity theft reports for both the "
    "years 2001 and 2024."
)
MAP_RATIO = (
    "Compute the ratio of identity theft report counts for 2024 versus 2001 "
    "from this file."
)

#: Filters/extractions used by the compute operator's generated programs.
FILTER_NATIONAL_2001 = (
    "The file reports national identity theft statistics for the year 2001."
)
FILTER_NATIONAL_2024 = (
    "The file reports national identity theft statistics for the year 2024."
)
EXTRACT_IT_2001 = "Extract the number of identity theft reports in the year 2001."
EXTRACT_IT_2024 = "Extract the number of identity theft reports in the year 2024."

#: Ground-truth national identity-theft report counts (endpoints pinned).
IT_2001 = 86_250
IT_2024 = 1_135_291
TRUE_RATIO = IT_2024 / IT_2001

_STATES = [
    "alabama", "alaska", "arizona", "arkansas", "california", "colorado",
    "connecticut", "delaware", "florida", "georgia", "hawaii", "idaho",
    "illinois", "indiana", "iowa", "kansas", "kentucky", "louisiana",
    "maine", "maryland", "massachusetts", "michigan", "minnesota",
    "mississippi", "missouri", "montana", "nebraska", "nevada",
    "new_hampshire", "new_jersey", "new_mexico", "new_york",
    "north_carolina", "north_dakota", "ohio", "oklahoma", "oregon",
    "pennsylvania", "rhode_island", "south_carolina", "south_dakota",
    "tennessee", "texas", "utah", "vermont", "virginia", "washington",
    "west_virginia", "wisconsin", "wyoming",
]

_FRAUD_CATEGORIES = [
    "Imposter Scams", "Online Shopping", "Prizes Sweepstakes and Lotteries",
    "Internet Services", "Telephone and Mobile Services",
    "Business and Job Opportunities", "Investment Related",
    "Travel Vacations and Timeshares", "Foreign Money Offers",
    "Health Care", "Debt Collection", "Auto Related",
]

_SCAM_TYPES = [
    "Phishing", "Tech Support", "Romance", "Grandparent", "Lottery",
    "Charity", "Rental", "Employment", "Cryptocurrency", "Gift Card",
]


def build_intent_registry() -> IntentRegistry:
    """Register every legal-workload intent the oracle must resolve."""
    registry = IntentRegistry()
    registry.register(
        INTENT_MENTIONS_IT,
        ["identity", "theft"],
        "file mentions identity theft",
    )
    registry.register(
        INTENT_STATS_BOTH,
        ["identity", "theft", "reports", "2001", "2024"],
        "file has identity theft report counts for both 2001 and 2024",
    )
    registry.register(
        INTENT_STATE_LEVEL,
        ["state", "level", "identity", "theft"],
        "file has state-level identity theft statistics",
    )
    registry.register(
        INTENT_NATIONAL_2001,
        ["national", "identity", "theft", "2001"],
        "file has national identity theft statistics for 2001",
    )
    registry.register(
        INTENT_NATIONAL_2024,
        ["national", "identity", "theft", "2024"],
        "file has national identity theft statistics for 2024",
    )
    registry.register(
        INTENT_IT_2001_VALUE,
        ["number", "identity", "theft", "2001"],
        "the count of identity theft reports in 2001",
    )
    registry.register(
        INTENT_IT_2024_VALUE,
        ["number", "identity", "theft", "2024"],
        "the count of identity theft reports in 2024",
    )
    registry.register(
        INTENT_RATIO_VALUE,
        ["ratio", "identity", "theft"],
        "ratio of identity theft reports 2024 vs 2001",
    )
    return registry


# ---------------------------------------------------------------------------
# Numeric series
# ---------------------------------------------------------------------------


def _national_series(rng: SeededRng) -> dict[str, dict[int, int]]:
    """National report counts per category and year, endpoints pinned."""
    years = list(range(2001, 2025))

    def series(start: int, end: int, stream: str) -> dict[int, int]:
        child = rng.child("series", stream)
        growth = (end / start) ** (1 / (len(years) - 1))
        values = {}
        level = float(start)
        for year in years:
            values[year] = int(round(level))
            level *= growth * child.uniform(0.93, 1.07)
        values[years[0]] = start
        values[years[-1]] = end
        return values

    return {
        "identity_theft": series(IT_2001, IT_2024, "identity-theft"),
        "fraud": series(137_306, 2_790_345, "fraud"),
        "other": series(58_119, 1_270_480, "other"),
    }


def _state_weights(rng: SeededRng) -> dict[str, float]:
    child = rng.child("state-weights")
    raw = {state: child.uniform(0.3, 9.0) for state in _STATES}
    total = sum(raw.values())
    return {state: weight / total for state, weight in raw.items()}


# ---------------------------------------------------------------------------
# Annotation helpers
# ---------------------------------------------------------------------------


def _ann(annotations: dict, key: str, value, difficulty: float) -> None:
    annotations[key] = value
    annotations[DIFFICULTY_PREFIX + key] = difficulty


def _negative_defaults(annotations: dict, mentions: bool, difficulty: float = 0.1) -> None:
    """Fill in the filter intents every file must be judgeable on."""
    _ann(annotations, INTENT_MENTIONS_IT, mentions, difficulty)
    annotations.setdefault(INTENT_STATS_BOTH, False)
    annotations.setdefault(DIFFICULTY_PREFIX + INTENT_STATS_BOTH, difficulty)
    annotations.setdefault(INTENT_NATIONAL_2001, False)
    annotations.setdefault(DIFFICULTY_PREFIX + INTENT_NATIONAL_2001, difficulty)
    annotations.setdefault(INTENT_NATIONAL_2024, False)
    annotations.setdefault(DIFFICULTY_PREFIX + INTENT_NATIONAL_2024, difficulty)
    annotations.setdefault(INTENT_STATE_LEVEL, False)
    annotations.setdefault(DIFFICULTY_PREFIX + INTENT_STATE_LEVEL, difficulty)


# ---------------------------------------------------------------------------
# File builders
# ---------------------------------------------------------------------------


def _add_ground_truth(corpus: FileCorpus, national: dict[str, dict[int, int]]) -> None:
    rows = [
        [year, national["fraud"][year], national["identity_theft"][year], national["other"][year]]
        for year in range(2001, 2025)
    ]
    contents = render_csv(
        ["Year", "Fraud Reports", "Identity Theft Reports", "Other Reports"], rows
    )
    annotations: dict = {}
    _ann(annotations, INTENT_MENTIONS_IT, True, 0.05)
    _ann(annotations, INTENT_STATE_LEVEL, False, 0.2)
    _ann(annotations, INTENT_STATS_BOTH, True, 0.1)
    _ann(annotations, INTENT_NATIONAL_2001, True, 0.1)
    _ann(annotations, INTENT_NATIONAL_2024, True, 0.1)
    _ann(annotations, INTENT_IT_2001_VALUE, IT_2001, 0.1)
    _ann(annotations, INTENT_IT_2024_VALUE, IT_2024, 0.1)
    _ann(annotations, INTENT_RATIO_VALUE, round(TRUE_RATIO, 4), 0.15)
    # A plausible extraction mistake on this file grabs the fraud column.
    annotations[DISTRACTOR_PREFIX + INTENT_IT_2024_VALUE] = national["fraud"][2024]
    annotations[DISTRACTOR_PREFIX + INTENT_IT_2001_VALUE] = national["fraud"][2001]
    corpus.add(
        "fraud_identity_theft_and_other_reports_2001_2024.csv", contents, annotations
    )


def _add_ambiguous_files(corpus: FileCorpus, national: dict[str, dict[int, int]]) -> None:
    # 1. Partial-year national trends overview (HTML): Q1-Q3 2024 number and
    #    an approximate 2001 figure in prose.  The classic errant file.
    partial_2024 = int(national["identity_theft"][2024] * 0.74)
    approx_2001 = 86_000
    overview = render_html_report(
        "Identity Theft Report Trends Overview (through Q3 2024)",
        [
            "The Consumer Sentinel Network tracks identity theft reports "
            "filed by consumers nationwide.",
            f"Through the first three quarters of 2024, consumers filed "
            f"{partial_2024:,} identity theft reports nationally.",
            f"For perspective, consumers filed roughly {approx_2001:,} "
            f"identity theft reports in 2001, the first year of tracking.",
            "Full-year 2024 figures will be published in the annual data "
            "book early next year.",
        ],
        [(
            ["Quarter", "Identity Theft Reports"],
            [
                ["2024 Q1", f"{int(partial_2024 * 0.32):,}"],
                ["2024 Q2", f"{int(partial_2024 * 0.33):,}"],
                ["2024 Q3", f"{partial_2024 - int(partial_2024 * 0.32) - int(partial_2024 * 0.33):,}"],
            ],
        )],
    )
    annotations: dict = {}
    _ann(annotations, INTENT_MENTIONS_IT, True, 0.05)
    _ann(annotations, INTENT_STATE_LEVEL, False, 0.2)
    # Highly ambiguous: it *does* discuss both years, but the 2024 number is
    # partial.  Difficulty 1.0 makes semantic filters admit it in a minority
    # of trials, yielding the paper's occasional second ratio.
    _ann(annotations, INTENT_STATS_BOTH, False, 1.0)
    _ann(annotations, INTENT_NATIONAL_2001, True, 0.8)
    _ann(annotations, INTENT_NATIONAL_2024, True, 0.6)
    _ann(annotations, INTENT_IT_2001_VALUE, approx_2001, 0.3)
    _ann(annotations, INTENT_IT_2024_VALUE, partial_2024, 0.3)
    _ann(annotations, INTENT_RATIO_VALUE, round(partial_2024 / approx_2001, 4), 0.3)
    corpus.add("identity_theft_report_trends_overview_2024.html", overview, annotations)

    # 2. Military-consumer subset covering both years: right span, wrong scope.
    mil_2001, mil_2024 = 1_205, 18_652
    rows = []
    level = float(mil_2001)
    growth = (mil_2024 / mil_2001) ** (1 / 23)
    for year in range(2001, 2025):
        rows.append([year, int(round(level))])
        level *= growth
    rows[0][1] = mil_2001
    rows[-1][1] = mil_2024
    contents = render_csv(["Year", "Military Consumer Identity Theft Reports"], rows)
    annotations = {}
    _ann(annotations, INTENT_MENTIONS_IT, True, 0.05)
    _ann(annotations, INTENT_STATE_LEVEL, False, 0.2)
    _ann(annotations, INTENT_STATS_BOTH, False, 1.0)
    _ann(annotations, INTENT_NATIONAL_2001, False, 0.7)
    _ann(annotations, INTENT_NATIONAL_2024, False, 0.7)
    _ann(annotations, INTENT_IT_2001_VALUE, mil_2001, 0.4)
    _ann(annotations, INTENT_IT_2024_VALUE, mil_2024, 0.4)
    _ann(annotations, INTENT_RATIO_VALUE, round(mil_2024 / mil_2001, 4), 0.4)
    corpus.add("military_consumer_identity_theft_2001_2024.csv", contents, annotations)

    # 3. Identity-theft hotline call volumes covering both years: the right
    #    span and topic, but calls are not reports (ratio ~22 vs ~13.2).
    hotline_2001, hotline_2024 = 3_927, 86_404
    rows = []
    level = float(hotline_2001)
    growth = (hotline_2024 / hotline_2001) ** (1 / 23)
    for year in range(2001, 2025):
        rows.append([year, int(round(level))])
        level *= growth
    rows[0][1] = hotline_2001
    rows[-1][1] = hotline_2024
    contents = render_csv(["Year", "Identity Theft Hotline Calls"], rows)
    annotations = {}
    _ann(annotations, INTENT_MENTIONS_IT, True, 0.05)
    _ann(annotations, INTENT_STATE_LEVEL, False, 0.2)
    _ann(annotations, INTENT_STATS_BOTH, False, 1.0)
    _ann(annotations, INTENT_NATIONAL_2001, False, 0.7)
    _ann(annotations, INTENT_NATIONAL_2024, False, 0.7)
    _ann(annotations, INTENT_IT_2001_VALUE, hotline_2001, 0.5)
    _ann(annotations, INTENT_IT_2024_VALUE, hotline_2024, 0.5)
    _ann(annotations, INTENT_RATIO_VALUE, round(hotline_2024 / hotline_2001, 4), 0.5)
    corpus.add("identity_theft_hotline_calls_2001_2024.csv", contents, annotations)

    # 4. Age-group breakdown of 2024 (no total row, no 2001 data).
    buckets = [
        ("19 and Under", 0.06), ("20-29", 0.23), ("30-39", 0.3636),
        ("40-49", 0.17), ("50-59", 0.10), ("60-69", 0.05),
        ("70 and Over", 0.0264),
    ]
    it_2024 = national["identity_theft"][2024]
    bucket_rows = [[label, int(it_2024 * share)] for label, share in buckets]
    largest_bucket = max(count for _, count in bucket_rows)
    contents = render_csv(["Age Group", "Identity Theft Reports 2024"], bucket_rows)
    annotations = {}
    _ann(annotations, INTENT_MENTIONS_IT, True, 0.05)
    _ann(annotations, INTENT_STATE_LEVEL, False, 0.2)
    _ann(annotations, INTENT_STATS_BOTH, False, 0.4)
    _ann(annotations, INTENT_NATIONAL_2001, False, 0.2)
    _ann(annotations, INTENT_NATIONAL_2024, True, 0.5)
    # Without a total row, the "2024 number" an LLM pulls is a bucket value.
    _ann(annotations, INTENT_IT_2024_VALUE, largest_bucket, 0.8)
    corpus.add("identity_theft_by_age_group_2024.csv", contents, annotations)


def _add_state_files(
    corpus: FileCorpus, national: dict[str, dict[int, int]], rng: SeededRng
) -> None:
    weights = _state_weights(rng)
    for state in _STATES:
        child = rng.child("state", state)
        share = weights[state]
        rows = []
        for year in range(2020, 2025):
            annual = int(national["identity_theft"][year] * share)
            fraud = int(national["fraud"][year] * share * child.uniform(0.9, 1.1))
            rows.append([year, annual, fraud])
            for month in range(1, 13):
                monthly = int(annual * child.uniform(0.06, 0.1))
                rows.append([f"{year}-{month:02d}", monthly, int(fraud / 12)])
        contents = render_csv(
            ["Period", "Identity Theft Reports", "Fraud Reports"], rows
        )
        annotations: dict = {}
        _negative_defaults(annotations, mentions=True, difficulty=0.25)
        _ann(annotations, INTENT_STATE_LEVEL, True, 0.1)
        state_2024 = int(national["identity_theft"][2024] * share)
        _ann(annotations, INTENT_IT_2024_VALUE, state_2024, 0.3)
        corpus.add(f"identity_theft_reports_{state}_2020_2024.csv", contents, annotations)


def _add_category_files(
    corpus: FileCorpus, national: dict[str, dict[int, int]], rng: SeededRng
) -> None:
    for year in range(2001, 2025):
        child = rng.child("category", year)
        total = national["fraud"][year]
        shares = [child.uniform(0.4, 1.6) for _ in _FRAUD_CATEGORIES]
        norm = sum(shares)
        rows = []
        for category, share in zip(_FRAUD_CATEGORIES, shares):
            annual = int(total * share / norm)
            rows.append([category, "FY", annual, f"${child.uniform(5, 600):.1f}M"])
            for quarter in range(1, 5):
                rows.append(
                    [
                        category,
                        f"Q{quarter}",
                        int(annual * child.uniform(0.2, 0.3)),
                        f"${child.uniform(1, 150):.1f}M",
                    ]
                )
        contents = render_csv(
            [f"Fraud Subcategory ({year})", "Period", "Reports", "Losses"], rows
        )
        annotations: dict = {}
        _negative_defaults(annotations, mentions=False, difficulty=0.1)
        corpus.add(f"fraud_subcategory_reports_{year}.csv", contents, annotations)


def _add_scam_type_files(corpus: FileCorpus, rng: SeededRng) -> None:
    for year in range(2005, 2025):
        child = rng.child("scam", year)
        rows = []
        for scam in _SCAM_TYPES:
            annual = int(child.uniform(5_000, 400_000))
            rows.append([scam, "FY", annual, f"${child.uniform(1, 900):.1f}M"])
            for quarter in range(1, 5):
                rows.append(
                    [
                        scam,
                        f"Q{quarter}",
                        int(annual * child.uniform(0.2, 0.3)),
                        f"${child.uniform(0.5, 250):.1f}M",
                    ]
                )
        contents = render_csv(
            [f"Scam Type ({year})", "Period", "Reports", "Total Losses"], rows
        )
        annotations: dict = {}
        _negative_defaults(annotations, mentions=False, difficulty=0.1)
        corpus.add(f"top_scam_types_{year}.csv", contents, annotations)


def _add_annual_reviews(
    corpus: FileCorpus, national: dict[str, dict[int, int]], rng: SeededRng
) -> None:
    for year in range(2015, 2025):
        child = rng.child("review", year)
        it_count = national["identity_theft"][year]
        fraud_count = national["fraud"][year]
        other_count = national["other"][year]
        category_rows = [
            [category, f"{child.randint(20_000, 600_000):,}", f"${child.uniform(10, 900):.1f}M"]
            for category in _FRAUD_CATEGORIES
        ]
        contents = render_html_report(
            f"Consumer Sentinel Network Annual Review {year}",
            [
                f"In {year}, the Consumer Sentinel Network received "
                f"{fraud_count + it_count + other_count:,} consumer reports.",
                f"Identity theft was among the top report categories with "
                f"{it_count:,} reports filed in {year}.",
                "Reports are collected from federal, state, and local law "
                "enforcement as well as private partners, including the "
                "Better Business Bureaus and several payment processors.",
                "Fraud losses are self-reported by consumers and are not "
                "independently verified; median losses vary considerably "
                "by contact method and by the age of the consumer filing "
                "the report.",
                "The tables below break the year's fraud reports into the "
                "top subcategories tracked by the network. Rankings shift "
                "from year to year as scam patterns evolve, but imposter "
                "scams and online shopping complaints have remained near "
                "the top of the list for most of the last decade.",
            ],
            [
                (
                    ["Report Category", f"{year} Reports"],
                    [
                        ["Fraud", f"{fraud_count:,}"],
                        ["Identity Theft", f"{it_count:,}"],
                        ["Other", f"{other_count:,}"],
                    ],
                ),
                (
                    ["Fraud Subcategory", "Reports", "Total Losses"],
                    category_rows,
                ),
            ],
        )
        annotations: dict = {}
        _negative_defaults(annotations, mentions=True, difficulty=0.3)
        if year == 2024:
            _ann(annotations, INTENT_NATIONAL_2024, True, 0.3)
            _ann(annotations, INTENT_IT_2024_VALUE, it_count, 0.2)
        corpus.add(f"consumer_sentinel_annual_review_{year}.html", contents, annotations)


def _add_misc_files(corpus: FileCorpus, rng: SeededRng) -> None:
    child = rng.child("misc")

    def csv_file(name: str, headers: list[str], rows: list[list[object]], mentions: bool) -> None:
        annotations: dict = {}
        _negative_defaults(annotations, mentions=mentions, difficulty=0.15)
        corpus.add(name, render_csv(headers, rows), annotations)

    def html_file(name: str, title: str, paragraphs: list[str], mentions: bool, difficulty: float = 0.15) -> None:
        annotations: dict = {}
        _negative_defaults(annotations, mentions=mentions, difficulty=difficulty)
        corpus.add(name, render_html_report(title, paragraphs, []), annotations)

    for year in range(2021, 2025):
        csv_file(
            f"do_not_call_registry_complaints_{year}.csv",
            ["Month", "Robocall Complaints", "Live Caller Complaints"],
            [
                [f"{year}-{month:02d}", child.randint(80_000, 400_000), child.randint(20_000, 90_000)]
                for month in range(1, 13)
            ],
            mentions=False,
        )
    csv_file(
        "robocall_complaints_by_state_2024.csv",
        ["State", "Complaints"],
        [[state.replace("_", " ").title(), child.randint(5_000, 300_000)] for state in _STATES],
        mentions=False,
    )
    for year in range(2022, 2025):
        csv_file(
            f"fraud_losses_by_payment_method_{year}.csv",
            ["Payment Method", "Reports", "Total Losses"],
            [
                [method, child.randint(10_000, 200_000), f"${child.uniform(20, 1500):.1f}M"]
                for method in ["Bank Transfer", "Cryptocurrency", "Wire Transfer",
                               "Credit Card", "Gift Card", "Payment App", "Check", "Cash"]
            ],
            mentions=False,
        )
    html_file(
        "identity_theft_recovery_steps.html",
        "Recovering from Identity Theft: A Step-by-Step Guide",
        [
            "If you are a victim of identity theft, report it and get a "
            "recovery plan.",
            "Place a fraud alert with the three credit bureaus and review "
            "your credit reports.",
            "Close any accounts opened in your name and dispute fraudulent "
            "charges.",
        ],
        mentions=True,
    )
    html_file(
        "what_is_identity_theft_faq.html",
        "What Is Identity Theft? Frequently Asked Questions",
        [
            "Identity theft happens when someone uses your personal or "
            "financial information without your permission.",
            "Warning signs include bills for things you did not buy and "
            "calls about debts that are not yours.",
        ],
        mentions=True,
    )
    html_file(
        "credit_freeze_guide.html",
        "Credit Freezes and Fraud Alerts",
        [
            "A credit freeze restricts access to your credit report, making "
            "it harder for identity thieves to open accounts in your name.",
            "Freezes are free and do not affect your credit score.",
        ],
        mentions=True,
        difficulty=0.2,
    )
    html_file(
        "consumer_sentinel_data_book_methodology.html",
        "Consumer Sentinel Network Data Book: Methodology",
        [
            "The data book categorizes consumer reports into fraud, identity "
            "theft, and other categories.",
            "Report counts are unverified self-reports and may undercount "
            "actual incidence.",
        ],
        mentions=True,
        difficulty=0.3,
    )
    csv_file(
        "fraud_reports_by_contact_method_2024.csv",
        ["Contact Method", "Reports", "Median Loss"],
        [
            [method, child.randint(40_000, 500_000), f"${child.randint(100, 2000)}"]
            for method in ["Phone Call", "Text", "Email", "Social Media",
                           "Website or App", "Mail", "In Person"]
        ],
        mentions=False,
    )
    csv_file(
        "fraud_reports_by_age_2024.csv",
        ["Age Group", "Fraud Reports", "Median Loss"],
        [
            [group, child.randint(30_000, 400_000), f"${child.randint(200, 1800)}"]
            for group in ["19 and Under", "20-29", "30-39", "40-49",
                          "50-59", "60-69", "70-79", "80 and Over"]
        ],
        mentions=False,
    )
    csv_file(
        "median_fraud_loss_by_year_2019_2024.csv",
        ["Year", "Median Loss", "Total Losses"],
        [
            [year, f"${child.randint(300, 600)}", f"${child.uniform(1.5, 12.0):.1f}B"]
            for year in range(2019, 2025)
        ],
        mentions=False,
    )
    for name, label in [
        ("business_impersonation_reports_2024.csv", "Business Impersonation"),
        ("romance_scam_reports_2020_2024.csv", "Romance Scam"),
        ("investment_scam_losses_2024.csv", "Investment Scam"),
        ("gift_card_fraud_2023.csv", "Gift Card Fraud"),
        ("cryptocurrency_scam_reports_2021_2024.csv", "Cryptocurrency Scam"),
        ("student_loan_scam_reports_2024.csv", "Student Loan Scam"),
    ]:
        csv_file(
            name,
            ["Quarter", f"{label} Reports", "Total Losses"],
            [
                [f"Q{quarter}", child.randint(2_000, 90_000), f"${child.uniform(5, 400):.1f}M"]
                for quarter in range(1, 5)
            ],
            mentions=False,
        )
    html_file(
        "tax_identity_theft_awareness.html",
        "Tax Identity Theft Awareness Week",
        [
            "Tax identity theft happens when someone files a tax return "
            "using your Social Security number to claim your refund.",
            "File early and use IRS Identity Protection PINs.",
        ],
        mentions=True,
    )
    html_file(
        "elder_fraud_report_2024.html",
        "Protecting Older Consumers: 2024 Report",
        [
            "Older adults report losing more money per fraud incident than "
            "younger consumers.",
            "Tech support scams remain the most reported scam among "
            "consumers over 70.",
        ],
        mentions=False,
    )


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def generate_legal_corpus(seed: int = 7) -> DatasetBundle:
    """Generate the 132-file legal workload.

    The corpus layout, numbers, and annotations are fully determined by
    ``seed``; the ground-truth endpoints (86,250 reports in 2001 and
    1,135,291 in 2024) are pinned regardless of seed.
    """
    rng = SeededRng(seed).child("kramabench-legal")
    corpus = FileCorpus("kramabench-legal")
    national = _national_series(rng)
    weights = _state_weights(rng)
    top_state = max(weights, key=lambda state: weights[state])

    _add_ground_truth(corpus, national)
    _add_ambiguous_files(corpus, national)
    _add_state_files(corpus, national, rng)
    _add_category_files(corpus, national, rng)
    _add_scam_type_files(corpus, rng)
    _add_annual_reviews(corpus, national, rng)
    _add_misc_files(corpus, rng)

    if len(corpus) != 132:
        raise AssertionError(
            f"legal corpus generator produced {len(corpus)} files, expected 132"
        )

    description = (
        "A data lake of 132 CSV and HTML files from the FTC Consumer "
        "Sentinel Network with statistics on fraud, identity theft, and "
        "other consumer reports. Files include national year-over-year "
        "series, state-level breakdowns, fraud subcategory tables, scam "
        "type rankings, annual review reports, and consumer guidance pages."
    )
    return DatasetBundle(
        name="kramabench-legal",
        corpus=corpus,
        schema=TEXT_FILE_SCHEMA,
        registry=build_intent_registry(),
        description=description,
        ground_truth={
            "identity_theft_2001": IT_2001,
            "identity_theft_2024": IT_2024,
            "ratio": TRUE_RATIO,
            "ground_truth_file": "fraud_identity_theft_and_other_reports_2001_2024.csv",
            "top_state_2024": top_state,
            "top_state_2024_reports": int(
                national["identity_theft"][2024] * weights[top_state]
            ),
        },
    )
