"""Common container for generated datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.corpus import FileCorpus
from repro.data.records import DataRecord
from repro.data.schemas import Schema
from repro.data.sources import MemorySource
from repro.llm.oracle import IntentRegistry


@dataclass
class DatasetBundle:
    """A generated corpus plus everything needed to query and score it."""

    name: str
    corpus: FileCorpus
    schema: Schema
    #: Intents the simulated LLM's oracle can resolve on this dataset.
    registry: IntentRegistry
    #: Natural-language description, suitable for a Context's ``desc``.
    description: str
    #: Benchmark ground truth (dataset-specific keys).
    ground_truth: dict[str, Any] = field(default_factory=dict)
    #: Structured records, when the natural record shape is richer than
    #: one-file-one-record (e.g. parsed emails).  Falls back to the corpus.
    record_list: list[DataRecord] | None = None

    def records(self) -> list[DataRecord]:
        if self.record_list is not None:
            return list(self.record_list)
        return self.corpus.to_records()

    def validate(self) -> list[str]:
        """Self-check the bundle; returns a list of problems (empty = ok).

        Checks that every record conforms to the schema, that difficulty
        annotations are in range, and that every annotation intent key the
        records reference is actually registered (so the oracle can resolve
        instructions onto it).
        """
        from repro.llm.oracle import DIFFICULTY_PREFIX

        problems: list[str] = []
        registered = set(self.registry.keys())
        for record in self.records():
            for issue in self.schema.validate(record):
                problems.append(f"{record.uid}: {issue}")
            for key, value in record.annotations.items():
                if key.startswith(DIFFICULTY_PREFIX):
                    if not 0.0 <= float(value) <= 1.0:
                        problems.append(
                            f"{record.uid}: difficulty {value!r} for "
                            f"{key[len(DIFFICULTY_PREFIX):]} out of range"
                        )
                    continue
                if key.startswith("_"):
                    continue  # auxiliary annotations (distractors, etc.)
                if key not in registered:
                    problems.append(
                        f"{record.uid}: annotation {key!r} has no registered intent"
                    )
        return problems

    def source(self) -> MemorySource:
        return MemorySource(self.records(), self.schema, source_id=self.name)
