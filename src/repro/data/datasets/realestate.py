"""Synthetic real-estate listings workload.

Palimpzest's demos (and the paper's motivation for semantic filters) include
a real-estate task: find listings that are "modern and attractive" under a
price cap.  This corpus backs the quickstart example and a slice of the
test suite with a third, structurally different domain: records mix
structured fields (price, bedrooms) with unstructured descriptions, which
is also what the SQL-materialization path consumes.
"""

from __future__ import annotations

from repro.data.corpus import FileCorpus
from repro.data.datasets.base import DatasetBundle
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry
from repro.utils.seeding import SeededRng

INTENT_MODERN = "re.modern_attractive"
INTENT_VIEW = "re.has_view"
INTENT_STYLE = "re.style"

FILTER_MODERN = "The listing describes a modern and attractive home."
FILTER_VIEW = "The listing mentions a view of the water, city, or mountains."
MAP_STYLE = "Classify the architectural style of the home."

LISTING_SCHEMA = Schema(
    [
        Field("listing_id", str, "unique listing identifier"),
        Field("address", str, "street address of the property"),
        Field("price", int, "asking price in dollars"),
        Field("bedrooms", int, "number of bedrooms"),
        Field("description", str, "free-text listing description"),
    ],
    name="Listing",
    desc="A residential real-estate listing.",
)

STYLES = ["modern", "craftsman", "colonial", "ranch", "victorian"]

_MODERN_SNIPPETS = [
    "Fully renovated with floor-to-ceiling windows and an open-concept chef's kitchen.",
    "Sleek contemporary build with polished concrete floors and designer fixtures.",
    "Stunning modern home with clean lines, smart-home wiring, and a rooftop deck.",
    "Architect-designed new construction with walls of glass and radiant heating.",
]
_DATED_SNIPPETS = [
    "Charming fixer-upper with original 1970s finishes and great bones.",
    "Cozy home with wood paneling throughout; needs some TLC.",
    "Classic layout with shag carpeting and a sunken living room.",
    "Estate sale: dated interior, priced to reflect needed updates.",
]
_NEUTRAL_SNIPPETS = [
    "Close to schools, parks, and the commuter rail.",
    "Large fenced backyard with mature trees.",
    "Two-car garage and newer roof.",
    "Quiet cul-de-sac location with friendly neighbors.",
]
_VIEW_SNIPPETS = [
    "Sweeping views of the bay from the primary suite.",
    "Unobstructed city skyline views from the balcony.",
    "Wake up to mountain views from every rear window.",
]

_STREETS = [
    "Maple St", "Oak Ave", "Cedar Ln", "Birch Rd", "Elm Dr", "Willow Way",
    "Juniper Ct", "Alder Pl", "Spruce Ter", "Hawthorn Blvd",
]


def build_intent_registry() -> IntentRegistry:
    registry = IntentRegistry()
    registry.register(INTENT_MODERN, ["modern", "attractive"], "listing is modern and attractive")
    registry.register(INTENT_VIEW, ["view", "water", "city", "mountains"], "listing mentions a view")
    registry.register(INTENT_STYLE, ["architectural", "style"], "architectural style of the home")
    return registry


def generate_realestate_corpus(seed: int = 23, n_listings: int = 120) -> DatasetBundle:
    """Generate ``n_listings`` listings, roughly 30% modern-and-attractive."""
    if n_listings < 10:
        raise ValueError(f"need at least 10 listings, got {n_listings}")
    rng = SeededRng(seed).child("realestate")
    corpus = FileCorpus("realestate")
    records: list[DataRecord] = []
    modern_ids: list[str] = []

    for index in range(n_listings):
        child = rng.child("listing", index)
        listing_id = f"L{index:04d}"
        style = STYLES[index % len(STYLES)]
        is_modern = style == "modern" or (style == "craftsman" and child.chance(0.25))
        has_view = child.chance(0.3)

        snippets = []
        if is_modern:
            snippets.append(child.choice(_MODERN_SNIPPETS))
        else:
            snippets.append(child.choice(_DATED_SNIPPETS))
        if has_view:
            snippets.append(child.choice(_VIEW_SNIPPETS))
        snippets.append(child.choice(_NEUTRAL_SNIPPETS))
        description = " ".join(snippets)

        price = int(child.uniform(250, 2400)) * 1000
        bedrooms = child.randint(1, 6)
        address = f"{child.randint(10, 9999)} {child.choice(_STREETS)}"

        # Borderline cases: dated-but-renovated craftsman homes are hard.
        modern_difficulty = 0.7 if (style == "craftsman" and is_modern) else 0.15
        annotations = {
            INTENT_MODERN: is_modern,
            DIFFICULTY_PREFIX + INTENT_MODERN: modern_difficulty,
            INTENT_VIEW: has_view,
            DIFFICULTY_PREFIX + INTENT_VIEW: 0.1,
            INTENT_STYLE: style,
            DIFFICULTY_PREFIX + INTENT_STYLE: 0.3,
        }
        rendered = (
            f"Listing {listing_id}\nAddress: {address}\nPrice: ${price:,}\n"
            f"Bedrooms: {bedrooms}\n\n{description}\n"
        )
        corpus.add(f"listing_{listing_id}.txt", rendered, annotations)
        records.append(
            DataRecord(
                fields={
                    "listing_id": listing_id,
                    "address": address,
                    "price": price,
                    "bedrooms": bedrooms,
                    "description": description,
                },
                uid=f"realestate:{listing_id}",
                annotations=annotations,
                source_id="realestate",
            )
        )
        if is_modern:
            modern_ids.append(listing_id)

    description_text = (
        f"A corpus of {n_listings} residential real-estate listings with "
        "structured fields (price, bedrooms, address) and free-text "
        "descriptions of each property."
    )
    return DatasetBundle(
        name="realestate",
        corpus=corpus,
        schema=LISTING_SCHEMA,
        registry=build_intent_registry(),
        description=description_text,
        ground_truth={"modern_listing_ids": sorted(modern_ids)},
        record_list=records,
    )
