"""Command-line interface: reproduce the paper's results from a shell.

Usage::

    python -m repro table1            # reproduce Table 1
    python -m repro table2            # reproduce Table 2
    python -m repro demo              # run the Figure 1/2 walkthrough
    python -m repro query "<NL query>" --dataset legal
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.bench.harness import render_report, run_trials
from repro.bench.systems import (
    enron_codeagent_plus_system,
    enron_codeagent_system,
    enron_compute_system,
    kramabench_codeagent_system,
    kramabench_compute_system,
    kramabench_semops_system,
)
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import (
    generate_enron_corpus,
    generate_legal_corpus,
    generate_realestate_corpus,
)

_DATASETS = {
    "legal": generate_legal_corpus,
    "enron": generate_enron_corpus,
    "realestate": generate_realestate_corpus,
}


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Install default tracer/metrics per ``--trace``/``--metrics``.

    Runtimes built inside the block adopt them (see ``SimulatedLLM``); on
    exit the previous defaults are restored and, when ``--trace PATH`` was
    given, the Chrome-trace JSON plus a JSONL sibling are written.  A root
    ``cli`` span brackets the whole command so the trace's end matches the
    virtual clock's elapsed time exactly.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        yield
        return
    from repro import obs

    tracer = obs.Tracer() if trace_path else obs.NOOP_TRACER
    metrics = obs.MetricsRegistry()
    prev_tracer = obs.set_default_tracer(tracer)
    prev_metrics = obs.set_default_metrics(metrics)
    try:
        with tracer.span("cli", kind="cli", command=args.command):
            yield
    finally:
        obs.set_default_tracer(prev_tracer)
        obs.set_default_metrics(prev_metrics)
        if trace_path:
            out = obs.write_chrome_trace(trace_path, tracer, metrics=metrics)
            jsonl = (
                out.with_suffix(".jsonl")
                if out.suffix == ".json"
                else out.with_name(out.name + ".jsonl")
            )
            obs.write_jsonl(jsonl, tracer, metrics=metrics)
            print(f"trace: {out} ({len(tracer.spans)} spans), events: {jsonl}")
        if want_metrics:
            print(metrics.render(title="RUNTIME METRICS"))


def _cmd_table1(args: argparse.Namespace) -> int:
    bundle = generate_legal_corpus()
    trace_dir = getattr(args, "trace_dir", None)
    summaries = [
        run_trials("Sem. Ops", kramabench_semops_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
        run_trials("CodeAgent", kramabench_codeagent_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
        run_trials("PZ compute", kramabench_compute_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
    ]
    print(
        render_report(
            f"Table 1: Kramabench legal-easy-3 (avg of {args.trials} trials)",
            summaries,
            metric_columns=[("Pct. Err.", "pct_err", lambda v: f"{v:.2f}%")],
        )
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    bundle = generate_enron_corpus()
    trace_dir = getattr(args, "trace_dir", None)
    summaries = [
        run_trials("CodeAgent", enron_codeagent_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
        run_trials("CodeAgent+", enron_codeagent_plus_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
        run_trials("PZ compute", enron_compute_system(bundle), args.trials,
                   args.seed, trace_dir=trace_dir),
    ]
    print(
        render_report(
            f"Table 2: Enron firsthand-transaction filter (avg of {args.trials} trials)",
            summaries,
            metric_columns=[
                ("F1", "f1", lambda v: f"{v * 100:.2f}%"),
                ("Recall", "recall", lambda v: f"{v * 100:.2f}%"),
                ("Prec.", "precision", lambda v: f"{v * 100:.2f}%"),
            ],
        )
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.data.datasets.kramabench import QUERY_RATIO

    bundle = generate_legal_corpus()
    with _observability(args):
        runtime = AnalyticsRuntime.for_bundle(bundle, seed=args.seed)
        context = runtime.make_context(bundle, build_index=True)
        print(f"Context: {context.name} ({len(context)} files)")
        found = runtime.search(context, "information on identity theft reports")
        print(f"search found: {found.findings.get('relevant_items')}")
        result = runtime.compute(found.output_context, QUERY_RATIO)
        print(f"compute answer: {result.answer}")
        print(f"cost=${result.cost_usd:.2f}  simulated time={result.time_s:.0f}s")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    generator = _DATASETS.get(args.dataset)
    if generator is None:
        print(f"unknown dataset {args.dataset!r}; known: {sorted(_DATASETS)}", file=sys.stderr)
        return 2
    bundle = generator()
    with _observability(args):
        runtime = AnalyticsRuntime.for_bundle(bundle, seed=args.seed)
        context = runtime.make_context(bundle)
        result = runtime.compute(context, args.query)
        print(f"answer: {result.answer}")
        print(f"cost=${result.cost_usd:.4f}  simulated time={result.time_s:.1f}s  "
              f"agent steps={result.agent.steps_used}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Deep Research is the New Analytics System' (CIDR 2026).",
    )
    parser.add_argument("--seed", type=int, default=20260706, help="base seed")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--trials", type=int, default=3)
    table1.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="write one Chrome trace per (system, trial)")
    table1.set_defaults(fn=_cmd_table1)

    table2 = sub.add_parser("table2", help="reproduce Table 2")
    table2.add_argument("--trials", type=int, default=3)
    table2.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="write one Chrome trace per (system, trial)")
    table2.set_defaults(fn=_cmd_table2)

    demo = sub.add_parser("demo", help="run the Figure 1/2 walkthrough")
    _add_obs_flags(demo)
    demo.set_defaults(fn=_cmd_demo)

    query = sub.add_parser("query", help="run compute() on a built-in dataset")
    query.add_argument("query")
    query.add_argument("--dataset", default="legal", choices=sorted(_DATASETS))
    _add_obs_flags(query)
    query.set_defaults(fn=_cmd_query)

    qa = sub.add_parser(
        "qa",
        help="differential-testing harness (same as python -m repro.qa)",
        add_help=False,
    )
    qa.add_argument("qa_args", nargs=argparse.REMAINDER)
    qa.set_defaults(fn=_cmd_qa)

    return parser


def _cmd_qa(args: argparse.Namespace) -> int:
    """Delegate to the fuzz/replay/selftest harness CLI."""
    from repro.qa.cli import main as qa_main

    return qa_main(args.qa_args)


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome-trace JSON (open in ui.perfetto.dev) plus a "
        "JSONL event log next to it",
    )
    sub_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the runtime metrics table after the command",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
