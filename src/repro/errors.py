"""Exception hierarchy for the repro runtime.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when the runtime or an operator is misconfigured."""


class SchemaError(ReproError):
    """Raised for invalid schema definitions or schema mismatches."""


class DataSourceError(ReproError):
    """Raised when a data source cannot be read or parsed."""


class LLMError(ReproError):
    """Base class for errors from the (simulated) LLM service."""


class UnknownModelError(LLMError):
    """Raised when a request names a model absent from the catalog."""


class BudgetExceededError(LLMError):
    """Raised when a request would exceed the configured spend budget."""


class SQLError(ReproError):
    """Base class for SQL engine errors."""


class SQLSyntaxError(SQLError):
    """Raised by the lexer/parser on malformed SQL."""


class SQLPlanError(SQLError):
    """Raised by the planner for semantically invalid queries."""


class SQLExecutionError(SQLError):
    """Raised during query execution (e.g. type errors, missing tables)."""


class PlanError(ReproError):
    """Raised for invalid semantic-operator plans."""


class OptimizationError(ReproError):
    """Raised when the optimizer cannot produce a physical plan."""


class ExecutionError(ReproError):
    """Raised when executing a physical plan fails."""


class SandboxError(ReproError):
    """Base class for sandboxed-interpreter errors."""


class SandboxSecurityError(SandboxError):
    """Raised when submitted code uses a forbidden construct."""


class SandboxTimeoutError(SandboxError):
    """Raised when sandboxed code exceeds its step budget."""


class AgentError(ReproError):
    """Raised when an agent cannot complete its task."""


class ToolError(ReproError):
    """Raised when a tool invocation fails."""


class ContextError(ReproError):
    """Raised for invalid Context operations (bad index, missing tool...)."""
