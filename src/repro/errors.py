"""Exception hierarchy for the repro runtime.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when the runtime or an operator is misconfigured."""


class SchemaError(ReproError):
    """Raised for invalid schema definitions or schema mismatches."""


class DataSourceError(ReproError):
    """Raised when a data source cannot be read or parsed."""


class LLMError(ReproError):
    """Base class for errors from the (simulated) LLM service."""


class UnknownModelError(LLMError):
    """Raised when a request names a model absent from the catalog."""


class BudgetExceededError(LLMError):
    """Raised when a request would exceed the configured spend budget."""


class TransientLLMError(LLMError):
    """Base class for retryable LLM-service failures.

    Raised by the simulated service when the :class:`~repro.llm.faults.FaultInjector`
    injects a fault and the configured :class:`~repro.llm.faults.RetryPolicy`
    (if any) has exhausted its attempts.  Callers that can degrade gracefully
    catch this one class.
    """


class RateLimitError(TransientLLMError):
    """Raised when the (simulated) service returns a 429 rate limit.

    Carries ``retry_after_s``, the server's suggested wait; the retry policy
    honours it as a floor on the backoff for this attempt.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TimeoutError(TransientLLMError):  # noqa: A001 - mirrors SDK naming
    """Raised when a call exceeds its per-call timeout (injected or real).

    The caller has already paid prefill tokens and waited out the timeout by
    the time this is raised — timeouts are the most expensive fault kind.
    """


class TransientAPIError(TransientLLMError):
    """Raised for generic 5xx-style transient API failures."""


class CircuitOpenError(TransientLLMError):
    """Raised fail-fast when a model's circuit breaker is open.

    No latency is charged: the call never leaves the client.  The breaker
    half-opens after its cooldown has elapsed on the virtual clock.
    """


class SQLError(ReproError):
    """Base class for SQL engine errors."""


class SQLSyntaxError(SQLError):
    """Raised by the lexer/parser on malformed SQL."""


class SQLPlanError(SQLError):
    """Raised by the planner for semantically invalid queries."""


class SQLExecutionError(SQLError):
    """Raised during query execution (e.g. type errors, missing tables)."""


class PlanError(ReproError):
    """Raised for invalid semantic-operator plans."""


class OptimizationError(ReproError):
    """Raised when the optimizer cannot produce a physical plan."""


class ExecutionError(ReproError):
    """Raised when executing a physical plan fails."""


class SandboxError(ReproError):
    """Base class for sandboxed-interpreter errors."""


class SandboxSecurityError(SandboxError):
    """Raised when submitted code uses a forbidden construct."""


class SandboxTimeoutError(SandboxError):
    """Raised when sandboxed code exceeds its step budget."""


class AgentError(ReproError):
    """Raised when an agent cannot complete its task."""


class ToolError(ReproError):
    """Raised when a tool invocation fails."""


class ContextError(ReproError):
    """Raised for invalid Context operations (bad index, missing tool...)."""


class StreamingError(ReproError):
    """Raised for invalid standing-query operations (bad refresh policy,
    unregisterable plan, source without a change feed)."""


class ServingError(ReproError):
    """Base class for multi-tenant serving-layer errors."""


class QuotaExceededError(ServingError):
    """Raised when a tenant's submission is rejected by admission control.

    Carries ``tenant`` and ``reason`` (``"budget"`` or ``"rate"``) so
    callers can distinguish a spent budget from a burst over the tenant's
    admission-rate window.  Rejection happens *before* the query touches
    the shared substrate: a rejected query perturbs no cache state.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
