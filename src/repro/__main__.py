"""Module entry point: ``python -m repro <command>``."""

from repro.cli import main

raise SystemExit(main())
