"""Standard file tools for data-lake agents (``list_files``/``read_file``).

These are the exact tools the paper equips its baseline CodeAgents with.
Reading a file costs no LLM tokens by itself — the cost materializes when
the agent prints file contents into an observation, which then rides along
in subsequent step prompts.
"""

from __future__ import annotations

from repro.agents.tools import Tool, ToolRegistry
from repro.data.corpus import FileCorpus


def build_file_tools(corpus: FileCorpus) -> ToolRegistry:
    """Tool registry with ``list_files()`` and ``read_file(name)``."""

    def list_files() -> list[str]:
        """List the names of all files in the data lake."""
        return corpus.list_files()

    def read_file(filename: str) -> str:
        """Read the full text contents of one file."""
        return corpus.read_file(filename)

    return ToolRegistry(
        [
            Tool("list_files", "List the names of all files in the data lake.", list_files),
            Tool("read_file", "Read the full text contents of one file.", read_file),
        ]
    )
