"""Unoptimized semantic-operator tools (the ``CodeAgent+`` baseline).

The paper's second baseline equips a CodeAgent with tools for applying
semantic filters and maps.  Crucially these tools are *unoptimized*: every
invocation scans the full record set with the champion model — no filter
reordering, no pushdown, no model selection.  The inefficiency the paper
measures (e.g. running a second filter over records the first already
rejected, or mapping records that will later be filtered away) is the
agent's, not the tools'.
"""

from __future__ import annotations

from repro.agents.tools import Tool, ToolRegistry
from repro.data.records import DataRecord
from repro.llm.models import DEFAULT_MODEL
from repro.llm.simulated import SimulatedLLM


def build_semantic_tools(
    records: list[DataRecord],
    llm: SimulatedLLM,
    model: str = DEFAULT_MODEL,
    key_field: str = "filename",
    tag: str = "codeagent-plus",
) -> ToolRegistry:
    """Tool registry with ``sem_filter`` and ``sem_map`` over ``records``.

    ``sem_filter(instruction)`` returns the keys (``key_field`` values) of
    records satisfying the predicate; ``sem_map(instruction)`` returns a
    ``{key: extracted_value}`` mapping over **all** records.
    """
    by_key = {record[key_field]: record for record in records}

    def sem_filter(instruction: str) -> list[str]:
        """Apply a natural-language filter to every record; returns matching keys."""
        matches = []
        for record in records:
            judgment = llm.judge_filter(
                instruction, record, model=model, tag=f"{tag}:sem_filter"
            )
            if judgment.answer:
                matches.append(record[key_field])
        return matches

    def sem_map(instruction: str) -> dict[str, object]:
        """Apply a natural-language extraction to every record; returns {key: value}."""
        output = {}
        for record in records:
            extraction = llm.extract(
                instruction, record, model=model, tag=f"{tag}:sem_map"
            )
            output[record[key_field]] = extraction.value
        return output

    def sem_filter_subset(instruction: str, keys: list[str]) -> list[str]:
        """Apply a natural-language filter only to the records named by ``keys``."""
        matches = []
        for key in keys:
            record = by_key.get(key)
            if record is None:
                continue
            judgment = llm.judge_filter(
                instruction, record, model=model, tag=f"{tag}:sem_filter"
            )
            if judgment.answer:
                matches.append(key)
        return matches

    return ToolRegistry(
        [
            Tool(
                "sem_filter",
                "Apply a natural-language filter to every record; returns matching keys.",
                sem_filter,
            ),
            Tool(
                "sem_map",
                "Apply a natural-language extraction to every record; returns {key: value}.",
                sem_map,
            ),
            Tool(
                "sem_filter_subset",
                "Apply a natural-language filter to the records named by keys.",
                sem_filter_subset,
            ),
        ]
    )
