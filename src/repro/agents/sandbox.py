"""Sandboxed Python interpreter for CodeAgent steps.

Code written by agents executes here with:

- **AST validation**: only a safe subset of Python parses through
  (no attribute access to underscored names, no class definitions, imports
  restricted to an allowlist of stdlib modules);
- **restricted builtins**: a fixed allowlist, no ``open``/``eval``/
  ``__import__``;
- **a step budget**: a trace-based line counter aborts runaway loops;
- **captured stdout**: ``print`` output becomes the agent's observation.

The namespace persists across steps of one agent episode, as in SmolAgents'
CodeAgent, so step 2 can use variables defined in step 1.
"""

from __future__ import annotations

import ast
import collections
import contextlib
import csv
import io
import json
import math
import re
import statistics
import sys
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SandboxSecurityError, SandboxTimeoutError

#: Modules agent code may import.
ALLOWED_MODULES = {
    "re": re,
    "json": json,
    "math": math,
    "csv": csv,
    "io": io,
    "statistics": statistics,
    "collections": collections,
}

_ALLOWED_BUILTINS = {
    "print": print,
    "len": len,
    "range": range,
    "enumerate": enumerate,
    "sorted": sorted,
    "min": min,
    "max": max,
    "sum": sum,
    "abs": abs,
    "round": round,
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "list": list,
    "dict": dict,
    "set": set,
    "tuple": tuple,
    "zip": zip,
    "map": map,
    "filter": filter,
    "any": any,
    "all": all,
    "repr": repr,
    "reversed": reversed,
    "isinstance": isinstance,
    "Exception": Exception,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "ZeroDivisionError": ZeroDivisionError,
}
# __import__ is appended at module bottom once _safe_import exists.

def _safe_import(name, globals=None, locals=None, fromlist=(), level=0):  # noqa: A002
    """Import hook restricted to the allowlist (AST validation backstop)."""
    root = name.split(".")[0]
    if root not in ALLOWED_MODULES:
        raise SandboxSecurityError(
            f"import of {root!r} is not allowed; allowed: {sorted(ALLOWED_MODULES)}"
        )
    return ALLOWED_MODULES[root]


_FORBIDDEN_NODES = (
    ast.ClassDef,
    ast.AsyncFunctionDef,
    ast.AsyncFor,
    ast.AsyncWith,
    ast.Await,
    ast.Global,
    ast.Nonlocal,
)


class FinalAnswerSignal(Exception):
    """Raised by the injected ``final_answer`` tool to end an episode."""

    def __init__(self, value: Any) -> None:
        super().__init__("final answer")
        self.value = value


@dataclass
class SandboxResult:
    """Outcome of executing one code block."""

    stdout: str
    error: str | None = None
    final_answer: Any = None
    finished: bool = False


def validate_code(code: str) -> ast.Module:
    """Parse and security-check ``code``; raises on violations."""
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        raise SandboxSecurityError(f"syntax error in agent code: {exc}") from exc
    for node in ast.walk(tree):
        if isinstance(node, _FORBIDDEN_NODES):
            raise SandboxSecurityError(
                f"forbidden construct in agent code: {type(node).__name__}"
            )
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.module if isinstance(node, ast.ImportFrom) else None
            names = [module] if module else [alias.name for alias in node.names]
            for name in names:
                root = (name or "").split(".")[0]
                if root not in ALLOWED_MODULES:
                    raise SandboxSecurityError(
                        f"import of {root!r} is not allowed; "
                        f"allowed modules: {sorted(ALLOWED_MODULES)}"
                    )
        if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
            raise SandboxSecurityError(
                f"access to underscored attribute {node.attr!r} is not allowed"
            )
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            raise SandboxSecurityError(
                f"use of dunder name {node.id!r} is not allowed"
            )
    return tree


class Sandbox:
    """Executes validated agent code with a persistent namespace."""

    def __init__(self, tools: dict[str, Callable] | None = None, max_lines: int = 200_000) -> None:
        self.max_lines = max_lines
        self.namespace: dict[str, Any] = {}
        self.namespace.update(ALLOWED_MODULES)
        if tools:
            self.namespace.update(tools)
        self.namespace["final_answer"] = _final_answer

    def execute(self, code: str) -> SandboxResult:
        """Run ``code``; never raises — failures land in ``result.error``."""
        try:
            tree = validate_code(code)
            # Some constructs parse but fail at compile time (e.g. a bare
            # starred expression), so compilation stays inside the guard.
            compiled = compile(tree, filename="<agent>", mode="exec")
        except SandboxSecurityError as exc:
            return SandboxResult(stdout="", error=str(exc))
        except (SyntaxError, ValueError) as exc:
            return SandboxResult(stdout="", error=f"syntax error in agent code: {exc}")
        globals_dict = self.namespace
        globals_dict["__builtins__"] = dict(_ALLOWED_BUILTINS)

        buffer = io.StringIO()
        counter = {"lines": 0}

        def tracer(frame, event, arg):  # noqa: ANN001 - trace protocol
            # Only meter the agent's own code: tools and library calls may
            # legitimately do heavy work (index builds, semantic programs).
            if frame.f_code.co_filename != "<agent>":
                return None
            if event == "line":
                counter["lines"] += 1
                if counter["lines"] > self.max_lines:
                    raise SandboxTimeoutError(
                        f"agent code exceeded the step budget of {self.max_lines} lines"
                    )
            return tracer

        old_trace = sys.gettrace()
        try:
            with contextlib.redirect_stdout(buffer):
                sys.settrace(tracer)
                try:
                    exec(compiled, globals_dict)  # noqa: S102 - sandboxed
                finally:
                    sys.settrace(old_trace)
        except FinalAnswerSignal as signal:
            return SandboxResult(
                stdout=buffer.getvalue(), final_answer=signal.value, finished=True
            )
        except SandboxTimeoutError as exc:
            return SandboxResult(stdout=buffer.getvalue(), error=str(exc))
        except Exception as exc:  # agent code may raise anything
            return SandboxResult(
                stdout=buffer.getvalue(),
                error=f"{type(exc).__name__}: {exc}",
            )
        return SandboxResult(stdout=buffer.getvalue())


def _final_answer(value: Any) -> None:
    raise FinalAnswerSignal(value)


_ALLOWED_BUILTINS["__import__"] = _safe_import
