"""The CodeAgent: a plan-act-observe loop over the sandbox.

The *policy* stands in for the LLM's code generation: given the task and
the trace so far, it returns the next Python code block (see
``policies/base.py`` for why scripted policies are the right simulation of
the paper's agents).  Every step is nevertheless priced through the
simulated LLM — the prompt contains the task, the tool descriptions, and
recent observations, so agents that read lots of data through observations
pay for it, exactly like real CodeAgents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.policies.base import AgentPolicy
from repro.agents.sandbox import Sandbox
from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentStep, AgentTrace
from repro.errors import AgentError, TransientLLMError
from repro.llm.models import DEFAULT_MODEL
from repro.llm.simulated import SimulatedLLM
from repro.utils.seeding import SeededRng

#: Observation text beyond this many characters is truncated (as real agent
#: frameworks do to bound context growth).
OBSERVATION_LIMIT = 8_000

#: How many trailing observations are included in each step's prompt.
PROMPT_OBSERVATION_WINDOW = 2

#: Real CodeAgents emit a reasoning paragraph before each code block; the
#: simulated completion is charged for it so per-step latency and cost
#: match the ~hundreds-of-output-tokens profile of actual agent steps.
REASONING_PREAMBLE = (
    "Thought: Based on the task and the previous observation, the next "
    "step is to gather or verify the specific information required. I "
    "will inspect the relevant items, extract the values I need, check "
    "them for consistency with what I have already seen, and then either "
    "continue exploring or produce the final answer if the evidence is "
    "sufficient. Executing the following code now.\n"
)


@dataclass
class AgentResult:
    """Outcome of one agent episode."""

    answer: object
    trace: AgentTrace
    finished: bool
    steps_used: int
    cost_usd: float = 0.0
    time_s: float = 0.0
    #: Transient LLM failures survived (each burned a recovery turn).
    llm_failures: int = 0
    #: Sandbox/tool errors observed across the episode.
    tool_errors: int = 0
    #: Why the episode was cut short, if it was ("llm-unavailable",
    #: "step-timeout", "tool-errors"); None for a normal ending.
    aborted: str | None = None

    def succeeded(self) -> bool:
        return self.finished


class CodeAgent:
    """An agent that iteratively writes and executes Python code."""

    def __init__(
        self,
        llm: SimulatedLLM,
        tools: ToolRegistry,
        policy: AgentPolicy,
        model: str = DEFAULT_MODEL,
        max_steps: int = 12,
        name: str = "codeagent",
        seed: int = 0,
        step_timeout_s: float | None = None,
        max_llm_failures: int = 3,
        max_consecutive_tool_errors: int | None = None,
    ) -> None:
        if max_steps < 1:
            raise AgentError(f"max_steps must be >= 1, got {max_steps}")
        if step_timeout_s is not None and step_timeout_s <= 0:
            raise AgentError(f"step_timeout_s must be positive, got {step_timeout_s}")
        self.llm = llm
        self.tools = tools
        self.policy = policy
        self.model = model
        self.max_steps = max_steps
        self.name = name
        self.seed = seed
        #: Abort the episode if one step's virtual time exceeds this budget.
        self.step_timeout_s = step_timeout_s
        #: Transient LLM failures tolerated per episode before giving up.
        #: Each failure is a recovery turn: the same step is re-issued rather
        #: than advancing the (stateful) policy, so a blip does not skip work.
        self.max_llm_failures = max_llm_failures
        #: Abort after this many tool-error steps in a row (None = never).
        self.max_consecutive_tool_errors = max_consecutive_tool_errors

    def run(self, task: str, context_note: str = "") -> AgentResult:
        """Execute one episode on ``task``.

        ``context_note`` (e.g. a Context's description) rides along in every
        step prompt — the agent pays tokens for it — but is not part of the
        task string policies parse.
        """
        self._context_note = context_note
        trace = AgentTrace(task)
        sandbox = Sandbox(tools=self.tools.as_namespace())
        rng = SeededRng(self.seed).child("agent", self.name)
        self.tools.reset_counters()
        self.policy.reset(task, rng)

        tracer = self.llm.tracer
        metrics = self.llm.metrics
        if tracer.enabled:
            self.tools.instrument(tracer)
        if metrics.enabled:
            metrics.counter("agent.episodes").inc()

        start_cost = self.llm.tracker.total().cost_usd
        start_time = self.llm.clock.elapsed

        answer = None
        finished = False
        aborted = None
        llm_failures = 0
        tool_errors = 0
        consecutive_tool_errors = 0
        pending_code: str | None = None
        with tracer.span(
            f"agent:{self.name}", kind="agent-episode", model=self.model
        ) as episode_span:
            while len(trace) < self.max_steps:
                if pending_code is not None:
                    code, pending_code = pending_code, None
                else:
                    code = self.policy.next_code(task, trace, self.tools)
                if code is None:
                    # The policy has nothing further to try: the premature-
                    # termination failure mode the paper observes in the wild.
                    break

                checkpoint = self.llm.tracker.checkpoint()
                time_before = self.llm.clock.elapsed
                with tracer.span(
                    f"step {len(trace)}", kind="agent-step", step=len(trace)
                ) as step_span:
                    if metrics.enabled:
                        metrics.counter("agent.steps").inc()
                    try:
                        self.llm.complete(
                            self._prompt(task, trace),
                            model=self.model,
                            max_output_tokens=600,
                            tag=f"{self.name}:step",
                            expected_output=REASONING_PREAMBLE + code,
                        )
                    except TransientLLMError:
                        # The substrate's own retries are exhausted; the failed
                        # attempts are already charged.  Burn a recovery turn
                        # and re-issue the same step so the scripted policy
                        # stays in sync.
                        llm_failures += 1
                        step_span.attributes["recovery"] = True
                        if metrics.enabled:
                            metrics.counter("agent.recoveries").inc()
                        if llm_failures > self.max_llm_failures:
                            aborted = "llm-unavailable"
                            break
                        pending_code = code
                        continue
                    result = sandbox.execute(code)
                observation = result.stdout[:OBSERVATION_LIMIT]
                step = AgentStep(
                    index=len(trace),
                    code=code,
                    observation=observation,
                    error=result.error,
                    cost_usd=self.llm.tracker.since(checkpoint).cost_usd,
                    time_s=self.llm.clock.elapsed - time_before,
                )
                trace.add(step)
                if tracer.enabled:
                    step_span.attributes.update(
                        cost_usd=round(step.cost_usd, 6),
                        error=bool(result.error),
                    )
                if result.finished:
                    answer = result.final_answer
                    finished = True
                    break
                if result.error:
                    tool_errors += 1
                    consecutive_tool_errors += 1
                    if metrics.enabled:
                        metrics.counter("agent.tool_errors").inc()
                    if (
                        self.max_consecutive_tool_errors is not None
                        and consecutive_tool_errors >= self.max_consecutive_tool_errors
                    ):
                        aborted = "tool-errors"
                        break
                else:
                    consecutive_tool_errors = 0
                if self.step_timeout_s is not None and step.time_s > self.step_timeout_s:
                    aborted = "step-timeout"
                    break

        if tracer.enabled:
            episode_span.attributes.update(
                steps=len(trace),
                finished=finished,
                aborted=aborted,
                cost_usd=round(self.llm.tracker.total().cost_usd - start_cost, 6),
            )
        return AgentResult(
            answer=answer,
            trace=trace,
            finished=finished,
            steps_used=len(trace),
            cost_usd=self.llm.tracker.total().cost_usd - start_cost,
            time_s=self.llm.clock.elapsed - start_time,
            llm_failures=llm_failures,
            tool_errors=tool_errors,
            aborted=aborted,
        )

    def _prompt(self, task: str, trace: AgentTrace) -> str:
        """Assemble the step prompt the (simulated) LLM is charged for."""
        parts = [
            "You are a CodeAgent. Write Python code to make progress on the task.",
            f"Task: {task}",
            "Tools:",
            self.tools.describe(),
        ]
        note = getattr(self, "_context_note", "")
        if note:
            parts.insert(2, f"Context description: {note}")
        recent = trace.steps[-PROMPT_OBSERVATION_WINDOW:]
        for step in recent:
            parts.append(f"Previous code:\n{step.code}")
            if step.error:
                parts.append(f"Error: {step.error}")
            if step.observation:
                parts.append(f"Observation:\n{step.observation}")
        return "\n\n".join(parts)
