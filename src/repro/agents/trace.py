"""Agent execution traces.

A trace records the full plan-act-observe history of one agent episode:
what code each step ran, what it printed, and what it cost.  Traces feed
three consumers: benchmark debugging, the ``search`` operator's description
enrichment (a summary of the trace becomes the new Context description),
and the examples' pretty-printed walkthroughs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.text import snippet


@dataclass
class AgentStep:
    """One step of an episode."""

    index: int
    code: str
    observation: str
    error: str | None = None
    cost_usd: float = 0.0
    time_s: float = 0.0

    def render(self, max_chars: int = 400) -> str:
        lines = [f"--- step {self.index} ---", "code:"]
        lines.append(self.code if len(self.code) <= max_chars else self.code[:max_chars] + "...")
        if self.error:
            lines.append(f"error: {self.error}")
        if self.observation:
            lines.append(f"observation: {snippet(self.observation, max_chars)}")
        return "\n".join(lines)


@dataclass
class AgentTrace:
    """The ordered steps of one episode."""

    task: str
    steps: list[AgentStep] = field(default_factory=list)

    def add(self, step: AgentStep) -> None:
        self.steps.append(step)

    def last_observation(self) -> str:
        for step in reversed(self.steps):
            if step.observation:
                return step.observation
        return ""

    def observations(self) -> list[str]:
        return [step.observation for step in self.steps]

    def total_cost(self) -> float:
        return sum(step.cost_usd for step in self.steps)

    def render(self) -> str:
        header = f"task: {snippet(self.task, 200)}"
        return "\n".join([header] + [step.render() for step in self.steps])

    def summary(self, max_steps: int = 6) -> str:
        """Short narrative used to enrich Context descriptions."""
        parts = [f"Executed {len(self.steps)} step(s) for task: {snippet(self.task, 160)}."]
        for step in self.steps[-max_steps:]:
            if step.observation:
                parts.append(f"Step {step.index} observed: {snippet(step.observation, 200)}")
        return " ".join(parts)

    def __len__(self) -> int:
        return len(self.steps)
