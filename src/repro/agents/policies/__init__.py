"""Agent policies: scripted stand-ins for LLM code generation."""

from repro.agents.policies.base import AgentPolicy, ScriptedPolicy
from repro.agents.policies.deep_research import (
    EnronCodeAgentPolicy,
    KramabenchCodeAgentPolicy,
)
from repro.agents.policies.generic_research import GenericResearchPolicy
from repro.agents.policies.semantic_tools import SemanticToolsCodeAgentPolicy

__all__ = [
    "AgentPolicy",
    "EnronCodeAgentPolicy",
    "GenericResearchPolicy",
    "KramabenchCodeAgentPolicy",
    "ScriptedPolicy",
    "SemanticToolsCodeAgentPolicy",
]
