"""Naive Deep-Research agent policies (the paper's ``CodeAgent`` baseline).

These scripted policies reproduce the failure modes the paper documents for
open Deep Research agents on data lakes:

- **keyword shortcuts**: files are ranked by naive filename keyword overlap
  and emails are grepped with a regex, rather than read exhaustively;
- **bounded diligence**: only a handful of files/emails are actually read
  ("an agent may ... give up on reading the dataset after the fourth or
  fifth file");
- **manual verification**: the agent trusts what it personally read, which
  keeps precision high and recall low on the Enron query, and produces
  spurious ratios from non-ground-truth files on the Kramabench query.

Randomness (tie-breaking among equally-ranked files, which candidates get
read, occasional verification mistakes) is drawn from the episode's seeded
RNG, so three trials vary like the paper's three runs.
"""

from __future__ import annotations

import json
import re

from repro.agents.policies.base import AgentPolicy
from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentTrace
from repro.data.tabular import extract_numbers
from repro.utils.text import STOPWORDS, tokenize

#: Marker the generated read loops print before each file's contents.
OBS_FILE_MARKER = "<<<FILE>>>"


def filename_tokens(filename: str) -> set[str]:
    """Tokenize a filename for keyword matching (underscores split words)."""
    return set(tokenize(filename.replace("_", " ").replace(".", " ")))


def split_file_sections(observation: str) -> dict[str, str]:
    """Recover {filename: text} from a batched-read observation."""
    sections: dict[str, str] = {}
    for part in observation.split(OBS_FILE_MARKER)[1:]:
        lines = part.splitlines()
        if not lines:
            continue
        name = lines[0].strip()
        sections[name] = "\n".join(lines[1:])
    return sections


def read_batch_code(filenames: list[str], max_chars: int = 1500) -> str:
    """Generate the code for reading a batch of files."""
    return (
        f"for f in {json.dumps(filenames)}:\n"
        f"    print({OBS_FILE_MARKER!r}, f)\n"
        f"    print(read_file(f)[:{max_chars}])\n"
    )


def find_year_value(text: str, year: int) -> float | None:
    """Extract "the" statistic for ``year`` from file text, naively.

    Tries a CSV parse first (column whose header mentions identity theft),
    then falls back to grabbing the largest number on a line mentioning the
    year.  This is deliberately the kind of simplistic extraction the paper
    observes agents writing.
    """
    lines = text.splitlines()
    column = None
    header_index = None
    for index, line in enumerate(lines[:5]):
        cells = [cell.strip() for cell in line.split(",")]
        for position, cell in enumerate(cells):
            if "identity theft" in cell.lower():
                column, header_index = position, index
                break
        if column is not None:
            break
    if column is not None and column > 0:
        for line in lines[header_index + 1 :]:
            cells = [cell.strip() for cell in line.split(",")]
            if cells and cells[0].startswith(str(year)) and len(cells) > column:
                numbers = extract_numbers(cells[column])
                if numbers:
                    return numbers[0]
    year_re = re.compile(rf"(?<!\d){year}(?!\d)")
    for line in lines:
        if year_re.search(line):
            numbers = [
                value
                for value in extract_numbers(year_re.sub(" ", line))
                if value >= 100
            ]
            if numbers:
                return max(numbers)
    return None


class KramabenchCodeAgentPolicy(AgentPolicy):
    """Naive agent for "compute the ratio of X in YEAR_A vs YEAR_B" tasks."""

    def __init__(self, n_candidates: int = 6, batch_size: int = 2) -> None:
        self.n_candidates = n_candidates
        self.batch_size = batch_size

    def reset(self, task, rng):
        super().reset(task, rng)
        self.state = "list"
        self.candidates: list[str] = []
        self.read_sections: dict[str, str] = {}
        self.years = sorted(int(y) for y in re.findall(r"\b((?:19|20)\d{2})\b", task))

    # ------------------------------------------------------------------

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        if self.state == "list":
            self.state = "rank"
            return "import json\nfiles = list_files()\nprint(json.dumps(files))\n"
        if self.state == "rank":
            self._rank(task, trace)
            self.state = "reading"
            self._cursor = 0
        if self.state == "reading":
            if self._cursor < len(self.candidates):
                batch = self.candidates[self._cursor : self._cursor + self.batch_size]
                self._cursor += len(batch)
                return read_batch_code(batch)
            self.state = "analyze"
        if self.state == "analyze":
            return self._analyze_or_second_pass(trace)
        if self.state == "second_pass_analyze":
            return self._final_from_sections(trace, allow_cross_file=True)
        return None

    # ------------------------------------------------------------------

    def _rank(self, task: str, trace: AgentTrace) -> None:
        files = json.loads(trace.last_observation())
        self.all_files = files
        keywords = self._naive_keywords(task, files)
        # The second-pass search phrase is even shorter: just the leading
        # statistic words ("identity theft"), as a hurried searcher types.
        self._stat_tokens = [kw for kw in keywords if not kw.isdigit()][:2]
        scored: list[tuple[int, str]] = []
        for filename in files:
            name_tokens = filename_tokens(filename)
            scored.append((sum(1 for kw in keywords if kw in name_tokens), filename))
        best = max(score for score, _ in scored) if scored else 0
        top = [name for score, name in scored if score == best]
        runner_up = [name for score, name in scored if score == best - 1]
        self.rng.shuffle(top)
        self.rng.shuffle(runner_up)
        self.candidates = (top + runner_up)[: self.n_candidates]

    def _naive_keywords(self, task: str, files: list[str]) -> list[str]:
        """First few task tokens that actually appear in some filename.

        Truncating the keyword list is the "shortcut": the agent anchors on
        the first stat it cares about and drops later qualifiers (here,
        typically the second year).
        """
        file_tokens = set()
        for filename in files:
            file_tokens.update(filename_tokens(filename))
        seen: list[str] = []
        for token in tokenize(task):
            if token in STOPWORDS or len(token) < 3:
                continue
            if token in file_tokens and token not in seen:
                seen.append(token)
        return seen[:4]

    def _collect_sections(self, trace: AgentTrace) -> None:
        for observation in trace.observations():
            self.read_sections.update(split_file_sections(observation))

    def _analyze_or_second_pass(self, trace: AgentTrace) -> str:
        self._collect_sections(trace)
        code = self._final_from_sections(trace, allow_cross_file=False)
        if code is not None:
            return code
        # No single file gave both years: search filenames for the earlier
        # year, prefer ones that also name the statistic, and read one.
        early = str(min(self.years)) if self.years else "2001"
        with_year = [
            name
            for name in getattr(self, "all_files", [])
            if early in name and name not in self.read_sections
        ]
        if with_year:
            # Rank by overlap with the statistic words used during ranking.
            stat_tokens = set(getattr(self, "_stat_tokens", []))
            scored = [
                (sum(1 for token in stat_tokens if token in filename_tokens(name)), name)
                for name in with_year
            ]
            best = max(score for score, _ in scored)
            top = sorted(name for score, name in scored if score == best)
            choice = self.rng.choice(top)
            self.state = "second_pass_analyze"
            return read_batch_code([choice], max_chars=3000)
        self.state = "second_pass_analyze"
        return "print('no additional candidate files found')\n"

    def _final_from_sections(self, trace: AgentTrace, allow_cross_file: bool) -> str | None:
        self._collect_sections(trace)
        if len(self.years) < 2:
            return "final_answer(None)\n"
        early, late = self.years[0], self.years[-1]
        for filename, text in self.read_sections.items():
            value_early = find_year_value(text, early)
            value_late = find_year_value(text, late)
            if value_early and value_late:
                return (
                    f"v_early = {value_early!r}\n"
                    f"v_late = {value_late!r}\n"
                    f"final_answer({{'ratio': v_late / v_early, "
                    f"'source': {filename!r}}})\n"
                )
        if not allow_cross_file:
            return None
        # Premature fallback: combine values from different files.
        value_early = value_late = None
        source_early = source_late = None
        for filename, text in self.read_sections.items():
            if value_early is None:
                value_early = find_year_value(text, early)
                source_early = filename
            if value_late is None:
                value_late = find_year_value(text, late)
                source_late = filename
        if value_early and value_late:
            return (
                f"final_answer({{'ratio': {value_late!r} / {value_early!r}, "
                f"'source': {source_late!r} + ' & ' + {source_early!r}}})\n"
            )
        return "final_answer(None)\n"


class EnronCodeAgentPolicy(AgentPolicy):
    """Naive agent for "return all emails matching <predicates>" tasks.

    Greps for deal keywords with a regex (cheap, high-recall candidate
    generation), then manually reads a bounded number of candidates and
    returns only those it personally verified — high precision, low recall.
    """

    #: Words whose presence marks a forwarded/news email during "reading".
    FORWARD_MARKERS = ("forwarded message", "reports that", "article", "fw:")

    #: Business cues whose presence convinces the reader it is firsthand.
    BUSINESS_CUES = (
        "transaction", "term sheet", "counterparty", "hedge", "restructuring",
        "valuation", "collateral", "unwind", "mark-to-market", "funding schedule",
    )

    def __init__(self, diligence: int = 42, batch_size: int = 8, mistake_rate: float = 0.08) -> None:
        self.diligence = diligence
        self.batch_size = batch_size
        self.mistake_rate = mistake_rate

    def reset(self, task, rng):
        super().reset(task, rng)
        self.state = "grep"
        self.to_read: list[str] = []
        self.included: list[str] = []

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        if self.state == "grep":
            self.state = "select"
            pattern = "|".join(self._deal_keywords(task))
            return (
                "import json, re\n"
                "files = list_files()\n"
                "hits = []\n"
                f"pattern = re.compile({pattern!r}, re.IGNORECASE)\n"
                "for f in files:\n"
                "    if pattern.search(read_file(f)):\n"
                "        hits.append(f)\n"
                "print(json.dumps(hits))\n"
            )
        if self.state == "select":
            hits = json.loads(trace.last_observation())
            self.rng.shuffle(hits)
            self.to_read = hits[: self.diligence]
            self.state = "reading"
            self.read_cursor = 0
        if self.state == "reading":
            self._verify_from(trace)
            if self.read_cursor < len(self.to_read):
                batch = self.to_read[self.read_cursor : self.read_cursor + self.batch_size]
                self.read_cursor += len(batch)
                return read_batch_code(batch, max_chars=500)
            self.state = "final"
            return (
                f"verified = {json.dumps(sorted(self.included))}\n"
                "final_answer(verified)\n"
            )
        return None

    def _deal_keywords(self, task: str) -> list[str]:
        """Pull candidate deal names from the task's parenthetical."""
        match = re.search(r"e\.g\.,([^)]*)\)", task)
        if match:
            names = [name.strip().lower() for name in match.group(1).split(",")]
            return [name for name in names if name]
        # Fall back to capitalized mid-sentence words.
        names = re.findall(r"(?<!^)(?<!\. )\b([A-Z][a-z]{3,})\b", task)
        return [name.lower() for name in names] or ["transaction"]

    def _verify_from(self, trace: AgentTrace) -> None:
        """Manually "read" the last batch and keep plausible emails."""
        if not trace.steps:
            return
        sections = split_file_sections(trace.steps[-1].observation)
        for filename, text in sections.items():
            lowered = text.lower()
            is_forwarded = any(marker in lowered for marker in self.FORWARD_MARKERS)
            has_business_cue = any(cue in lowered for cue in self.BUSINESS_CUES)
            include = has_business_cue and not is_forwarded
            if self.rng.chance(self.mistake_rate):
                include = not include
            if include:
                self.included.append(filename)
