"""The ``CodeAgent+`` policy: semantic operators as tools, used naively.

This reproduces the paper's second baseline: an agent that *can* invoke
semantic filters and maps, which fixes the recall problem (every record is
read by an LLM), but uses them inefficiently — it maps every record before
filtering and runs each filter over the full record set "without checking
the output of the first semantic filter before executing the subsequent
one(s)."
"""

from __future__ import annotations

import json

from repro.agents.policies.base import ScriptedPolicy
from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentTrace


class SemanticToolsCodeAgentPolicy(ScriptedPolicy):
    """Scripted CodeAgent+ behaviour.

    Parameters
    ----------
    filters:
        Natural-language filter instructions, applied **each over the full
        dataset** (the observed inefficiency).
    maps:
        ``(output_name, instruction)`` extraction pairs, applied over the
        full dataset *before* any filtering (the other inefficiency).
    """

    def __init__(
        self,
        filters: list[str],
        maps: list[tuple[str, str]],
        peek_files: int = 2,
    ) -> None:
        if not filters:
            raise ValueError("CodeAgent+ policy needs at least one filter instruction")
        self.filters = list(filters)
        self.maps = list(maps)
        self.peek_files = peek_files

    def step_0(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str:
        return (
            "import json\n"
            "files = list_files()\n"
            "print(len(files), 'files')\n"
            f"for f in files[:{self.peek_files}]:\n"
            "    print('----', f)\n"
            "    print(read_file(f)[:600])\n"
        )

    def step_1(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str:
        lines = ["maps = {}"]
        for name, instruction in self.maps:
            lines.append(f"maps[{name!r}] = sem_map({instruction!r})")
        lines.append("print('extracted fields:', list(maps))")
        return "\n".join(lines) + "\n"

    def step_2(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str:
        return (
            f"matches_0 = sem_filter({self.filters[0]!r})\n"
            "print(len(matches_0), 'matches for filter 0')\n"
        )

    def step_3(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str:
        if len(self.filters) < 2:
            return self._final_code(n_filters=1)
        # Full scan again -- not restricted to matches_0.
        return (
            f"matches_1 = sem_filter({self.filters[1]!r})\n"
            "print(len(matches_1), 'matches for filter 1')\n"
        )

    def step_4(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str:
        return self._final_code(n_filters=min(2, len(self.filters)))

    def _final_code(self, n_filters: int) -> str:
        if n_filters == 1:
            keep_expr = "matches_0"
        else:
            keep_expr = "[k for k in matches_0 if k in set(matches_1)]"
        map_items = ", ".join(
            f"{name!r}: maps[{name!r}].get(k)" for name, _ in self.maps
        )
        record_expr = "{'key': k" + (", " + map_items if map_items else "") + "}"
        return (
            f"keep = {keep_expr}\n"
            f"final_answer([{record_expr} for k in keep])\n"
        )
