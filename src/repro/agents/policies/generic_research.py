"""A generic keyword-research policy for arbitrary file corpora.

The Kramabench/Enron policies in :mod:`.deep_research` are scripted to
their workloads (as the paper's case studies are); this policy is the
corpus-agnostic member of the family, usable as a naive Deep-Research
baseline on any :class:`~repro.data.corpus.FileCorpus`:

1. grep every file for the task's salient keywords (free Python);
2. read a bounded number of hits (diligence);
3. return the hits it verified, or — for question-shaped tasks — the best
   snippet it found.

It inherits the failure modes the paper attributes to this agent family:
purely lexical candidate generation (misses paraphrases) and bounded
reading (recall decays with corpus size).
"""

from __future__ import annotations

import json
import re

from repro.agents.policies.base import AgentPolicy
from repro.agents.policies.deep_research import read_batch_code, split_file_sections
from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentTrace
from repro.utils.text import STOPWORDS, extract_keywords

#: Verbs/fillers that carry no search signal in analytics tasks.
_TASK_NOISE = frozenset(
    """
    return find list show give compute calculate extract all every which
    that contain contains containing mention mentions mentioning file files
    record records email emails listing listings document documents year
    number
    """.split()
)

_QUESTION_RE = re.compile(r"^\s*(what|which|who|where|when|how)\b", re.IGNORECASE)


def task_keywords(task: str, limit: int = 6) -> list[str]:
    """Salient search keywords for ``task`` (content words, noise removed)."""
    keywords = [
        keyword
        for keyword in extract_keywords(task, limit=24)
        if keyword not in _TASK_NOISE and keyword not in STOPWORDS
    ]
    return keywords[:limit]


class GenericResearchPolicy(AgentPolicy):
    """Grep-read-verify over any file corpus."""

    def __init__(
        self,
        diligence: int = 20,
        batch_size: int = 10,
        min_keyword_hits: int = 1,
    ) -> None:
        self.diligence = diligence
        self.batch_size = batch_size
        self.min_keyword_hits = min_keyword_hits

    def reset(self, task, rng):
        super().reset(task, rng)
        self.state = "grep"
        self.keywords = task_keywords(task)
        self.is_question = bool(_QUESTION_RE.match(task))
        self.included: list[str] = []
        self.best_snippet: tuple[int, str, str] | None = None
        self.to_read: list[str] = []
        self.read_cursor = 0

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        if self.state == "grep":
            self.state = "select"
            pattern = "|".join(re.escape(keyword) for keyword in self.keywords) or "."
            return (
                "import json, re\n"
                f"pattern = re.compile({pattern!r}, re.IGNORECASE)\n"
                "hits = [f for f in list_files() if pattern.search(read_file(f))]\n"
                "print(json.dumps(hits))\n"
            )
        if self.state == "select":
            hits = json.loads(trace.last_observation())
            self.rng.shuffle(hits)
            self.to_read = hits[: self.diligence]
            self.state = "reading"
        if self.state == "reading":
            self._verify_from(trace)
            if self.read_cursor < len(self.to_read):
                batch = self.to_read[self.read_cursor : self.read_cursor + self.batch_size]
                self.read_cursor += len(batch)
                return read_batch_code(batch, max_chars=700)
            self.state = "final"
            return self._final_code()
        return None

    def _verify_from(self, trace: AgentTrace) -> None:
        if not trace.steps:
            return
        sections = split_file_sections(trace.steps[-1].observation)
        for filename, text in sections.items():
            lowered = text.lower()
            hits = sum(1 for keyword in self.keywords if keyword in lowered)
            if hits >= self.min_keyword_hits:
                self.included.append(filename)
                if self.is_question:
                    snippet_line = next(
                        (
                            line.strip()
                            for line in text.splitlines()
                            if any(keyword in line.lower() for keyword in self.keywords)
                        ),
                        text[:160],
                    )
                    candidate = (hits, filename, snippet_line)
                    if self.best_snippet is None or candidate[0] > self.best_snippet[0]:
                        self.best_snippet = candidate

    def _final_code(self) -> str:
        if self.is_question and self.best_snippet is not None:
            _, filename, snippet_line = self.best_snippet
            return (
                f"final_answer({{'source': {filename!r}, "
                f"'snippet': {snippet_line!r}}})\n"
            )
        return f"final_answer({json.dumps(sorted(set(self.included)))})\n"
