"""Policy base classes.

A policy decides, at each step, what Python code the agent runs next.  In
the paper an LLM plays this role; offline we use **scripted policies** that
encode the behaviour patterns the paper reports — keyword shortcuts,
premature termination, redundant semantic-tool chains, and (for our
prototype's operators) program synthesis — with seeded noise so trials
vary the way three real runs do.

This is a faithful substitution because the paper's claims are about the
*behavioural* differences between agent archetypes, not about any
particular model's prose: what matters is that the naive agent greps and
under-reads, that CodeAgent+ spends on unoptimized full scans, and that
the compute operator delegates to optimized semantic-operator programs.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentTrace

if TYPE_CHECKING:
    from repro.utils.seeding import SeededRng


class AgentPolicy(abc.ABC):
    """Decides the next code block for an agent episode."""

    def reset(self, task: str, rng: "SeededRng") -> None:
        """Called once at the start of each episode."""
        self.rng = rng

    @abc.abstractmethod
    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        """Return the next Python code block, or None to give up."""


class ScriptedPolicy(AgentPolicy):
    """A policy driven by an internal step counter.

    Subclasses implement ``step_<n>`` methods; the default ``next_code``
    dispatches to them in order and gives up when the sequence runs out.
    """

    def reset(self, task: str, rng: "SeededRng") -> None:
        super().reset(task, rng)
        self._step = 0

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        method = getattr(self, f"step_{self._step}", None)
        self._step += 1
        if method is None:
            return None
        return method(task, trace, tools)
