"""Agent substrate (the SmolAgents-style CodeAgent).

A :class:`CodeAgent` runs a plan-act-observe loop: at each step a *policy*
produces Python code (standing in for the LLM's code generation — see
``policies/``), the sandboxed interpreter executes it with the agent's
tools injected, and the printed output becomes the next observation.  Every
step is priced and timed through the simulated LLM, so agent cost/latency
accounting matches the paper's.
"""

from repro.agents.codeagent import AgentResult, CodeAgent
from repro.agents.policies.base import AgentPolicy
from repro.agents.sandbox import Sandbox, SandboxResult
from repro.agents.tools import Tool, ToolRegistry, tool_from_function
from repro.agents.trace import AgentStep, AgentTrace

__all__ = [
    "AgentPolicy",
    "AgentResult",
    "AgentStep",
    "AgentTrace",
    "CodeAgent",
    "Sandbox",
    "SandboxResult",
    "Tool",
    "ToolRegistry",
    "tool_from_function",
]
