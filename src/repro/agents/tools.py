"""Tools: named callables exposed to agents.

Tools are plain Python functions with a name and a description; the agent
injects them into the sandbox namespace so generated code can call them
directly (the SmolAgents convention).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ToolError


@dataclass
class Tool:
    """A callable exposed to agent code."""

    name: str
    description: str
    fn: Callable[..., Any]
    #: Number of invocations in the current episode (reset per run).
    calls: int = field(default=0, compare=False)
    #: Set by :meth:`ToolRegistry.instrument`; wraps invocations in spans.
    tracer: Any = field(default=None, compare=False, repr=False)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(f"tool:{self.name}", kind="tool-call") as span:
                try:
                    result = self.fn(*args, **kwargs)
                except ToolError:
                    span.attributes["error"] = True
                    raise
                except Exception as exc:
                    span.attributes["error"] = True
                    raise ToolError(f"tool {self.name!r} failed: {exc}") from exc
            return result
        try:
            return self.fn(*args, **kwargs)
        except ToolError:
            raise
        except Exception as exc:
            raise ToolError(f"tool {self.name!r} failed: {exc}") from exc

    def signature(self) -> str:
        try:
            return f"{self.name}{inspect.signature(self.fn)}"
        except (TypeError, ValueError):
            return f"{self.name}(...)"


def tool_from_function(fn: Callable[..., Any], name: str | None = None, description: str | None = None) -> Tool:
    """Wrap ``fn`` as a tool, defaulting name/description from the function."""
    return Tool(
        name=name or fn.__name__,
        description=description or (fn.__doc__ or "").strip().split("\n")[0],
        fn=fn,
    )


class ToolRegistry:
    """An ordered collection of tools with unique names."""

    def __init__(self, tools: list[Tool] | None = None) -> None:
        self._tools: dict[str, Tool] = {}
        for tool in tools or []:
            self.add(tool)

    def add(self, tool: Tool) -> None:
        if tool.name in self._tools:
            raise ToolError(f"duplicate tool name {tool.name!r}")
        self._tools[tool.name] = tool

    def get(self, name: str) -> Tool:
        try:
            return self._tools[name]
        except KeyError:
            raise ToolError(
                f"no tool named {name!r}; available: {sorted(self._tools)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def names(self) -> list[str]:
        return list(self._tools)

    def as_namespace(self) -> dict[str, Callable]:
        """Mapping injected into the sandbox."""
        return dict(self._tools)

    def describe(self) -> str:
        lines = []
        for tool in self._tools.values():
            lines.append(f"- {tool.signature()}: {tool.description}")
        return "\n".join(lines)

    def reset_counters(self) -> None:
        for tool in self._tools.values():
            tool.calls = 0

    def instrument(self, tracer: Any) -> None:
        """Attach ``tracer`` so every tool invocation emits a tool-call span."""
        for tool in self._tools.values():
            tool.tracer = tracer

    def __len__(self) -> int:
        return len(self._tools)
