"""System builders for the paper's evaluation (shared by benches & tests).

Each builder closes over a dataset bundle and returns a callable
``system(trial_seed) -> TrialOutcome``.  Every trial constructs a fresh
simulated LLM seeded by the trial seed, so systems are compared on
identical noise draws for identical (model, task, record) triples while
remaining independently accounted.
"""

from __future__ import annotations

from typing import Callable

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies.deep_research import (
    EnronCodeAgentPolicy,
    KramabenchCodeAgentPolicy,
)
from repro.agents.policies.semantic_tools import SemanticToolsCodeAgentPolicy
from repro.agents.semtools import build_semantic_tools
from repro.bench.harness import TrialOutcome
from repro.bench.metrics import mean_percent_error, set_metrics
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb
from repro.data.datasets.base import DatasetBundle
from repro.data.schemas import Field
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.policies import MaxQuality, OptimizationPolicy

System = Callable[[int], TrialOutcome]


def _fresh_llm(
    bundle: DatasetBundle,
    seed: int,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> SimulatedLLM:
    return SimulatedLLM(
        oracle=SemanticOracle(bundle.registry),
        seed=seed,
        faults=FaultInjector(fault_config, seed=seed) if fault_config else None,
        retry=retry_policy,
    )


# ---------------------------------------------------------------------------
# Table 1 systems (Kramabench legal-easy-3)
# ---------------------------------------------------------------------------


def kramabench_semops_system(
    bundle: DatasetBundle,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
    on_failure: str = "skip",
) -> System:
    """The handcrafted Palimpzest program: filter, filter, map-ratio.

    Iterator semantics force it to process every file; when a semantic
    filter admits an errant file the program emits a second (wrong) ratio,
    and per the paper's protocol the trial's error is the mean percent
    error over all returned ratios.
    """
    truth = bundle.ground_truth["ratio"]

    def system(seed: int) -> TrialOutcome:
        llm = _fresh_llm(bundle, seed, fault_config, retry_policy)
        dataset = (
            Dataset.from_source(bundle.source())
            .sem_filter(kb.FILTER_MENTIONS)
            .sem_filter(kb.FILTER_STATS_BOTH)
            .sem_map(Field("ratio", object, "ratio of identity theft reports"), kb.MAP_RATIO)
        )
        result = dataset.run(
            QueryProcessorConfig(
                llm=llm, policy=MaxQuality(), seed=seed, on_failure=on_failure
            )
        )
        ratios = [
            float(value)
            for value in result.field_values("ratio")
            if isinstance(value, (int, float))
        ]
        return TrialOutcome(
            quality={"pct_err": mean_percent_error(ratios or [None], truth)},
            cost_usd=llm.tracker.total().cost_usd,
            time_s=llm.clock.elapsed,
            detail={
                "ratios": ratios,
                "n_records": len(result.records),
                "retried_calls": result.retried_calls,
                "failed_records": result.failed_records,
            },
        )

    return system


def kramabench_codeagent_system(
    bundle: DatasetBundle,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> System:
    """The naive Deep-Research CodeAgent with file tools."""
    truth = bundle.ground_truth["ratio"]

    def system(seed: int) -> TrialOutcome:
        llm = _fresh_llm(bundle, seed, fault_config, retry_policy)
        agent = CodeAgent(
            llm,
            build_file_tools(bundle.corpus),
            KramabenchCodeAgentPolicy(),
            seed=seed,
            name="codeagent",
        )
        result = agent.run(kb.QUERY_RATIO)
        ratio = result.answer.get("ratio") if isinstance(result.answer, dict) else None
        return TrialOutcome(
            quality={"pct_err": mean_percent_error([ratio], truth)},
            cost_usd=result.cost_usd,
            time_s=result.time_s,
            detail={
                "answer": result.answer,
                "steps": result.steps_used,
                "retried_calls": llm.tracker.failed_calls(),
                "failed_records": 0,
                "llm_failures": result.llm_failures,
                "aborted": result.aborted,
            },
        )

    return system


def kramabench_compute_system(
    bundle: DatasetBundle,
    policy: OptimizationPolicy | None = None,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> System:
    """Our prototype: the query string goes straight into ``compute``."""
    truth = bundle.ground_truth["ratio"]

    def system(seed: int) -> TrialOutcome:
        runtime = AnalyticsRuntime.for_bundle(
            bundle,
            seed=seed,
            policy=policy,
            fault_config=fault_config,
            retry_policy=retry_policy,
        )
        context = runtime.make_context(bundle)
        result = runtime.compute(context, kb.QUERY_RATIO)
        ratio = result.answer.get("ratio") if isinstance(result.answer, dict) else None
        return TrialOutcome(
            quality={"pct_err": mean_percent_error([ratio], truth)},
            cost_usd=result.cost_usd,
            time_s=result.time_s,
            detail={
                "answer": result.answer,
                "steps": result.agent.steps_used,
                "retried_calls": runtime.llm.tracker.failed_calls(),
                "failed_records": getattr(
                    runtime.last_program_result, "failed_records", 0
                ),
            },
        )

    return system


# ---------------------------------------------------------------------------
# Table 2 systems (Enron email filter)
# ---------------------------------------------------------------------------


def _enron_quality(bundle: DatasetBundle, returned_filenames) -> dict[str, float]:
    gold = bundle.ground_truth["relevant_filenames"]
    metrics = set_metrics(gold, returned_filenames)
    return {"f1": metrics.f1, "recall": metrics.recall, "precision": metrics.precision}


def enron_codeagent_system(
    bundle: DatasetBundle,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> System:
    """The naive CodeAgent: regex grep + bounded manual verification."""

    def system(seed: int) -> TrialOutcome:
        llm = _fresh_llm(bundle, seed, fault_config, retry_policy)
        agent = CodeAgent(
            llm,
            build_file_tools(bundle.corpus),
            EnronCodeAgentPolicy(),
            seed=seed,
            name="codeagent",
        )
        result = agent.run(en.QUERY_RELEVANT)
        returned = list(result.answer or [])
        return TrialOutcome(
            quality=_enron_quality(bundle, returned),
            cost_usd=result.cost_usd,
            time_s=result.time_s,
            detail={
                "returned": returned,
                "steps": result.steps_used,
                "retried_calls": llm.tracker.failed_calls(),
                "failed_records": 0,
            },
        )

    return system


def enron_codeagent_plus_system(
    bundle: DatasetBundle,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> System:
    """CodeAgent+ = CodeAgent with (unoptimized) semantic-operator tools."""

    def system(seed: int) -> TrialOutcome:
        llm = _fresh_llm(bundle, seed, fault_config, retry_policy)
        tools = build_file_tools(bundle.corpus)
        semantic = build_semantic_tools(bundle.records(), llm)
        for name in semantic.names():
            tools.add(semantic.get(name))
        policy = SemanticToolsCodeAgentPolicy(
            filters=[en.FILTER_MENTIONS, en.FILTER_FIRSTHAND],
            maps=[
                ("summary", en.MAP_SUMMARY),
                ("sender", en.MAP_SENDER),
                ("subject", en.MAP_SUBJECT),
            ],
        )
        agent = CodeAgent(llm, tools, policy, seed=seed, name="codeagent-plus", max_steps=8)
        result = agent.run(en.QUERY_RELEVANT)
        returned = [
            row.get("key") for row in (result.answer or []) if isinstance(row, dict)
        ]
        return TrialOutcome(
            quality=_enron_quality(bundle, returned),
            cost_usd=result.cost_usd,
            time_s=result.time_s,
            detail={
                "returned": returned,
                "steps": result.steps_used,
                "retried_calls": llm.tracker.failed_calls(),
                "failed_records": 0,
            },
        )

    return system


def enron_compute_system(
    bundle: DatasetBundle,
    policy: OptimizationPolicy | None = None,
    fault_config: FaultConfig | None = None,
    retry_policy: RetryPolicy | None = None,
) -> System:
    """Our prototype: ``compute`` writes one optimized PZ program."""

    def system(seed: int) -> TrialOutcome:
        runtime = AnalyticsRuntime.for_bundle(
            bundle,
            seed=seed,
            policy=policy,
            fault_config=fault_config,
            retry_policy=retry_policy,
        )
        context = runtime.make_context(bundle)
        result = runtime.compute(context, en.QUERY_RELEVANT)
        returned = [
            row.get("filename")
            for row in (result.answer or [])
            if isinstance(row, dict)
        ]
        return TrialOutcome(
            quality=_enron_quality(bundle, returned),
            cost_usd=result.cost_usd,
            time_s=result.time_s,
            detail={
                "returned": returned,
                "steps": result.agent.steps_used,
                "retried_calls": runtime.llm.tracker.failed_calls(),
                "failed_records": getattr(
                    runtime.last_program_result, "failed_records", 0
                ),
            },
        )

    return system
