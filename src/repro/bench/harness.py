"""Trial running and paper-vs-measured reporting.

Each benchmark evaluates several *systems* on one query.  A system is a
callable ``(trial_seed) -> TrialOutcome``; the harness runs it for N trials
(the paper uses three), averages, and renders rows shaped like the paper's
tables with the paper's numbers alongside for comparison.
"""

from __future__ import annotations

import re
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.utils.formatting import format_table
from repro.utils.seeding import derive_seed


@dataclass
class TrialOutcome:
    """One trial of one system: quality numbers plus accounting."""

    #: Metric name -> value (e.g. {"pct_err": 17.0} or {"f1": 0.98, ...}).
    quality: dict[str, float]
    cost_usd: float
    time_s: float
    #: Free-form details kept for debugging (not aggregated).
    detail: dict = field(default_factory=dict)


@dataclass
class SystemSummary:
    """Averages over a system's trials."""

    name: str
    quality: dict[str, float]
    cost_usd: float
    time_s: float
    n_trials: int
    outcomes: list[TrialOutcome] = field(default_factory=list)


def run_trials(
    name: str,
    system: Callable[[int], TrialOutcome],
    n_trials: int = 3,
    base_seed: int = 0,
    trace_dir: str | Path | None = None,
) -> SystemSummary:
    """Run ``system`` for ``n_trials`` deterministic trials and average.

    With ``trace_dir`` set, each trial runs under a fresh default tracer and
    metrics registry (adopted by any LLM the system constructs) and its
    Chrome trace is written to ``<trace_dir>/<system>-trial<N>.trace.json``.
    """
    outcomes = []
    for trial in range(n_trials):
        seed = derive_seed(base_seed, name, trial)
        if trace_dir is None:
            outcomes.append(system(seed))
            continue
        outcomes.append(_traced_trial(name, system, seed, trial, Path(trace_dir)))
    return summarize(name, outcomes)


def _traced_trial(
    name: str,
    system: Callable[[int], TrialOutcome],
    seed: int,
    trial: int,
    trace_dir: Path,
) -> TrialOutcome:
    from repro import obs

    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    prev_tracer = obs.set_default_tracer(tracer)
    prev_metrics = obs.set_default_metrics(metrics)
    try:
        with tracer.span(f"trial:{name}#{trial}", kind="trial", seed=seed):
            outcome = system(seed)
    finally:
        obs.set_default_tracer(prev_tracer)
        obs.set_default_metrics(prev_metrics)
    trace_dir.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_").lower()
    obs.write_chrome_trace(
        trace_dir / f"{slug}-trial{trial}.trace.json", tracer, metrics=metrics
    )
    return outcome


def summarize(name: str, outcomes: Sequence[TrialOutcome]) -> SystemSummary:
    if not outcomes:
        raise ValueError(f"system {name!r} produced no trial outcomes")
    metric_names = list(outcomes[0].quality)
    quality = {
        metric: statistics.mean(outcome.quality[metric] for outcome in outcomes)
        for metric in metric_names
    }
    return SystemSummary(
        name=name,
        quality=quality,
        cost_usd=statistics.mean(outcome.cost_usd for outcome in outcomes),
        time_s=statistics.mean(outcome.time_s for outcome in outcomes),
        n_trials=len(outcomes),
        outcomes=list(outcomes),
    )


def render_report(
    title: str,
    summaries: Sequence[SystemSummary],
    metric_columns: Sequence[tuple[str, str, Callable[[float], str]]],
    paper_rows: dict[str, Sequence[str]] | None = None,
) -> str:
    """Render a paper-style table with measured (and paper) numbers.

    ``metric_columns`` is a sequence of ``(header, metric_key, formatter)``.
    ``paper_rows`` maps system name to that system's row in the paper, in
    the same column order (strings, rendered as-is).
    """
    headers = ["System"] + [header for header, _, _ in metric_columns] + [
        "Cost ($)",
        "Time (s)",
        "Retried",
        "Failed",
    ]
    rows: list[list[str]] = []
    for summary in summaries:
        row = [summary.name]
        for _, key, formatter in metric_columns:
            row.append(formatter(summary.quality[key]))
        row.append(f"{summary.cost_usd:.2f}")
        row.append(f"{summary.time_s:.1f}")
        row.append(_mean_detail(summary, "retried_calls"))
        row.append(_mean_detail(summary, "failed_records"))
        rows.append(row)
        if paper_rows and summary.name in paper_rows:
            # The paper predates the fault-tolerance columns; pad its rows.
            cells = [str(cell) for cell in paper_rows[summary.name]]
            cells += [""] * (len(headers) - 1 - len(cells))
            rows.append(["  (paper)"] + cells)
    return format_table(headers, rows, title=title)


def _mean_detail(summary: SystemSummary, key: str) -> str:
    """Mean of a numeric per-trial detail field, or ``-`` when absent."""
    values = [
        outcome.detail[key]
        for outcome in summary.outcomes
        if isinstance(outcome.detail.get(key), (int, float))
    ]
    if not values:
        return "-"
    return f"{statistics.mean(values):.1f}"
