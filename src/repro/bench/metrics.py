"""Quality metrics used by the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class SetMetrics:
    """Precision/recall/F1 of a returned set against a gold set."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    returned: int
    gold: int


def set_metrics(gold: Iterable, returned: Iterable) -> SetMetrics:
    """Score ``returned`` against ``gold`` (both coerced to sets)."""
    gold_set = set(gold)
    returned_set = set(returned)
    true_positives = len(gold_set & returned_set)
    precision = true_positives / len(returned_set) if returned_set else 0.0
    recall = true_positives / len(gold_set) if gold_set else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return SetMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        returned=len(returned_set),
        gold=len(gold_set),
    )


def percent_error(value: float | None, truth: float) -> float:
    """Absolute percent error; a missing answer scores 100%.

    The paper's Table 1 averages percent errors when a system returns
    multiple ratios — use :func:`mean_percent_error` for that case.
    """
    if truth == 0:
        raise ValueError("truth must be nonzero for percent error")
    if value is None:
        return 100.0
    return abs(value - truth) / abs(truth) * 100.0


def mean_percent_error(values: Iterable[float | None], truth: float) -> float:
    """Average percent error over all returned values (Table 1 protocol)."""
    values = list(values)
    if not values:
        return 100.0
    return sum(percent_error(value, truth) for value in values) / len(values)
