"""Benchmark harness: metrics, trial running, and report formatting."""

from repro.bench.harness import SystemSummary, TrialOutcome, run_trials, summarize
from repro.bench.metrics import SetMetrics, percent_error, set_metrics

__all__ = [
    "SetMetrics",
    "SystemSummary",
    "TrialOutcome",
    "percent_error",
    "run_trials",
    "set_metrics",
    "summarize",
]
