"""Paper-parity alias module: ``import repro.pz as pz``.

The paper's Figure 2 writes programs in Palimpzest style::

    import repro.pz as pz

    ctx = pz.Context(records, schema, desc="...")
    ctx2 = pz.search(ctx, "look for information on identity thefts",
                     runtime=runtime)
    out = pz.compute(ctx2.output_context,
                     "compute the number of thefts in 2024",
                     runtime=runtime)

This module re-exports the runtime surface under the names the paper uses,
so its listings run as written (modulo the explicit ``runtime`` argument —
our runtime object carries what Palimpzest keeps in global state).
"""

from repro.core.context import Context
from repro.core.operators import ComputeResult, SearchResult, compute, search
from repro.core.runtime import AnalyticsRuntime
from repro.data.schemas import Field, Schema
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.policies import Balanced, MaxQuality, MinCost

__all__ = [
    "AnalyticsRuntime",
    "Balanced",
    "ComputeResult",
    "Context",
    "Dataset",
    "Field",
    "MaxQuality",
    "MinCost",
    "QueryProcessorConfig",
    "Schema",
    "SearchResult",
    "compute",
    "search",
]
