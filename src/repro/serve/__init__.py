"""Multi-tenant serving runtime: admission control, cross-query batching.

Layers an async-style query scheduler on the virtual clock so many tenant
sessions share one :class:`~repro.core.runtime.AnalyticsRuntime`: typed
admission control (budgets, rate windows), stride-fair slot scheduling,
cross-query batching of LLM generate / embed calls into shared provider
waves, and per-tenant isolation + accounting on the shared caches.
"""

from repro.serve.runtime import MAX_WAVE_SPANS, ServingRuntime, TenantSpec, TenantState
from repro.serve.scheduler import (
    CrossQueryScheduler,
    QueryJob,
    ServingReport,
    WaveRecord,
)
from repro.serve.timeline import CallRequest, CallStep, CallTimeline
from repro.serve.workload import (
    Arrival,
    build_arrivals,
    submit_workload,
    tenant_names,
    zipf_rates,
)

__all__ = [
    "MAX_WAVE_SPANS",
    "ServingRuntime",
    "TenantSpec",
    "TenantState",
    "CrossQueryScheduler",
    "QueryJob",
    "ServingReport",
    "WaveRecord",
    "CallRequest",
    "CallStep",
    "CallTimeline",
    "Arrival",
    "build_arrivals",
    "submit_workload",
    "tenant_names",
    "zipf_rates",
]
