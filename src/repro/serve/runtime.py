"""Multi-tenant serving on one shared :class:`~repro.core.runtime.AnalyticsRuntime`.

A :class:`ServingRuntime` admits queries from many tenant sessions into a
single shared substrate (LLM + generation cache + materialization store).
The lifecycle per drain window:

1. :meth:`submit` — admission control (typed, *schedule-independent*
   rejections: per-tenant budget and arrival-rate quotas), then eager body
   execution on the shared runtime with a :class:`~repro.serve.timeline.CallTimeline`
   sink installed.  No virtual time passes; spend, cache, and
   materialization deltas are attributed exactly to the submitting tenant
   because execution is serialized in admission order.
2. :meth:`drain` — replay all admitted timelines through the
   :class:`~repro.serve.scheduler.CrossQueryScheduler` (batched shared
   waves, or the serial baseline), advance the shared clock by the
   schedule makespan, emit serving spans and per-tenant metrics.

Isolation: each tenant session runs with ``cache_scope`` set on the LLM
(tenant-namespaced generation-cache keys) and ``materialization_scope`` on
the query config (tenant-namespaced sub-plan fingerprints), so tenants
never observe — or get billed against — each other's cached work, while
still sharing one bounded store.

Admission decisions depend only on arrival times and previously admitted
spend, never on the schedule, so the admitted set — and therefore every
record — is bit-identical between batched and serial modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import QuotaExceededError, ServingError
from repro.sem.config import QueryProcessorConfig
from repro.serve.scheduler import CrossQueryScheduler, QueryJob, ServingReport
from repro.serve.timeline import CallTimeline

if TYPE_CHECKING:
    from repro.core.runtime import AnalyticsRuntime
    from repro.sem.dataset import Dataset

#: Serving spans beyond this count are elided from the trace (wave spans
#: are O(calls); the first screenful is what EXPLAIN-style tooling reads).
MAX_WAVE_SPANS = 200


@dataclass(frozen=True)
class TenantSpec:
    """Admission-control contract for one tenant session."""

    name: str
    #: Stride-scheduling share (2.0 gets twice the slots of 1.0 under load).
    weight: float = 1.0
    #: Cumulative raw-spend quota; admissions stop once reached (None = ∞).
    budget_usd: float | None = None
    #: Max admitted queries per sliding ``window_s`` of arrival time
    #: (None = unlimited).
    max_per_window: int | None = None
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")


@dataclass
class TenantState:
    """Mutable per-tenant accounting across the serving runtime's lifetime."""

    spec: TenantSpec
    admitted: int = 0
    rejected: int = 0
    spent_usd: float = 0.0
    rebate_usd: float = 0.0
    #: Arrival times of admitted queries (rate-window checks).
    arrivals: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.arrivals = []


class ServingRuntime:
    """Admission + cross-query scheduling over one shared runtime."""

    def __init__(
        self,
        runtime: "AnalyticsRuntime",
        tenants: Sequence[TenantSpec] | None = None,
        provider_width: int = 16,
        batching: bool = True,
        parallelism: int = 4,
        optimize: bool = False,
        replan: bool = False,
        shards: int = 1,
        partitioner: str = "hash",
    ) -> None:
        self.runtime = runtime
        self.llm = runtime.llm
        self.provider_width = provider_width
        self.batching = batching
        self.parallelism = parallelism
        self.optimize = optimize
        #: Adaptive mid-query re-planning for served queries.  Statistics
        #: are tenant-scoped either way: one tenant's observed
        #: selectivities never steer another tenant's plans.
        self.replan = replan
        #: Simulated scale-out workers each served query spreads across
        #: (see :mod:`repro.sem.shard`).  Shard time is routed through the
        #: serving sink as parallel waves, so per-tenant attribution and
        #: the shared-clock invariant survive; sharded queries do forfeit
        #: overlap rebates (their call notes are charged as whole waves).
        self.shards = shards
        self.partitioner = partitioner
        self.tenants: dict[str, TenantState] = {}
        for spec in tenants or ():
            self.tenants[spec.name] = TenantState(spec=spec)
        self._pending: list[QueryJob] = []
        self._next_query_id = 0
        self.reports: list[ServingReport] = []
        self._standing = None

    # -- admission ------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(spec=TenantSpec(name=name))
            self.tenants[name] = state
        return state

    def _admit(self, state: TenantState, arrival_s: float) -> None:
        """Raise :class:`QuotaExceededError` if admission control says no.

        Checks depend only on arrival times and *previously admitted* spend
        — never on the schedule — so serial and batched modes admit the
        identical query set.
        """
        spec = state.spec
        name = spec.name
        if spec.budget_usd is not None and state.spent_usd >= spec.budget_usd:
            state.rejected += 1
            self._count(f"serving.tenant.{name}.rejected")
            raise QuotaExceededError(
                f"tenant {name!r} exhausted its budget "
                f"(${state.spent_usd:.4f} of ${spec.budget_usd:.4f})",
                tenant=name,
                reason="budget",
            )
        if spec.max_per_window is not None:
            window_start = arrival_s - spec.window_s
            recent = sum(1 for t in state.arrivals if t > window_start)
            if recent >= spec.max_per_window:
                state.rejected += 1
                self._count(f"serving.tenant.{name}.rejected")
                raise QuotaExceededError(
                    f"tenant {name!r} exceeded {spec.max_per_window} "
                    f"queries per {spec.window_s:.0f}s window",
                    tenant=name,
                    reason="rate",
                )

    # -- submission -----------------------------------------------------

    def submit(
        self,
        tenant: str,
        dataset: "Dataset",
        arrival_s: float = 0.0,
        tag: str = "",
    ) -> QueryJob:
        """Admit and eagerly execute one query for ``tenant``.

        Returns the admitted :class:`QueryJob` (records already computed;
        latency fields are filled by :meth:`drain`).  Raises
        :class:`~repro.errors.QuotaExceededError` on rejection — rejected
        queries never touch the shared substrate.
        """
        state = self.tenant(tenant)
        self._admit(state, arrival_s)

        llm = self.llm
        query_id = self._next_query_id
        self._next_query_id += 1
        tag = tag or f"serve:{tenant}:q{query_id}"
        store = self.runtime.materialization_store
        config = QueryProcessorConfig(
            llm=llm,
            optimize=self.optimize,
            parallelism=self.parallelism,
            seed=self.runtime.seed,
            tag=tag,
            # Barrier mode: the pipelined engine advances the clock itself
            # (cell schedules); serving owns cross-query overlap instead.
            pipeline=False,
            materialization_store=store,
            materialization_scope=tenant,
            stats_store=getattr(self.runtime, "stats_store", None),
            stats_scope=tenant,
            replan=self.replan,
            shards=self.shards,
            partitioner=self.partitioner,
        )

        timeline = CallTimeline()
        checkpoint = llm.tracker.checkpoint()
        clock_before = llm.clock.elapsed
        cache_hits = llm.cache.hits
        cache_misses = llm.cache.misses
        mat_hits = store.hits
        llm.serve_sink = timeline
        llm.cache_scope = tenant
        try:
            result = dataset.run(config)
        finally:
            llm.serve_sink = None
            llm.cache_scope = ""
        if llm.clock.elapsed != clock_before:
            raise ServingError(
                "serving body execution advanced the shared clock directly; "
                "the call-timeline sink must capture all latency charges"
            )

        usage = llm.tracker.since(checkpoint)
        job = QueryJob(
            tenant=tenant,
            query_id=query_id,
            tag=tag,
            arrival_s=arrival_s,
            timeline=timeline,
            records=result.records,
            fingerprint=result.fingerprint(),
            raw_cost_usd=usage.cost_usd,
            cache_hits=llm.cache.hits - cache_hits,
            cache_misses=llm.cache.misses - cache_misses,
            materialization_hits=store.hits - mat_hits,
        )
        self._pending.append(job)

        state.admitted += 1
        state.spent_usd += job.raw_cost_usd
        state.arrivals.append(arrival_s)
        self._count(f"serving.tenant.{tenant}.queries")
        self._count(f"serving.tenant.{tenant}.cost_usd", job.raw_cost_usd)
        self._count(f"serving.tenant.{tenant}.cache_hits", job.cache_hits)
        self._count(f"serving.tenant.{tenant}.cache_misses", job.cache_misses)
        self._count(
            f"serving.tenant.{tenant}.materialization_hits",
            job.materialization_hits,
        )
        return job

    # -- standing queries -----------------------------------------------

    def standing_manager(self):
        """The lazily built standing-query manager over this serving layer.

        Shares the serving runtime's substrate (clock, tracer, metrics,
        materialization store, statistics store, context manager) so
        standing-query ticks hit the same caches tenants do.
        """
        if self._standing is None:
            from repro.sem.streaming import StandingQueryManager

            runtime = self.runtime
            self._standing = StandingQueryManager(
                clock=self.llm.clock,
                tracer=self.llm.tracer,
                metrics=self.llm.metrics,
                store=runtime.materialization_store,
                stats_store=getattr(runtime, "stats_store", None),
                context_manager=getattr(runtime, "context_manager", None),
            )
        return self._standing

    def register_standing(
        self,
        tenant: str,
        name: str,
        dataset: "Dataset",
        policy=None,
        prime: bool = True,
    ):
        """Register ``dataset`` as a standing query served for ``tenant``.

        Each refresh tick goes through :meth:`submit`, so admission
        control applies (a quota rejection defers the tick, keeping the
        pending delta queued for the next pump) and the tick's calls join
        the pending drain window for cross-query batching.  The query is
        namespaced ``tenant:name``.
        """

        def runner(query, tag):
            job = self.submit(
                tenant, query.dataset, arrival_s=query.clock.elapsed, tag=tag
            )
            return job.records, job.raw_cost_usd, 0.0, None

        return self.standing_manager().register(
            f"{tenant}:{name}",
            dataset,
            policy=policy,
            runner=runner,
            prime=prime,
        )

    def pump_standing(self, now_s: float | None = None):
        """Evaluate standing-query triggers; due ticks submit as tenants."""
        if self._standing is None:
            return []
        return self._standing.pump(now_s)

    # -- scheduling -----------------------------------------------------

    def drain(self) -> ServingReport:
        """Schedule everything admitted since the last drain.

        Advances the shared virtual clock by the schedule makespan, emits
        ``serving-query`` / ``serving-wave`` spans (enabled tracer only)
        and per-tenant latency histograms, and returns the report.
        """
        jobs = self._pending
        self._pending = []
        weights = {
            name: state.spec.weight for name, state in self.tenants.items()
        }
        scheduler = CrossQueryScheduler(
            provider_width=self.provider_width,
            batching=self.batching,
            weights=weights,
        )
        report = scheduler.run(jobs)

        llm = self.llm
        base = llm.clock.elapsed
        tracer = llm.tracer
        if tracer.enabled:
            for job in report.jobs:
                tracer.add_span(
                    job.tag,
                    "serving-query",
                    base + job.arrival_s,
                    base + job.finish_s,
                    track=f"tenant {job.tenant}",
                    tenant=job.tenant,
                    latency_s=round(job.latency_s, 3),
                    cost_usd=round(job.raw_cost_usd, 6),
                    rebate_usd=round(job.rebate_usd, 6),
                    records=len(job.records),
                )
            for index, wave in enumerate(report.waves[:MAX_WAVE_SPANS]):
                tracer.add_span(
                    f"wave {index}",
                    "serving-wave",
                    base + wave.start_s,
                    base + wave.start_s + wave.duration_s,
                    track="serving waves",
                    slots=wave.slots,
                    fill=round(wave.fill, 3),
                    merged_embeds=wave.merged_embeds,
                    rebate_usd=round(wave.rebate_usd, 6),
                )
        llm.clock.advance(report.makespan_s)

        metrics = llm.metrics
        if metrics.enabled:
            metrics.counter("serving.drains").inc()
            metrics.counter("serving.waves").inc(len(report.waves))
            metrics.counter("serving.batched_calls").inc(report.filled_slots)
            metrics.counter("serving.rebate_usd").inc(report.rebate_total_usd())
            for job in report.jobs:
                metrics.histogram("serving.latency_s").observe(job.latency_s)
                metrics.histogram(
                    f"serving.tenant.{job.tenant}.latency_s"
                ).observe(job.latency_s)
        for job in report.jobs:
            self.tenant(job.tenant).rebate_usd += job.rebate_usd

        self.reports.append(report)
        return report

    # -- internals ------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        metrics = self.llm.metrics
        if metrics.enabled and amount:
            metrics.counter(name).inc(amount)
