"""Cross-query scheduling of captured call timelines.

The scheduler replays admitted queries' :class:`~repro.serve.timeline.CallTimeline`
structures on the virtual clock in one of two modes:

- **serial** (the no-batching baseline): queries run first-come-first-served,
  one at a time, each at its own client-side parallelism.  Query latency is
  queue wait plus standalone duration — classic head-of-line blocking.
- **batched** (cross-query batching): a discrete-event loop forms *shared
  provider waves* of up to ``provider_width`` call slots, filled from every
  in-flight query's current step.  Slots are granted by stride scheduling
  (inverse-weight virtual passes), so tenants share capacity proportionally
  to their weights regardless of how many queries each has in flight.

Two provider-level effects make shared waves strictly better than serial
replay, mirroring the batching literature (Sema's cross-request batching,
continuous batching in serving systems):

- **Embedding merges**: embedding calls co-scheduled in one wave collapse
  into a single provider request — one per-call overhead total instead of
  one each (token time is additive).  This is the cross-query
  generalization of ``embed_batch``.
- **Prefix-sharing rebates**: generate calls to the *same model* in the
  same wave share the fixed system-prompt prefill; every call after the
  first in a (wave, model) group is rebated ``SYSTEM_PROMPT_TOKENS`` worth
  of input-token cost.  The raw usage tracker stays truthful — rebates are
  serving-layer billing adjustments, reported separately.

Both modes are pure functions of the admitted job list: no real time, no
randomness.  Bit-identity of per-query records across modes is inherited
from the eager body execution (see :mod:`repro.serve.timeline`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.llm.models import get_model
from repro.llm.simulated import SYSTEM_PROMPT_TOKENS
from repro.serve.timeline import CallRequest, CallTimeline


@dataclass
class QueryJob:
    """One admitted query: executed body + captured call structure."""

    tenant: str
    query_id: int
    tag: str
    arrival_s: float
    timeline: CallTimeline
    #: Output records of the eagerly executed body (bit-identical across
    #: scheduling modes by construction).
    records: list = field(default_factory=list)
    fingerprint: str = ""
    #: Raw substrate spend attributed to this query (tracker diff).
    raw_cost_usd: float = 0.0
    #: Per-tenant shared-cache accounting deltas for this query.
    cache_hits: int = 0
    cache_misses: int = 0
    materialization_hits: int = 0
    #: Filled by the scheduler.
    finish_s: float = 0.0
    latency_s: float = 0.0
    standalone_s: float = 0.0
    rebate_usd: float = 0.0

    def effective_cost_usd(self) -> float:
        return max(0.0, self.raw_cost_usd - self.rebate_usd)

    def slowdown(self) -> float:
        """Latency over standalone duration, with a one-second grace term.

        The grace keeps fully-cached queries (standalone ~ 0s) from turning
        any queueing delay into a near-infinite ratio that would swamp the
        max/min fairness metric.
        """
        return (self.latency_s + 1.0) / (self.standalone_s + 1.0)


@dataclass
class WaveRecord:
    """One shared provider wave (batched mode only)."""

    start_s: float
    duration_s: float
    slots: int
    width: int
    merged_embeds: int = 0
    rebate_usd: float = 0.0

    @property
    def fill(self) -> float:
        return self.slots / self.width if self.width else 0.0


@dataclass
class ServingReport:
    """Schedule outcome for one drain of the serving queue."""

    mode: str
    provider_width: int
    makespan_s: float = 0.0
    jobs: list[QueryJob] = field(default_factory=list)
    waves: list[WaveRecord] = field(default_factory=list)
    #: Slots offered vs. filled across all shared waves (batched mode).
    offered_slots: int = 0
    filled_slots: int = 0

    # -- aggregates -----------------------------------------------------

    def latencies(self) -> list[float]:
        return [job.latency_s for job in self.jobs]

    def latency_p50(self) -> float:
        return percentile(self.latencies(), 50.0)

    def latency_p99(self) -> float:
        return percentile(self.latencies(), 99.0)

    def batch_fill(self) -> float:
        """Fraction of offered wave slots actually filled."""
        if not self.offered_slots:
            return 0.0
        return self.filled_slots / self.offered_slots

    def rebate_total_usd(self) -> float:
        return sum(job.rebate_usd for job in self.jobs)

    def cost_per_query_usd(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.effective_cost_usd() for job in self.jobs) / len(self.jobs)

    def tenant_summary(self) -> dict[str, dict]:
        """Per-tenant aggregates: queries, latency, spend, slowdown."""
        summary: dict[str, dict] = {}
        for job in self.jobs:
            entry = summary.setdefault(
                job.tenant,
                {
                    "queries": 0,
                    "cost_usd": 0.0,
                    "rebate_usd": 0.0,
                    "latencies": [],
                    "slowdowns": [],
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "materialization_hits": 0,
                },
            )
            entry["queries"] += 1
            entry["cost_usd"] += job.raw_cost_usd
            entry["rebate_usd"] += job.rebate_usd
            entry["latencies"].append(job.latency_s)
            entry["slowdowns"].append(job.slowdown())
            entry["cache_hits"] += job.cache_hits
            entry["cache_misses"] += job.cache_misses
            entry["materialization_hits"] += job.materialization_hits
        for entry in summary.values():
            entry["mean_latency_s"] = sum(entry["latencies"]) / entry["queries"]
            entry["mean_slowdown"] = sum(entry["slowdowns"]) / entry["queries"]
        return summary

    def fairness(self) -> float:
        """Max/min ratio of per-tenant mean slowdowns (1.0 = perfectly fair)."""
        slowdowns = [
            entry["mean_slowdown"] for entry in self.tenant_summary().values()
        ]
        if len(slowdowns) < 2:
            return 1.0
        low = min(slowdowns)
        return max(slowdowns) / max(low, 1e-9)

    def render(self, title: str = "SERVING SCHEDULE") -> str:
        lines = [
            f"=== {title} ({self.mode}, width {self.provider_width}) ===",
            f"queries: {len(self.jobs)}   makespan: {self.makespan_s:.1f}s   "
            f"waves: {len(self.waves)}   fill: {self.batch_fill():.2f}",
            f"latency p50/p99: {self.latency_p50():.1f}s / {self.latency_p99():.1f}s   "
            f"$/query: {self.cost_per_query_usd():.4f}   "
            f"rebate: ${self.rebate_total_usd():.4f}   "
            f"fairness (max/min slowdown): {self.fairness():.2f}",
        ]
        header = (
            f"{'tenant':<12} {'queries':>7} {'mean lat':>9} {'slowdown':>9} "
            f"{'$ raw':>9} {'$ rebate':>9} {'cache h/m':>11} {'mat hits':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for tenant, entry in sorted(self.tenant_summary().items()):
            lines.append(
                f"{tenant:<12} {entry['queries']:>7} "
                f"{entry['mean_latency_s']:>8.1f}s {entry['mean_slowdown']:>9.2f} "
                f"{entry['cost_usd']:>9.4f} {entry['rebate_usd']:>9.4f} "
                f"{entry['cache_hits']:>5}/{entry['cache_misses']:<5} "
                f"{entry['materialization_hits']:>8}"
            )
        return "\n".join(lines)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class CrossQueryScheduler:
    """Deterministic discrete-event scheduler over captured timelines."""

    def __init__(
        self,
        provider_width: int = 16,
        batching: bool = True,
        weights: dict[str, float] | None = None,
    ) -> None:
        if provider_width < 1:
            raise ValueError(f"provider_width must be >= 1, got {provider_width}")
        self.provider_width = provider_width
        self.batching = batching
        self.weights = dict(weights or {})

    def run(self, jobs: list[QueryJob]) -> ServingReport:
        for job in jobs:
            job.standalone_s = job.timeline.standalone_duration()
        if self.batching:
            return self._run_batched(jobs)
        return self._run_serial(jobs)

    # -- serial baseline ------------------------------------------------

    def _run_serial(self, jobs: list[QueryJob]) -> ServingReport:
        report = ServingReport(mode="serial", provider_width=self.provider_width)
        now = 0.0
        for job in jobs:  # admission order == arrival order
            start = max(now, job.arrival_s)
            job.finish_s = start + job.standalone_s
            job.latency_s = job.finish_s - job.arrival_s
            now = job.finish_s
            for step in job.timeline.steps:
                step_waves = math.ceil(len(step.calls) / step.width)
                report.offered_slots += step_waves * step.width
                report.filled_slots += len(step.calls)
        report.jobs = list(jobs)
        report.makespan_s = now
        return report

    # -- cross-query batching -------------------------------------------

    def _run_batched(self, jobs: list[QueryJob]) -> ServingReport:
        report = ServingReport(mode="batched", provider_width=self.provider_width)
        report.jobs = list(jobs)
        now = 0.0
        pending = sorted(
            (job for job in jobs), key=lambda job: job.arrival_s
        )
        # Per-job cursor: (step index, calls not yet scheduled in that step).
        cursor: dict[int, tuple[int, list[CallRequest]]] = {}
        active: list[QueryJob] = []
        passes: dict[str, float] = {}

        def admit() -> None:
            nonlocal pending
            while pending and pending[0].arrival_s <= now + 1e-12:
                job = pending.pop(0)
                if not job.timeline.steps:
                    job.finish_s = job.arrival_s
                    job.latency_s = 0.0
                    continue
                cursor[id(job)] = (0, list(job.timeline.steps[0].calls))
                active.append(job)

        admit()
        while active or pending:
            if not active:
                now = pending[0].arrival_s
                admit()
                continue
            # Stride scheduling: refresh passes for currently active tenants
            # (a newly active tenant starts at the active minimum, so idle
            # time never banks into a capacity burst).
            ready_tenants = {job.tenant for job in active}
            floor = min(
                (passes.get(tenant, 0.0) for tenant in ready_tenants),
                default=0.0,
            )
            for tenant in ready_tenants:
                passes[tenant] = max(passes.get(tenant, 0.0), floor)

            queues: dict[str, list[QueryJob]] = {}
            for job in active:  # admission order within each tenant queue
                queues.setdefault(job.tenant, []).append(job)
            taken: dict[int, int] = {}
            selected: list[tuple[QueryJob, CallRequest]] = []
            while len(selected) < self.provider_width:
                candidates = [
                    tenant
                    for tenant, tenant_jobs in queues.items()
                    if any(
                        taken.get(id(job), 0) < len(cursor[id(job)][1])
                        for job in tenant_jobs
                    )
                ]
                if not candidates:
                    break
                tenant = min(candidates, key=lambda t: (passes.get(t, 0.0), t))
                for job in queues[tenant]:
                    count = taken.get(id(job), 0)
                    remaining = cursor[id(job)][1]
                    if count < len(remaining):
                        selected.append((job, remaining[count]))
                        taken[id(job)] = count + 1
                        break
                passes[tenant] = passes.get(tenant, 0.0) + 1.0 / max(
                    self.weights.get(tenant, 1.0), 1e-9
                )

            duration, merged_embeds, rebate = self._wave_outcome(selected)
            report.waves.append(
                WaveRecord(
                    start_s=now,
                    duration_s=duration,
                    slots=len(selected),
                    width=self.provider_width,
                    merged_embeds=merged_embeds,
                    rebate_usd=rebate,
                )
            )
            report.offered_slots += self.provider_width
            report.filled_slots += len(selected)
            now += duration

            # Complete the wave: drop scheduled calls, advance step cursors.
            for job in list(active):
                count = taken.get(id(job), 0)
                if not count:
                    continue
                step_index, remaining = cursor[id(job)]
                remaining = remaining[count:]
                if remaining:
                    cursor[id(job)] = (step_index, remaining)
                    continue
                step_index += 1
                if step_index < len(job.timeline.steps):
                    cursor[id(job)] = (
                        step_index,
                        list(job.timeline.steps[step_index].calls),
                    )
                else:
                    del cursor[id(job)]
                    active.remove(job)
                    job.finish_s = now
                    job.latency_s = now - job.arrival_s
            admit()

        report.makespan_s = now
        return report

    def _wave_outcome(
        self, selected: list[tuple[QueryJob, CallRequest]]
    ) -> tuple[float, int, float]:
        """(duration, merged embed count, total rebate) of one shared wave.

        Embedding calls to the same model collapse into one provider
        request: one per-call overhead plus the group's summed token time.
        Generate calls to the same model share the fixed system-prompt
        prefill; each call beyond the first earns a rebate credited to its
        owning query.
        """
        durations: list[float] = []
        embed_groups: dict[str, list[float]] = {}
        chat_groups: dict[str, list[QueryJob]] = {}
        for job, call in selected:
            if call.model is None:
                durations.append(call.seconds)
            elif call.is_embedding:
                embed_groups.setdefault(call.model, []).append(call.seconds)
            else:
                durations.append(call.seconds)
                chat_groups.setdefault(call.model, []).append(job)

        merged_embeds = 0
        for model, seconds in embed_groups.items():
            overhead = get_model(model).per_call_overhead_s
            merged = overhead + sum(max(0.0, s - overhead) for s in seconds)
            durations.append(merged)
            merged_embeds += max(0, len(seconds) - 1)

        rebate_total = 0.0
        for model, group_jobs in chat_groups.items():
            if len(group_jobs) < 2:
                continue
            per_call = SYSTEM_PROMPT_TOKENS * get_model(model).usd_per_1m_input / 1e6
            for job in group_jobs[1:]:
                job.rebate_usd += per_call
                rebate_total += per_call

        return (max(durations) if durations else 0.0), merged_embeds, rebate_total
