"""Per-query call-timeline capture for the serving layer.

The serving runtime executes each admitted query's body *eagerly* on the
shared substrate — in strict admission order, so cache evolution is
identical whether or not cross-query batching is later applied — while a
:class:`CallTimeline` installed as ``SimulatedLLM.serve_sink`` intercepts
every outermost latency charge.  No virtual-clock time passes during body
execution; the timeline records the query's *call structure* instead:

- one :class:`CallStep` per outermost ``parallel`` section (its calls are
  mutually independent and may be co-scheduled freely), and
- one single-call step per bare sequential call.

Steps are totally ordered within a query (step *k* must finish before any
call of step *k+1* starts).  The cross-query scheduler then replays these
timelines — serially or as shared provider waves — to produce latencies on
the virtual clock.

Soundness: simulated answers are pure functions of (seed, model,
instruction, record uid), never of call order or wall time, so deferring
the *schedule* cannot change any record.  The structural bit-identity of
batched vs. serial serving follows directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CallRequest:
    """One successful (or exhausted-retry) LLM call saga.

    ``model`` is ``None`` when the call's metadata could not be paired with
    its latency — e.g. composite items from nested parallel sections.  Such
    opaque items still occupy a wave slot for exactly ``seconds``; they are
    simply ineligible for prefix-sharing rebates and embedding merges.
    """

    seconds: float
    model: str | None = None
    is_embedding: bool = False
    input_tokens: int = 0
    output_tokens: int = 0


@dataclass
class CallStep:
    """Calls that may run concurrently, issued at client width ``width``."""

    width: int
    calls: list[CallRequest]

    def standalone_makespan(self) -> float:
        """Seconds this step takes alone, in waves of ``width`` calls."""
        total = 0.0
        seconds = [call.seconds for call in self.calls]
        for start in range(0, len(seconds), self.width):
            total += max(seconds[start : start + self.width])
        return total


class CallTimeline:
    """The ``serve_sink`` protocol: collects a query body's call steps.

    :meth:`note_call` fires once per completed call saga (with metadata);
    :meth:`end_step` fires when an outermost parallel section exits (or a
    bare call charges), carrying the authoritative latency list.  Notes
    are paired with latencies positionally — both sides append in issue
    order and skip zero-latency (cached) calls — and dropped wholesale if
    the counts disagree (nested sections fold inner calls into composite
    items), which costs only rebate eligibility, never schedule accuracy.
    """

    def __init__(self) -> None:
        self.steps: list[CallStep] = []
        self._notes: list[CallRequest] = []

    def note_call(
        self,
        model: str,
        is_embedding: bool,
        input_tokens: int,
        output_tokens: int,
        seconds: float,
    ) -> None:
        if seconds > 0.0:
            self._notes.append(
                CallRequest(
                    seconds=seconds,
                    model=model,
                    is_embedding=is_embedding,
                    input_tokens=input_tokens,
                    output_tokens=output_tokens,
                )
            )

    def end_step(self, width: int, latencies: list[float]) -> None:
        if len(self._notes) == len(latencies):
            calls = list(self._notes)
        else:
            calls = [CallRequest(seconds=seconds) for seconds in latencies]
        self._notes.clear()
        if calls:
            self.steps.append(CallStep(width=width, calls=calls))

    # -- derived --------------------------------------------------------

    def total_calls(self) -> int:
        return sum(len(step.calls) for step in self.steps)

    def standalone_duration(self) -> float:
        """Seconds the query takes executed alone (per-step makespans sum)."""
        return sum(step.standalone_makespan() for step in self.steps)
