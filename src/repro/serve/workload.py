"""Deterministic multi-tenant workload generation for the serving layer.

Produces the serving benchmark's open-loop arrival trace: a heavy-tailed
mix of query templates over the QA ticket corpus, Poisson-ish arrivals on
the virtual clock (seeded exponential inter-arrival gaps), and Zipf-skewed
per-tenant rates.  Everything derives from ``stable_uniform`` /
``stable_hash`` streams, so two calls with equal arguments produce the
identical trace — the property the batched-vs-serial bit-identity contract
rests on.

Templates intentionally overlap on instructions and models: overlap is
what gives the shared generation cache within-tenant hits and the
cross-query batcher same-model waves to rebate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.data.schemas import Field
from repro.sem.dataset import Dataset
from repro.utils.hashing import stable_uniform

#: (name, mix weight, service-demand class) — weights form the heavy tail:
#: most queries are a single filter; a few are multi-operator triage scans.
_TEMPLATE_WEIGHTS = (
    ("filter-urgent", 0.30),
    ("filter-security", 0.22),
    ("filter-refund", 0.18),
    ("classify-dept", 0.14),
    ("extract-amount", 0.10),
    ("triage-heavy", 0.06),
)


def _template_builders(bundle) -> dict[str, Callable[[], Dataset]]:
    """Template name -> thunk building a fresh Dataset over ``bundle``."""
    from repro.qa.corpus import DEPARTMENTS, instruction_for

    def base() -> Dataset:
        return Dataset.from_source(bundle.source())

    return {
        "filter-urgent": lambda: base().sem_filter(
            instruction_for("qa.flag_urgent")
        ),
        "filter-security": lambda: base().sem_filter(
            instruction_for("qa.flag_security")
        ),
        "filter-refund": lambda: base().sem_filter(
            instruction_for("qa.flag_refund")
        ),
        "classify-dept": lambda: base()
        .sem_filter(instruction_for("qa.flag_refund"))
        .sem_classify(
            "department", list(DEPARTMENTS), instruction_for("qa.department")
        ),
        "extract-amount": lambda: base()
        .sem_filter(instruction_for("qa.flag_urgent"))
        .sem_map(
            Field("amount", float, "extracted amount"),
            instruction_for("qa.amount"),
        ),
        "triage-heavy": lambda: base()
        .sem_filter(instruction_for("qa.flag_security"))
        .sem_classify(
            "department", list(DEPARTMENTS), instruction_for("qa.department")
        )
        .sem_map(
            Field("amount", float, "extracted amount"),
            instruction_for("qa.amount"),
        ),
    }


@dataclass(frozen=True)
class Arrival:
    """One workload event: ``tenant`` submits ``template`` at ``arrival_s``."""

    arrival_s: float
    tenant: str
    template: str


def tenant_names(n: int) -> list[str]:
    return [f"tenant-{i:02d}" for i in range(n)]


def zipf_rates(n: int, base_rate: float, skew: float = 1.0) -> dict[str, float]:
    """Per-tenant arrival rates with Zipf skew (tenant 0 is the hottest)."""
    return {
        name: base_rate / (index + 1) ** skew
        for index, name in enumerate(tenant_names(n))
    }


def build_arrivals(
    seed: int,
    rates: dict[str, float],
    duration_s: float,
) -> list[Arrival]:
    """Seeded Poisson-ish arrival trace, merged across tenants, time-sorted.

    Inter-arrival gaps are exponential (inverse-CDF over ``stable_uniform``
    draws); the template mix is sampled per event from the heavy-tailed
    weights.  Ties sort by tenant name, keeping the trace total-ordered.
    """
    arrivals: list[Arrival] = []
    for tenant, rate in rates.items():
        if rate <= 0:
            continue
        t = 0.0
        index = 0
        while True:
            draw = stable_uniform(seed, "serve-arrival", tenant, index)
            t += -math.log(max(draw, 1e-12)) / rate
            if t > duration_s:
                break
            arrivals.append(
                Arrival(
                    arrival_s=round(t, 6),
                    tenant=tenant,
                    template=_pick_template(seed, tenant, index),
                )
            )
            index += 1
    arrivals.sort(key=lambda a: (a.arrival_s, a.tenant))
    return arrivals


def _pick_template(seed: int, tenant: str, index: int) -> str:
    draw = stable_uniform(seed, "serve-mix", tenant, index)
    cumulative = 0.0
    for name, weight in _TEMPLATE_WEIGHTS:
        cumulative += weight
        if draw < cumulative:
            return name
    return _TEMPLATE_WEIGHTS[-1][0]


def submit_workload(
    serving,
    bundle,
    arrivals: list[Arrival],
) -> tuple[list, list[Arrival]]:
    """Submit ``arrivals`` to a :class:`~repro.serve.runtime.ServingRuntime`.

    Returns ``(admitted jobs, rejected arrivals)``; quota rejections are
    collected rather than raised so open-loop drivers keep going.
    """
    from repro.errors import QuotaExceededError

    builders = _template_builders(bundle)
    jobs = []
    rejected: list[Arrival] = []
    for arrival in arrivals:
        try:
            jobs.append(
                serving.submit(
                    arrival.tenant,
                    builders[arrival.template](),
                    arrival_s=arrival.arrival_s,
                    tag=f"serve:{arrival.tenant}:{arrival.template}",
                )
            )
        except QuotaExceededError:
            rejected.append(arrival)
    return jobs, rejected
