"""Execution engine and statistics.

The engine executes a list of bound physical operators leaves-first and
measures, per operator: records in/out, LLM calls, dollars, and simulated
seconds.

Two execution modes:

- **Barrier** (``pipeline=False``): operators run one at a time with a full
  materialization barrier between them, exactly the original semantics —
  total time is the sum of per-operator makespans.
- **Pipelined** (the default): maximal runs of streamable operators are
  fused into sections; fixed-size record batches stream through the fused
  stages, so batch *b* can occupy stage *s* while batch *b+1* is still in
  stage *s-1*.  Each (batch, stage) cell is measured via
  :meth:`SimulatedLLM.measure` and fed to a
  :class:`~repro.utils.clock.PipelineSchedule`; the clock is advanced
  online by the growth of the section's critical-path makespan, so the
  charged time is the pipeline's makespan, not the stage sum.  A sated
  downstream limit stops upstream batches (early-exit pushdown), the spend
  cap truncates mid-batch, and an :class:`AdaptiveParallelism` controller
  narrows waves on rate-limit faults — resubmitting the throttled records
  once at the reduced width — and widens again on success.

Answers from the simulated LLM are a pure function of the input, never of
call order, so both modes produce bit-identical records and dollar cost on
a fault-free run; only the time accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.records import DataRecord
from repro.errors import BudgetExceededError
from repro.llm.usage import UsageTracker
from repro.sem.batch import RecordBatch
from repro.sem.physical import ExecutionContext, PhysicalOperator
from repro.utils.clock import PipelineSchedule
from repro.utils.formatting import format_table


@dataclass
class OperatorStats:
    """Measured behaviour of one physical operator in one execution.

    In pipelined sections ``time_s`` is the operator's *busy* time (the sum
    of its cell durations); operators overlap, so per-operator times can
    sum to more than the run's critical-path ``total_time_s``.  Records,
    calls, and dollars are exact in both modes.
    """

    label: str
    model: str | None
    records_in: int
    records_out: int
    cost_usd: float
    time_s: float
    llm_calls: int
    cached_calls: int
    #: Attempts that faulted and were retried (or gave up) in this operator.
    retried_calls: int = 0
    #: Records degraded (skipped/flagged) after exhausting the retry policy.
    failed_records: int = 0
    #: Prompt/completion tokens billed to this operator (failed attempts
    #: included — their prefill is real spend).
    input_tokens: int = 0
    output_tokens: int = 0
    #: True when this operator replayed a materialized sub-plan prefix.
    reused: bool = False
    #: True when this operator is a pushed-down SQL section (token-free).
    sql_pushdown: bool = False
    #: Source records a pushed-down scan saw before pruning (0 elsewhere).
    records_scanned: int = 0
    #: Simulated workers this operator ran across (1 = coordinator-only).
    shards: int = 1

    @property
    def selectivity(self) -> float:
        """Output/input ratio (1.0 when the operator saw no input)."""
        if self.records_in == 0:
            return 1.0
        return self.records_out / self.records_in

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of this operator's calls served from the cache."""
        if self.llm_calls == 0:
            return 0.0
        return self.cached_calls / self.llm_calls


@dataclass
class ExecutionResult:
    """Output records plus the full accounting of how they were produced."""

    records: list[DataRecord]
    operator_stats: list[OperatorStats] = field(default_factory=list)
    total_cost_usd: float = 0.0
    total_time_s: float = 0.0
    #: Extra spend attributed to the optimizer's sampling phase.
    optimization_cost_usd: float = 0.0
    optimization_time_s: float = 0.0
    plan_explain: str = ""
    #: True when a spend cap stopped execution before the plan completed;
    #: ``records`` then holds everything produced up to the cut (pipelined
    #: mode salvages fully-processed batches; barrier mode returns the
    #: output of the last finished operator).
    truncated: bool = False
    #: Faulted-and-retried attempts across all operators.
    retried_calls: int = 0
    #: Records degraded under the failure policy, across all operators.
    failed_records: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def field_values(self, name: str) -> list:
        return [record.get(name) for record in self.records]

    def fingerprint(self) -> str:
        """Stable digest of the *answer* this execution produced.

        Covers record uids, field names and values (in record order), the
        total dollar cost, and the truncation flag — everything the
        bit-identical equivalence contract promises is mode-independent.
        Virtual time is deliberately excluded: execution modes are allowed
        to (and should) differ on time, never on the fingerprint.
        """
        from repro.utils.hashing import stable_digest

        rows = [
            (record.uid, tuple(sorted(record.fields.items(), key=lambda kv: kv[0])))
            for record in self.records
        ]
        return stable_digest(rows, round(self.total_cost_usd, 9), self.truncated)

    def summary(self) -> str:
        lines = [
            f"records: {len(self.records)}  cost: ${self.total_cost_usd:.4f}  "
            f"time: {self.total_time_s:.1f}s"
        ]
        if self.retried_calls or self.failed_records:
            lines[0] += (
                f"  retried: {self.retried_calls}  failed records: {self.failed_records}"
            )
        for stats in self.operator_stats:
            extra = ""
            if stats.retried_calls or stats.failed_records:
                extra = (
                    f", {stats.retried_calls} retried, "
                    f"{stats.failed_records} failed records"
                )
            lines.append(
                f"  {stats.label}: {stats.records_in} -> {stats.records_out} "
                f"(${stats.cost_usd:.4f}, {stats.time_s:.1f}s, "
                f"{stats.llm_calls} calls, {stats.cached_calls} cached{extra})"
            )
        return "\n".join(lines)

    def report(self) -> str:
        """Post-run EXPLAIN ANALYZE: the measured per-operator table.

        Unlike :func:`repro.sem.explain.explain_analyze` this needs no
        optimizer report — it renders exactly what was measured: wall time,
        dollars, tokens, cache-hit ratio, retries, and records in/out.
        """
        rows = []
        for stats in self.operator_stats:
            rows.append(
                [
                    stats.label,
                    stats.records_in,
                    stats.records_out,
                    f"{stats.time_s:.1f}",
                    f"{stats.cost_usd:.4f}",
                    stats.total_tokens,
                    stats.llm_calls,
                    f"{stats.cache_hit_ratio * 100:.0f}%",
                    stats.retried_calls,
                    stats.failed_records,
                    "yes" if stats.reused else "-",
                    "yes" if stats.sql_pushdown else "-",
                ]
            )
        table = format_table(
            [
                "Operator", "In", "Out", "Time (s)", "Cost ($)",
                "Tokens", "Calls", "Cache", "Retried", "Failed", "Reused", "SQL",
            ],
            rows,
            title="EXECUTION REPORT",
        )
        footer = (
            f"\ntotals: {len(self.records)} records, "
            f"${self.total_cost_usd:.4f} in {self.total_time_s:.1f}s"
        )
        footer += pushdown_footer(self.operator_stats)
        if self.retried_calls or self.failed_records:
            footer += (
                f"  ({self.retried_calls} retried calls, "
                f"{self.failed_records} failed records)"
            )
        if self.truncated:
            footer += "\nNOTE: execution truncated by the spend cap"
        return table + footer


def pushdown_footer(operator_stats: list[OperatorStats]) -> str:
    """EXPLAIN footer for pushed-down SQL sections (empty when none ran).

    Reports how many records the SQL engine pruned before the first LLM
    operator ever saw the stream — the headline number of the hybrid
    pushdown path.
    """
    scan = next((s for s in operator_stats if s.sql_pushdown), None)
    if scan is None:
        return ""
    pruned = scan.records_scanned - scan.records_out
    return (
        f"\npushdown: {scan.label} pruned {pruned} of {scan.records_scanned} "
        f"records before the first LLM operator ({scan.records_out} passed)"
    )


def _stats_attrs(stats: OperatorStats) -> dict:
    """Span attributes summarizing one operator's measured behaviour."""
    attrs = {
        "records_in": stats.records_in,
        "records_out": stats.records_out,
        "cost_usd": round(stats.cost_usd, 6),
        "tokens": stats.total_tokens,
        "llm_calls": stats.llm_calls,
        "cached_calls": stats.cached_calls,
        "retried_calls": stats.retried_calls,
        "failed_records": stats.failed_records,
    }
    if stats.reused:
        attrs["reused"] = True
    if stats.sql_pushdown:
        attrs["sql_pushdown"] = True
        attrs["records_scanned"] = stats.records_scanned
    if stats.shards > 1:
        attrs["shards"] = stats.shards
    return attrs


class _StageAccount:
    """Running per-stage totals for one pipelined section."""

    def __init__(self, operator: PhysicalOperator) -> None:
        self.operator = operator
        self.records_in = 0
        self.records_out = 0
        self.cost_usd = 0.0
        self.time_s = 0.0
        self.llm_calls = 0
        self.cached_calls = 0
        self.retried_calls = 0
        self.failed_records = 0
        self.input_tokens = 0
        self.output_tokens = 0

    def to_stats(self) -> OperatorStats:
        return OperatorStats(
            label=self.operator.label(),
            model=self.operator.model,
            reused=getattr(self.operator, "reused", False),
            sql_pushdown=getattr(self.operator, "pushed_down", False),
            records_scanned=getattr(self.operator, "scanned", 0),
            records_in=self.records_in,
            records_out=self.records_out,
            cost_usd=self.cost_usd,
            time_s=self.time_s,
            llm_calls=self.llm_calls,
            cached_calls=self.cached_calls,
            retried_calls=self.retried_calls,
            failed_records=self.failed_records,
            input_tokens=self.input_tokens,
            output_tokens=self.output_tokens,
        )


class Engine:
    """Executes a bound operator chain with per-operator accounting."""

    def __init__(
        self,
        ctx: ExecutionContext,
        max_cost_usd: float | None = None,
        pipeline: bool = True,
        batch_size: int | None = None,
        capture=None,
        columnar: bool = False,
        replanner=None,
        stats_plan=None,
        shard_plan=None,
    ) -> None:
        self.ctx = ctx
        self.max_cost_usd = max_cost_usd
        self.pipeline = pipeline
        self.batch_size = batch_size if batch_size is not None else max(2 * ctx.parallelism, 16)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        #: Optional :class:`repro.sem.materialize.CapturePlan`: operator
        #: boundaries to materialize into the store after they complete.
        self.capture = capture
        #: Columnar hot path: vectorized (token-free) stages consume whole
        #: :class:`~repro.sem.batch.RecordBatch`es instead of looping the
        #: per-record protocol, and adjacent vectorized stages hand the
        #: batch along without re-wrapping.  Off = row-at-a-time escape
        #: hatch; records and dollars are bit-identical either way.
        self.columnar = columnar
        #: Optional :class:`repro.sem.optimizer.replan.Replanner` consulted
        #: at every operator/section boundary with the observed cardinality;
        #: when it accepts, the remaining operators are swapped in place.
        self.replanner = replanner
        #: Position-aligned statistics-key metadata from the optimizer
        #: (None entries = unkeyable); attached to operator spans so traces
        #: can be re-ingested into a StatisticsStore offline.
        self.stats_plan = stats_plan
        #: Optional :class:`repro.sem.shard.ShardPlan`: when set, execution
        #: is handed to the scale-out :class:`repro.sem.shard.ShardedExecutor`
        #: (``shards=1`` never builds a plan, so this path stays untouched).
        self.shard_plan = shard_plan

    def execute(self, operators: list[PhysicalOperator]) -> ExecutionResult:
        if self.shard_plan is not None:
            from repro.sem.shard import ShardedExecutor

            return ShardedExecutor(self, self.shard_plan).execute(operators)
        llm = self.ctx.llm
        tracer = llm.tracer
        metrics = llm.metrics
        records: list[DataRecord] = []
        stats: list[OperatorStats] = []
        run_start_cost = llm.tracker.spent_usd
        run_start_time = llm.clock.elapsed
        run_checkpoint = llm.tracker.checkpoint()
        # Thread the spend cap into the context so operators can truncate
        # mid-batch instead of overshooting to the next operator boundary.
        self.ctx.cost_baseline_usd = run_start_cost
        if self.max_cost_usd is not None and self.ctx.max_cost_usd is None:
            self.ctx.max_cost_usd = self.max_cost_usd
        truncated = False

        index = 0
        while index < len(operators):
            spent = llm.tracker.spent_usd - run_start_cost
            if self.max_cost_usd is not None and spent >= self.max_cost_usd:
                truncated = True
                break

            section = self._section_at(operators, index)
            if len(section) >= 2:
                label = " | ".join(op.label() for op in section)
                with tracer.span(
                    f"pipeline[{label}]", kind="pipeline-section",
                    stages=len(section),
                ) as section_span:
                    records, section_stats, truncated = self._execute_section(
                        section, records, section_span
                    )
                stats.extend(section_stats)
                if tracer.enabled and self.stats_plan:
                    stage_stats = []
                    for offset, stage in enumerate(section_stats):
                        entry = self._stats_entry(index + offset)
                        if entry is not None:
                            stage_stats.append(
                                {
                                    "stats": dict(entry),
                                    "time_s": stage.time_s,
                                    **_stats_attrs(stage),
                                }
                            )
                    if stage_stats:
                        section_span.attributes["stage_stats"] = stage_stats
                if metrics.enabled:
                    metrics.histogram("engine.section_makespan_s").observe(
                        section_span.duration_s
                    )
                if truncated:
                    break
                self._maybe_capture(
                    index + len(section) - 1, records, llm,
                    run_start_cost, run_start_time, run_checkpoint,
                )
                replanned = self._maybe_replan(
                    operators, index + len(section), len(records)
                )
                if replanned is not None:
                    operators = replanned
                index += len(section)
                continue

            operator = operators[index]
            checkpoint = llm.tracker.checkpoint()
            time_before = llm.clock.elapsed
            failures_before = len(self.ctx.failures)
            n_in = len(records)
            with tracer.span(operator.label(), kind="operator") as op_span:
                try:
                    records = operator.execute(records, self.ctx)
                    n_out = len(records)
                except BudgetExceededError:
                    # Mid-operator truncation: the partial output is discarded
                    # (records keeps the last finished operator's output), but
                    # the spend and calls the operator burned are accounted.
                    truncated = True
                    n_out = 0
            usage = llm.tracker.since(checkpoint)
            cached = sum(
                1 for event in llm.tracker.events[checkpoint:] if event.cached
            )
            op_stats = OperatorStats(
                label=operator.label(),
                model=operator.model,
                reused=getattr(operator, "reused", False),
                sql_pushdown=getattr(operator, "pushed_down", False),
                records_scanned=getattr(operator, "scanned", 0),
                records_in=n_in,
                records_out=n_out,
                cost_usd=usage.cost_usd,
                time_s=llm.clock.elapsed - time_before,
                llm_calls=usage.calls,
                cached_calls=cached,
                retried_calls=llm.tracker.failed_calls(checkpoint),
                failed_records=len(self.ctx.failures) - failures_before,
                input_tokens=usage.input_tokens,
                output_tokens=usage.output_tokens,
            )
            stats.append(op_stats)
            if tracer.enabled:
                op_span.attributes.update(_stats_attrs(op_stats))
                entry = self._stats_entry(index)
                if entry is not None:
                    op_span.attributes["stats"] = dict(entry)
            if metrics.enabled:
                metrics.histogram("engine.operator_s").observe(op_stats.time_s)
            if truncated:
                break
            self._maybe_capture(
                index, records, llm, run_start_cost, run_start_time, run_checkpoint
            )
            replanned = self._maybe_replan(operators, index + 1, len(records))
            if replanned is not None:
                operators = replanned
            index += 1

        if metrics.enabled and truncated:
            metrics.counter("engine.truncations").inc()
        return ExecutionResult(
            records=records,
            operator_stats=stats,
            total_cost_usd=llm.tracker.spent_usd - run_start_cost,
            total_time_s=llm.clock.elapsed - run_start_time,
            truncated=truncated,
            retried_calls=sum(s.retried_calls for s in stats),
            failed_records=sum(s.failed_records for s in stats),
        )

    def _stats_entry(self, position: int):
        plan = self.stats_plan
        if not plan or position >= len(plan):
            return None
        return plan[position]

    def _maybe_replan(
        self,
        operators: list[PhysicalOperator],
        boundary: int,
        observed_rows: int,
    ) -> list[PhysicalOperator] | None:
        """Consult the re-planner at ``boundary``; splice its new suffix in.

        The re-planner owns the decision (divergence threshold, learned
        priors, strict cost improvement) and mutates the optimizer report's
        chain-aligned views — including ``stats_plan``, which this engine
        shares by reference — so post-run ingestion and EXPLAIN stay
        consistent with what actually ran.
        """
        if self.replanner is None or boundary >= len(operators):
            return None
        new_suffix = self.replanner.consider(boundary, observed_rows, operators)
        if new_suffix is None:
            return None
        return operators[:boundary] + new_suffix

    def _maybe_capture(
        self,
        position: int,
        records: list[DataRecord],
        llm,
        run_start_cost: float,
        run_start_time: float,
        run_checkpoint: int,
    ) -> None:
        """Materialize the boundary after operator ``position`` if eligible.

        Capture is skipped on tainted runs: degraded records (``skip``) or
        fault-driven fallback answers would poison later reuse, and a
        faulted call is the only way either happens — so any failed call
        since the run started vetoes the write.  The stored cost is the
        cumulative spend up to this boundary plus the cost carried from a
        replayed entry, i.e. an honest full-recompute estimate.
        """
        plan = self.capture
        if plan is None or position >= len(plan.fingerprints):
            return
        fingerprint = plan.fingerprints[position]
        if fingerprint is None:
            return
        if self.ctx.failures or llm.tracker.failed_calls(run_checkpoint):
            return
        plan.store.put(
            fingerprint,
            records,
            source_uids=plan.source_uids,
            source_id=plan.source_id,
            cost_usd=plan.carried_cost_usd + (llm.tracker.spent_usd - run_start_cost),
            time_s=plan.carried_time_s + (llm.clock.elapsed - run_start_time),
            content_version=plan.content_version,
        )

    def _section_at(
        self, operators: list[PhysicalOperator], index: int
    ) -> list[PhysicalOperator]:
        """Maximal run of streamable operators starting at ``index``.

        Sections of one operator gain nothing from pipelining and fall back
        to the barrier path (identical wave structure either way).
        """
        if not self.pipeline:
            return operators[index : index + 1]
        end = index
        while end < len(operators) and operators[end].streamable:
            end += 1
        return operators[index : max(end, index + 1)]

    # ------------------------------------------------------------------
    # Pipelined sections
    # ------------------------------------------------------------------

    def _execute_section(
        self,
        section: list[PhysicalOperator],
        input_records: list[DataRecord],
        section_span=None,
    ) -> tuple[list[DataRecord], list[OperatorStats], bool]:
        """Stream ``input_records`` through fused stages in record batches.

        Returns (output records, per-stage stats, truncated).  Cells run
        depth-first per batch; the clock advances online by the growth of
        the section's pipelined makespan after every cell.  Each cell is
        also exported as a span at its *scheduled* position (section origin
        + the :class:`PipelineSchedule` placement) on a per-stage track, so
        a trace shows the overlap the makespan accounting charges for.
        """
        ctx = self.ctx
        tracer = ctx.llm.tracer
        metrics = ctx.llm.metrics
        origin = ctx.llm.clock.elapsed
        states = [operator.new_state(ctx) for operator in section]
        accounts = [_StageAccount(operator) for operator in section]
        schedule = PipelineSchedule()
        charged = 0.0
        outputs: list[DataRecord] = []
        truncated = False
        batch_no = 0

        def charge_progress() -> float:
            nonlocal charged
            if schedule.makespan > charged:
                ctx.llm.clock.advance(schedule.makespan - charged)
                charged = schedule.makespan
            return charged

        def emit_cell(stage: int, n_records: int) -> None:
            start, end = schedule.last_cell
            tracer.add_span(
                f"{section[stage].label()} b{batch_no}", "cell",
                origin + start, origin + end,
                track=f"stage {stage}", parent=section_span,
                batch=batch_no, stage=stage, records=n_records,
            )

        def run_stages(batch: list[DataRecord], first_stage: int) -> list[DataRecord]:
            """One batch through stages ``first_stage``.. — returns survivors.

            In columnar mode ``current`` may be a
            :class:`~repro.sem.batch.RecordBatch` between vectorized
            stages; it is unwrapped back to records at the section exit.
            """
            nonlocal truncated, batch_no
            batch_no += 1
            schedule.start_batch()
            current = batch
            for stage in range(first_stage, len(section)):
                if not len(current):
                    break
                n_records = len(current)
                try:
                    current, seconds = self._run_cell(
                        section[stage], current, states[stage], accounts[stage]
                    )
                except BudgetExceededError as exc:
                    truncated = True
                    seconds = exc.cell_seconds if hasattr(exc, "cell_seconds") else 0.0
                    schedule.record(stage, seconds)
                    if tracer.enabled:
                        emit_cell(stage, n_records)
                    charge_progress()
                    return []
                schedule.record(stage, seconds)
                if tracer.enabled:
                    emit_cell(stage, n_records)
                if metrics.enabled:
                    metrics.histogram("engine.cell_s").observe(seconds)
                charge_progress()
            if isinstance(current, RecordBatch):
                return current.records
            return current

        for start in range(0, len(input_records), self.batch_size):
            if truncated:
                break
            # Early-exit pushdown: a sated stage (a filled limit) means no
            # further input batch can change the output — stop scanning.
            if any(op.sated(state) for op, state in zip(section, states)):
                break
            survivors = run_stages(input_records[start : start + self.batch_size], 0)
            outputs.extend(survivors)

        # Flush held-back records (e.g. top-k winners) downstream, in stage
        # order so later holdbacks see everything emitted before them.
        if not truncated:
            for stage, operator in enumerate(section):
                held = operator.finalize(ctx, states[stage])
                if not held:
                    continue
                accounts[stage].records_out += len(held)
                survivors = run_stages(held, stage + 1)
                outputs.extend(survivors)
                if truncated:
                    break

        section_stats = [account.to_stats() for account in accounts]
        if tracer.enabled and section_span is not None:
            section_span.attributes.update(
                batches=batch_no,
                makespan_s=schedule.makespan,
                records_in=len(input_records),
                records_out=len(outputs),
                cost_usd=round(sum(s.cost_usd for s in section_stats), 6),
            )
        return outputs, section_stats, truncated

    def _run_cell(
        self,
        operator: PhysicalOperator,
        batch: list[DataRecord],
        state: dict,
        account: _StageAccount,
    ) -> tuple[list[DataRecord], float]:
        """One batch through one stage: measured, width-adaptive, guarded.

        Returns (emitted records, cell seconds).  When the wave drew
        rate-limit faults and the adaptive controller narrowed the width,
        records whose calls exhausted their retries are resubmitted once at
        the reduced width (their failure flags are withdrawn; a second
        exhaustion re-flags them).  On a budget cut the measured seconds
        ride along on the raised error so the caller can still charge them.
        """
        ctx = self.ctx
        tracker: UsageTracker = ctx.llm.tracker
        checkpoint = tracker.checkpoint()
        failures_before = len(ctx.failures)
        account.records_in += len(batch)
        columnar = self.columnar and operator.vectorized
        rows = batch.records if isinstance(batch, RecordBatch) else batch
        emitted: dict[int, list[DataRecord]] = {}
        batch_result: RecordBatch | None = None
        budget_error: BudgetExceededError | None = None

        with ctx.llm.measure() as measured:
            try:
                if columnar:
                    # Vectorized (token-free) stage: one whole-batch step,
                    # no wave machinery.  The RecordBatch flows on to the
                    # next stage without re-wrapping.
                    columns = (
                        batch if isinstance(batch, RecordBatch) else RecordBatch(rows)
                    )
                    operator.prepare_batch(columns.records, ctx, state)
                    batch_result = operator.process_batch(columns, ctx, state)
                else:
                    operator.prepare_batch(rows, ctx, state)
                    pending = list(enumerate(rows))
                    for attempt in range(2):
                        width = ctx.wave_width()
                        if ctx.llm.metrics.enabled:
                            ctx.llm.metrics.histogram("engine.wave_width").observe(width)
                        wave_checkpoint = tracker.checkpoint()
                        wave_failures = len(ctx.failures)
                        with ctx.llm.parallel(width):
                            for position, record in pending:
                                emitted[position] = operator.process_record(
                                    record, ctx, state
                                )
                        rate_limited = any(
                            event.failed and event.error == "rate_limit"
                            for event in tracker.events[wave_checkpoint:]
                        )
                        if ctx.adaptive is not None:
                            ctx.adaptive.observe(rate_limited)
                        throttled_uids = {
                            uid
                            for uid, error in ctx.failures[wave_failures:]
                            if error == "RateLimitError"
                        }
                        if (
                            attempt > 0
                            or not throttled_uids
                            or ctx.adaptive is None
                            or ctx.adaptive.width >= width
                        ):
                            break
                        # Withdraw the throttled records' failure flags and
                        # give them one more pass at the narrowed width.
                        ctx.failures[wave_failures:] = [
                            entry
                            for entry in ctx.failures[wave_failures:]
                            if entry[0] not in throttled_uids
                        ]
                        pending = [
                            (position, record)
                            for position, record in pending
                            if record.uid in throttled_uids
                        ]
            except BudgetExceededError as exc:
                budget_error = exc

        usage = tracker.since(checkpoint)
        account.cost_usd += usage.cost_usd
        account.llm_calls += usage.calls
        account.input_tokens += usage.input_tokens
        account.output_tokens += usage.output_tokens
        account.cached_calls += sum(
            1 for event in tracker.events[checkpoint:] if event.cached
        )
        account.retried_calls += tracker.failed_calls(checkpoint)
        account.failed_records += len(ctx.failures) - failures_before
        account.time_s += measured.seconds

        if budget_error is not None:
            budget_error.cell_seconds = measured.seconds
            raise budget_error
        if batch_result is not None:
            account.records_out += len(batch_result)
            return batch_result, measured.seconds
        results = [record for position in sorted(emitted) for record in emitted[position]]
        account.records_out += len(results)
        return results, measured.seconds
