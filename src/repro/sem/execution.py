"""Execution engine and statistics.

The engine executes a list of bound physical operators leaves-first
(iterator/batch semantics, as in Palimpzest) and measures, per operator:
records in/out, LLM calls, dollars, and simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.records import DataRecord
from repro.sem.physical import ExecutionContext, PhysicalOperator


@dataclass
class OperatorStats:
    """Measured behaviour of one physical operator in one execution."""

    label: str
    model: str | None
    records_in: int
    records_out: int
    cost_usd: float
    time_s: float
    llm_calls: int
    cached_calls: int
    #: Attempts that faulted and were retried (or gave up) in this operator.
    retried_calls: int = 0
    #: Records degraded (skipped/flagged) after exhausting the retry policy.
    failed_records: int = 0

    @property
    def selectivity(self) -> float:
        """Output/input ratio (1.0 when the operator saw no input)."""
        if self.records_in == 0:
            return 1.0
        return self.records_out / self.records_in


@dataclass
class ExecutionResult:
    """Output records plus the full accounting of how they were produced."""

    records: list[DataRecord]
    operator_stats: list[OperatorStats] = field(default_factory=list)
    total_cost_usd: float = 0.0
    total_time_s: float = 0.0
    #: Extra spend attributed to the optimizer's sampling phase.
    optimization_cost_usd: float = 0.0
    optimization_time_s: float = 0.0
    plan_explain: str = ""
    #: True when a spend cap stopped execution before the plan completed;
    #: ``records`` then holds the output of the last finished operator.
    truncated: bool = False
    #: Faulted-and-retried attempts across all operators.
    retried_calls: int = 0
    #: Records degraded under the failure policy, across all operators.
    failed_records: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def field_values(self, name: str) -> list:
        return [record.get(name) for record in self.records]

    def summary(self) -> str:
        lines = [
            f"records: {len(self.records)}  cost: ${self.total_cost_usd:.4f}  "
            f"time: {self.total_time_s:.1f}s"
        ]
        if self.retried_calls or self.failed_records:
            lines[0] += (
                f"  retried: {self.retried_calls}  failed records: {self.failed_records}"
            )
        for stats in self.operator_stats:
            extra = ""
            if stats.retried_calls or stats.failed_records:
                extra = (
                    f", {stats.retried_calls} retried, "
                    f"{stats.failed_records} failed records"
                )
            lines.append(
                f"  {stats.label}: {stats.records_in} -> {stats.records_out} "
                f"(${stats.cost_usd:.4f}, {stats.time_s:.1f}s, "
                f"{stats.llm_calls} calls, {stats.cached_calls} cached{extra})"
            )
        return "\n".join(lines)


class Engine:
    """Executes a bound operator chain with per-operator accounting."""

    def __init__(self, ctx: ExecutionContext, max_cost_usd: float | None = None) -> None:
        self.ctx = ctx
        self.max_cost_usd = max_cost_usd

    def execute(self, operators: list[PhysicalOperator]) -> ExecutionResult:
        llm = self.ctx.llm
        records: list[DataRecord] = []
        stats: list[OperatorStats] = []
        run_start_cost = llm.tracker.total().cost_usd
        run_start_time = llm.clock.elapsed
        truncated = False

        for operator in operators:
            spent = llm.tracker.total().cost_usd - run_start_cost
            if self.max_cost_usd is not None and spent >= self.max_cost_usd:
                truncated = True
                break
            checkpoint = llm.tracker.checkpoint()
            time_before = llm.clock.elapsed
            failures_before = len(self.ctx.failures)
            n_in = len(records)
            records = operator.execute(records, self.ctx)
            usage = llm.tracker.since(checkpoint)
            cached = sum(
                1 for event in llm.tracker.events[checkpoint:] if event.cached
            )
            stats.append(
                OperatorStats(
                    label=operator.label(),
                    model=operator.model,
                    records_in=n_in,
                    records_out=len(records),
                    cost_usd=usage.cost_usd,
                    time_s=llm.clock.elapsed - time_before,
                    llm_calls=usage.calls,
                    cached_calls=cached,
                    retried_calls=llm.tracker.failed_calls(checkpoint),
                    failed_records=len(self.ctx.failures) - failures_before,
                )
            )

        return ExecutionResult(
            records=records,
            operator_stats=stats,
            total_cost_usd=llm.tracker.total().cost_usd - run_start_cost,
            total_time_s=llm.clock.elapsed - run_start_time,
            truncated=truncated,
            retried_calls=sum(s.retried_calls for s in stats),
            failed_records=sum(s.failed_records for s in stats),
        )
