"""Query-processor configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.llm.embeddings import DEFAULT_EMBED_BATCH
from repro.llm.models import DEFAULT_MODEL, completion_models_by_cost
from repro.llm.simulated import SimulatedLLM
from repro.sem.materialize import MaterializationStore
from repro.sem.optimizer.policies import MaxQuality, OptimizationPolicy

if TYPE_CHECKING:
    from repro.obs.stats import StatisticsStore

#: Model used when an operator is bound without an explicit model choice
#: (unoptimized runs, unsampled operators).  Historically ``"gpt-4o"`` was
#: hard-coded at each use site; this is the single source of truth now.
DEFAULT_FALLBACK_MODEL = DEFAULT_MODEL


@dataclass
class QueryProcessorConfig:
    """Everything a :meth:`Dataset.run` call needs.

    Defaults mirror Palimpzest's: optimization on, champion model GPT-4o,
    sequential (iterator-semantics) execution.
    """

    llm: SimulatedLLM
    policy: OptimizationPolicy = field(default_factory=MaxQuality)
    #: Master switch; False executes the naive plan with the champion model.
    optimize: bool = True
    #: Reorder commuting filters by sampled cost/selectivity.
    reorder_filters: bool = True
    #: Choose cheaper models per operator when quality allows.
    select_models: bool = True
    #: Records sampled per operator when profiling models.
    sample_size: int = 12
    #: Reference model for agreement-based quality estimation.
    champion_model: str = DEFAULT_MODEL
    #: Candidate models for selection (None = all chat models, by cost).
    available_models: list[str] | None = None
    #: Concurrent LLM calls per operator (1 = strict iterator semantics).
    parallelism: int = 1
    seed: int = 0
    #: Tag prefix for usage events, so benchmarks can slice spend.
    tag: str = "query"
    #: Semantic-join physical implementation: "nested" judges every pair,
    #: "blocked" pre-screens pairs by embedding similarity.
    join_method: str = "nested"
    #: Hard spend cap for this run (None = unlimited).  When set, the
    #: engine stops between operators once the cap is reached and returns
    #: the records produced so far, flagged as truncated.
    max_cost_usd: float | None = None
    #: Per-record degradation when a semantic call exhausts the LLM
    #: substrate's retry policy: "skip" flags the record and continues,
    #: "fallback" re-asks ``fallback_model`` once, "raise" propagates.
    on_failure: str = "skip"
    #: Cheaper tier used by ``on_failure="fallback"`` (None = auto: the
    #: cheapest chat model in the catalog).
    fallback_model: str | None = None
    #: Pipelined streaming execution: fuse adjacent record-at-a-time
    #: operators into stages and charge the critical-path makespan instead
    #: of the per-operator sum.  False restores the old materialize-
    #: everything barrier semantics (the A/B escape hatch).
    pipeline: bool = True
    #: Records per streamed batch (None = ``max(2 * parallelism, 16)``).
    batch_size: int | None = None
    #: Texts per batched embedding request on the pipelined path.
    embed_batch_size: int = DEFAULT_EMBED_BATCH
    #: Adapt wave width at runtime: back off on rate-limit bursts, widen
    #: again on success, capped at ``parallelism``.  Fault-free runs stay
    #: at the cap, so this is a no-op without an injector.
    adaptive_parallelism: bool = True
    #: Cross-query sub-plan reuse: a shared
    #: :class:`~repro.sem.materialize.MaterializationStore` makes the
    #: optimizer replay fingerprint-matched plan prefixes (and run appended
    #: source deltas through them) instead of recomputing.  None disables
    #: materialization entirely.
    materialization_store: "MaterializationStore | None" = None
    #: Tenant namespace for materialization fingerprints on a *shared*
    #: store: scoped runs only match entries captured under the same scope.
    #: Empty (the default) keeps the historical single-tenant digests.
    materialization_scope: str = ""
    #: Compile structured predicates/projections/pre-aggregations adjacent
    #: to the scan into ``repro.sql`` execution (a ``SqlScan`` leaf) so the
    #: SQL engine prunes records before any LLM operator runs.  Off =
    #: structured operators run row-at-a-time in plan order; records are
    #: bit-identical either way.
    pushdown: bool = True
    #: Thread struct-of-arrays :class:`~repro.sem.batch.RecordBatch`es
    #: through the pipelined executor's free operators (vectorized
    #: predicate evaluation).  Off = the row-at-a-time escape hatch;
    #: records and cost are bit-identical either way.
    columnar: bool = True
    #: Learned per-operator priors: a shared
    #: :class:`~repro.obs.stats.StatisticsStore` that finished runs feed
    #: (observed selectivity/cost/latency per operator+model+dataset) and
    #: that estimates and mid-query re-planning consult.  None disables
    #: both ingestion and consultation.
    stats_store: "StatisticsStore | None" = None
    #: Tenant namespace for statistics keys on a *shared* store — one
    #: tenant's observed selectivities must not steer another's plans.
    stats_scope: str = ""
    #: Let plan estimates use learned priors when available (falling back
    #: to sampled profiles / static formulas).  Off = priors are still
    #: collected but estimates stay static — the misestimate-injection
    #: lever the replan bench uses.
    stats_estimates: bool = True
    #: Adaptive mid-query re-optimization: at operator/section boundaries
    #: compare observed cardinality with the plan estimate and, past
    #: ``replan_threshold`` divergence, re-plan the remaining suffix using
    #: learned priors.  Requires ``stats_store``; never changes records
    #: (only commuting reorderings are applied).
    replan: bool = False
    #: Divergence ratio (max of observed/estimated and its inverse) that
    #: triggers a replan consideration.
    replan_threshold: float = 1.5
    #: Minimum observed rows at a boundary before replanning — tiny
    #: cardinalities make ratios noisy and savings negligible.
    replan_min_rows: int = 4
    #: Maximum replans per query (0 = unlimited).
    replan_limit: int = 1
    #: Simulated workers for scale-out execution (see
    #: :mod:`repro.sem.shard`): the sharding pass partitions sources and
    #: inserts scatter/shuffle/merge/broadcast exchanges, and the engine
    #: simulates the shards deterministically on the virtual clock.
    #: Records are bit-identical at every shard count; ``1`` (the
    #: default) never constructs any sharding machinery and is byte-
    #: identical to the unsharded engine.
    shards: int = 1
    #: How records are assigned to shards: "hash" keys on the lineage uid
    #: (the only strategy stable under append-only source growth, so the
    #: one that composes with per-shard delta execution), "range" cuts
    #: contiguous position chunks, "round_robin" deals positions out
    #: cyclically.
    partitioner: str = "hash"

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {self.sample_size}")
        if self.parallelism < 1:
            raise ConfigurationError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.join_method not in ("nested", "blocked"):
            raise ConfigurationError(
                f"join_method must be 'nested' or 'blocked', got {self.join_method!r}"
            )
        if self.max_cost_usd is not None and self.max_cost_usd <= 0:
            raise ConfigurationError(
                f"max_cost_usd must be positive, got {self.max_cost_usd}"
            )
        if self.on_failure not in ("skip", "fallback", "raise"):
            raise ConfigurationError(
                f"on_failure must be 'skip', 'fallback', or 'raise', "
                f"got {self.on_failure!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.embed_batch_size < 1:
            raise ConfigurationError(
                f"embed_batch_size must be >= 1, got {self.embed_batch_size}"
            )
        if self.replan_threshold <= 1.0:
            raise ConfigurationError(
                f"replan_threshold must be > 1.0, got {self.replan_threshold}"
            )
        if self.replan_min_rows < 0:
            raise ConfigurationError(
                f"replan_min_rows must be >= 0, got {self.replan_min_rows}"
            )
        if self.replan_limit < 0:
            raise ConfigurationError(
                f"replan_limit must be >= 0, got {self.replan_limit}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        from repro.sem.shard import PARTITIONERS

        if self.partitioner not in PARTITIONERS:
            raise ConfigurationError(
                f"partitioner must be one of {PARTITIONERS}, "
                f"got {self.partitioner!r}"
            )

    def resolved_batch_size(self) -> int:
        """Records per streamed batch; defaults to ``max(2 * parallelism, 16)``.

        Batches must span several waves: each (batch, stage) cell rounds up
        to whole waves of ``parallelism`` calls, so a batch of exactly one
        wave wastes up to half its slots whenever an upstream filter thins
        the batch.  Two waves per batch keeps that rounding loss small while
        still streaming records downstream early.
        """
        if self.batch_size is not None:
            return self.batch_size
        return max(2 * self.parallelism, 16)

    def candidate_models(self) -> list[str]:
        if self.available_models is not None:
            return list(self.available_models)
        return [card.name for card in completion_models_by_cost()]

    def resolved_fallback_model(self) -> str | None:
        """The tier used by ``on_failure='fallback'`` (cheapest chat model)."""
        if self.on_failure != "fallback":
            return self.fallback_model
        return self.fallback_model or completion_models_by_cost()[0].name
