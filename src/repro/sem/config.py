"""Query-processor configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.llm.models import DEFAULT_MODEL, completion_models_by_cost
from repro.llm.simulated import SimulatedLLM
from repro.sem.optimizer.policies import MaxQuality, OptimizationPolicy


@dataclass
class QueryProcessorConfig:
    """Everything a :meth:`Dataset.run` call needs.

    Defaults mirror Palimpzest's: optimization on, champion model GPT-4o,
    sequential (iterator-semantics) execution.
    """

    llm: SimulatedLLM
    policy: OptimizationPolicy = field(default_factory=MaxQuality)
    #: Master switch; False executes the naive plan with the champion model.
    optimize: bool = True
    #: Reorder commuting filters by sampled cost/selectivity.
    reorder_filters: bool = True
    #: Choose cheaper models per operator when quality allows.
    select_models: bool = True
    #: Records sampled per operator when profiling models.
    sample_size: int = 12
    #: Reference model for agreement-based quality estimation.
    champion_model: str = DEFAULT_MODEL
    #: Candidate models for selection (None = all chat models, by cost).
    available_models: list[str] | None = None
    #: Concurrent LLM calls per operator (1 = strict iterator semantics).
    parallelism: int = 1
    seed: int = 0
    #: Tag prefix for usage events, so benchmarks can slice spend.
    tag: str = "query"
    #: Semantic-join physical implementation: "nested" judges every pair,
    #: "blocked" pre-screens pairs by embedding similarity.
    join_method: str = "nested"
    #: Hard spend cap for this run (None = unlimited).  When set, the
    #: engine stops between operators once the cap is reached and returns
    #: the records produced so far, flagged as truncated.
    max_cost_usd: float | None = None
    #: Per-record degradation when a semantic call exhausts the LLM
    #: substrate's retry policy: "skip" flags the record and continues,
    #: "fallback" re-asks ``fallback_model`` once, "raise" propagates.
    on_failure: str = "skip"
    #: Cheaper tier used by ``on_failure="fallback"`` (None = auto: the
    #: cheapest chat model in the catalog).
    fallback_model: str | None = None

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {self.sample_size}")
        if self.parallelism < 1:
            raise ConfigurationError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.join_method not in ("nested", "blocked"):
            raise ConfigurationError(
                f"join_method must be 'nested' or 'blocked', got {self.join_method!r}"
            )
        if self.max_cost_usd is not None and self.max_cost_usd <= 0:
            raise ConfigurationError(
                f"max_cost_usd must be positive, got {self.max_cost_usd}"
            )
        if self.on_failure not in ("skip", "fallback", "raise"):
            raise ConfigurationError(
                f"on_failure must be 'skip', 'fallback', or 'raise', "
                f"got {self.on_failure!r}"
            )

    def candidate_models(self) -> list[str]:
        if self.available_models is not None:
            return list(self.available_models)
        return [card.name for card in completion_models_by_cost()]

    def resolved_fallback_model(self) -> str | None:
        """The tier used by ``on_failure='fallback'`` (cheapest chat model)."""
        if self.on_failure != "fallback":
            return self.fallback_model
        return self.fallback_model or completion_models_by_cost()[0].name
