"""The fluent ``Dataset`` API — the user-facing surface of the framework.

A :class:`Dataset` is an immutable handle on a logical plan; every method
returns a new Dataset with one more operator.  Nothing executes until
:meth:`Dataset.run`.

Example::

    emails = Dataset.from_source(bundle.source())
    result = (
        emails
        .sem_filter("The email discusses the merger.")
        .sem_map(Field("summary", str, "one-sentence summary"),
                 "Write a one-sentence summary of the email.")
        .run(QueryProcessorConfig(llm=llm))
    )
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.data.sources import DataSource, MemorySource
from repro.errors import PlanError
from repro.sem import logical as L
from repro.sem.config import QueryProcessorConfig
from repro.sem.execution import Engine, ExecutionResult
from repro.sem.optimizer.optimizer import OptimizationReport, Optimizer
from repro.sem.physical import AdaptiveParallelism, ExecutionContext


class Dataset:
    """An immutable, composable query over a data source."""

    def __init__(self, root: L.LogicalOperator) -> None:
        self._root = root

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: DataSource) -> "Dataset":
        return cls(L.ScanOp(child=None, source=source))

    @classmethod
    def from_records(
        cls,
        records: Iterable[DataRecord],
        schema: Schema,
        source_id: str = "memory",
    ) -> "Dataset":
        return cls.from_source(MemorySource(records, schema, source_id=source_id))

    # ------------------------------------------------------------------
    # Semantic operators
    # ------------------------------------------------------------------

    def sem_filter(self, instruction: str, model: str | None = None) -> "Dataset":
        """Keep records satisfying a natural-language predicate."""
        _require_instruction(instruction, "sem_filter")
        return Dataset(L.SemFilterOp(child=self._root, instruction=instruction, model=model))

    def sem_map(
        self,
        field: Field | Sequence[tuple[Field, str]],
        instruction: str | None = None,
        model: str | None = None,
    ) -> "Dataset":
        """Compute new field(s) from each record.

        Accepts either a single ``(field, instruction)`` pair via the two
        positional arguments, or a sequence of pairs.
        """
        if isinstance(field, Field):
            if not instruction:
                raise PlanError("sem_map with a single Field requires an instruction")
            outputs = ((field, instruction),)
        else:
            outputs = tuple((f, instr) for f, instr in field)
            if not outputs:
                raise PlanError("sem_map requires at least one output field")
        return Dataset(L.SemMapOp(child=self._root, outputs=outputs, model=model))

    def sem_classify(
        self,
        output_field: str,
        options: Sequence[str],
        instruction: str,
        model: str | None = None,
    ) -> "Dataset":
        """Assign each record one label from ``options``."""
        _require_instruction(instruction, "sem_classify")
        if not options:
            raise PlanError("sem_classify requires at least one option")
        return Dataset(
            L.SemClassifyOp(
                child=self._root,
                output_field=output_field,
                options=tuple(options),
                instruction=instruction,
                model=model,
            )
        )

    def sem_groupby(
        self,
        instruction: str,
        groups: Sequence[str],
        summarize: bool = False,
        model: str | None = None,
    ) -> "Dataset":
        """Partition records into semantic groups; one output row per group."""
        _require_instruction(instruction, "sem_groupby")
        if len(groups) < 2:
            raise PlanError("sem_groupby requires at least two groups")
        return Dataset(
            L.SemGroupByOp(
                child=self._root,
                groups=tuple(groups),
                instruction=instruction,
                summarize=summarize,
                model=model,
            )
        )

    def sem_join(self, other: "Dataset", instruction: str, model: str | None = None) -> "Dataset":
        """Join against ``other`` on a natural-language pair predicate."""
        _require_instruction(instruction, "sem_join")
        return Dataset(
            L.SemJoinOp(
                child=self._root, right=other._root, instruction=instruction, model=model
            )
        )

    def sem_agg(
        self,
        instruction: str,
        output_field: str = "answer",
        model: str | None = None,
    ) -> "Dataset":
        """Aggregate all records into one synthesized answer record."""
        _require_instruction(instruction, "sem_agg")
        return Dataset(
            L.SemAggOp(
                child=self._root,
                instruction=instruction,
                output_field=output_field,
                model=model,
            )
        )

    def sem_topk(
        self,
        query: str,
        k: int,
        method: str = "embedding",
        model: str | None = None,
    ) -> "Dataset":
        """Keep the ``k`` records most relevant to ``query``."""
        _require_instruction(query, "sem_topk")
        if method not in ("embedding", "llm"):
            raise PlanError(f"sem_topk method must be 'embedding' or 'llm', got {method!r}")
        return Dataset(
            L.SemTopKOp(child=self._root, query=query, k=k, method=method, model=model)
        )

    # ------------------------------------------------------------------
    # Plain (free) operators
    # ------------------------------------------------------------------

    def filter(self, fn: Callable[[DataRecord], bool], description: str = "") -> "Dataset":
        """Keep records for which the Python predicate returns True."""
        return Dataset(L.PyFilterOp(child=self._root, fn=fn, description=description))

    def map(self, fn: Callable[[DataRecord], dict], description: str = "") -> "Dataset":
        """Add fields computed by a Python function returning a dict."""
        return Dataset(L.PyMapOp(child=self._root, fn=fn, description=description))

    def where(self, condition: str) -> "Dataset":
        """Keep records satisfying a structured SQL predicate.

        ``condition`` is a ``repro.sql`` WHERE expression over typed record
        fields (``"priority >= 2 AND status <> 'done'"``).  SQL semantics
        apply: a missing field reads as NULL, and only rows where the
        predicate is exactly TRUE survive.  Because the predicate is
        structured, the optimizer can push it (with adjacent projections
        and pre-aggregations) into a SQL scan that prunes records before
        any LLM operator runs.
        """
        if not isinstance(condition, str) or not condition.strip():
            raise PlanError("where requires a non-empty SQL condition string")
        return Dataset(L.StructFilterOp(child=self._root, condition=condition))

    def struct_agg(
        self,
        aggregates: Sequence[tuple[str, str]],
        group_by: Sequence[str] = (),
    ) -> "Dataset":
        """Aggregate typed fields with SQL semantics (no LLM involved).

        ``aggregates`` is a sequence of ``(output_name, sql_expression)``
        pairs, e.g. ``[("n", "count(*)"), ("worst", "max(priority)")]``;
        ``group_by`` names grouping fields.  Runs through the ``repro.sql``
        engine, so NULL handling, grouping, and empty-input behaviour are
        exactly SQL's.
        """
        return Dataset(
            L.StructAggOp(
                child=self._root,
                group_by=tuple(group_by),
                aggregates=tuple((alias, expr) for alias, expr in aggregates),
            )
        )

    def project(self, fields: Sequence[str]) -> "Dataset":
        """Keep only the named fields."""
        return Dataset(L.ProjectOp(child=self._root, fields=tuple(fields)))

    def limit(self, n: int) -> "Dataset":
        """Stop after ``n`` records."""
        return Dataset(L.LimitOp(child=self._root, n=n))

    def retrieve(self, query: str, k: int) -> "Dataset":
        """Replace the full scan with top-k vector retrieval (access path)."""
        return Dataset(L.RetrieveOp(child=self._root, query=query, k=k))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def plan(self) -> L.LogicalPlan:
        return L.LogicalPlan(root=self._root)

    def explain(
        self, analyze: bool = False, config: QueryProcessorConfig | None = None
    ) -> str:
        """Render the logical plan; with ``analyze=True``, run it and render
        the EXPLAIN ANALYZE table (per-operator time, $, tokens, cache-hit
        ratio, retries, records in/out vs. the optimizer's estimates).
        """
        if not analyze:
            return self.plan().explain()
        if config is None:
            raise PlanError("explain(analyze=True) requires a QueryProcessorConfig")
        from repro.sem.explain import explain_analyze

        result, report = self.run_with_report(config)
        return explain_analyze(result, report)

    def run(self, config: QueryProcessorConfig) -> ExecutionResult:
        """Optimize and execute the plan, returning records + accounting."""
        result, _report = self.run_with_report(config)
        return result

    def run_with_report(
        self, config: QueryProcessorConfig
    ) -> tuple[ExecutionResult, OptimizationReport]:
        """Like :meth:`run` but also returns the optimizer's report."""
        plan = self.plan()
        tracer = config.llm.tracer
        with tracer.span(
            f"query:{config.tag}", kind="query", pipeline=config.pipeline
        ) as query_span:
            operators, report = Optimizer(config).optimize(plan)
            adaptive = (
                AdaptiveParallelism(cap=config.parallelism)
                if config.pipeline and config.adaptive_parallelism
                else None
            )
            engine = Engine(
                ExecutionContext(
                    llm=config.llm,
                    parallelism=config.parallelism,
                    tag=config.tag,
                    on_failure=config.on_failure,
                    fallback_model=config.resolved_fallback_model(),
                    max_cost_usd=config.max_cost_usd,
                    # Batched embeddings ride the pipelined path; barrier mode
                    # keeps per-record calls (the legacy-exact escape hatch).
                    embed_batch_size=config.embed_batch_size if config.pipeline else 1,
                    adaptive=adaptive,
                ),
                max_cost_usd=config.max_cost_usd,
                pipeline=config.pipeline,
                batch_size=config.resolved_batch_size(),
                capture=report.capture,
                columnar=config.columnar and config.pipeline,
                replanner=report.replanner,
                stats_plan=report.stats_plan,
                shard_plan=report.shard_plan,
            )
            result = engine.execute(operators)
            result.optimization_cost_usd = report.sampling_cost_usd
            result.optimization_time_s = report.sampling_time_s
            result.plan_explain = "\n".join(report.final_order) or plan.explain()
            stats_store = getattr(config, "stats_store", None)
            if (
                stats_store is not None
                and report.stats_plan
                and not result.truncated
                and not report.reused_prefix
                and not (
                    report.shard_plan is not None
                    and report.shard_plan.reused_any
                )
            ):
                # Feed learned priors only with full, honestly measured
                # runs: truncated executions under-count selectivity and a
                # replayed prefix reports zero spend for its operators.
                stats_store.ingest_run(
                    result.operator_stats, report.stats_plan, tracer=tracer
                )
        if tracer.enabled:
            query_span.attributes.update(
                records=len(result.records),
                cost_usd=round(result.total_cost_usd, 6),
                time_s=result.total_time_s,
                truncated=result.truncated,
            )
            if report.shard_plan is not None:
                query_span.attributes.update(
                    shards=report.shard_plan.n_shards,
                    partitioner=report.shard_plan.partitioner,
                )
            if report.reused_prefix:
                query_span.attributes.update(
                    reused_prefix=report.reused_prefix,
                    reuse_kind=report.reuse_kind,
                )
        return result, report

    def records(self, config: QueryProcessorConfig) -> list[DataRecord]:
        """Convenience: run and return just the records."""
        return self.run(config).records


def _require_instruction(instruction: Any, operator_name: str) -> None:
    if not isinstance(instruction, str) or not instruction.strip():
        raise PlanError(f"{operator_name} requires a non-empty instruction string")
