"""Logical operators and plans.

A logical plan is a tree of :class:`LogicalOperator` nodes (linear chains
except for joins).  Plans are immutable: rewrites produce new trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.data.schemas import Field as SchemaField
from repro.data.sources import DataSource
from repro.errors import PlanError


@dataclass(frozen=True)
class LogicalOperator:
    """Base logical operator; ``child`` is None only for scans."""

    child: "LogicalOperator | None"

    def label(self) -> str:
        return type(self).__name__

    def with_child(self, child: "LogicalOperator | None") -> "LogicalOperator":
        return replace(self, child=child)


@dataclass(frozen=True)
class ScanOp(LogicalOperator):
    """Leaf: iterate a data source."""

    source: DataSource = None  # type: ignore[assignment]

    def label(self) -> str:
        return f"Scan({self.source.source_id})"


@dataclass(frozen=True)
class SemFilterOp(LogicalOperator):
    """Keep records satisfying a natural-language predicate."""

    instruction: str = ""
    #: Optional per-operator model override (None lets the optimizer pick).
    model: str | None = None

    def label(self) -> str:
        return f"SemFilter({self.instruction[:40]!r})"


@dataclass(frozen=True)
class SemMapOp(LogicalOperator):
    """Compute new fields from each record via NL instructions."""

    #: (output field, extraction instruction) pairs.
    outputs: tuple[tuple[SchemaField, str], ...] = ()
    model: str | None = None

    def label(self) -> str:
        names = ", ".join(field_.name for field_, _ in self.outputs)
        return f"SemMap({names})"


@dataclass(frozen=True)
class SemClassifyOp(LogicalOperator):
    """Assign each record one of a fixed set of labels."""

    output_field: str = "label"
    options: tuple[str, ...] = ()
    instruction: str = ""
    model: str | None = None

    def label(self) -> str:
        return f"SemClassify({self.output_field})"


@dataclass(frozen=True)
class SemGroupByOp(LogicalOperator):
    """Partition records into semantic groups (LOTUS-style group-by).

    Each record is classified into one of ``groups``; the output has one
    record per non-empty group with the group label, member count, and
    (optionally) an LLM-written summary of the group's members.
    """

    groups: tuple[str, ...] = ()
    instruction: str = ""
    summarize: bool = False
    model: str | None = None

    def label(self) -> str:
        return f"SemGroupBy({', '.join(self.groups)})"


@dataclass(frozen=True)
class SemJoinOp(LogicalOperator):
    """Join two plans on a natural-language pair predicate."""

    right: "LogicalOperator" = None  # type: ignore[assignment]
    instruction: str = ""
    model: str | None = None

    def label(self) -> str:
        return f"SemJoin({self.instruction[:40]!r})"


@dataclass(frozen=True)
class SemAggOp(LogicalOperator):
    """Aggregate all records into a single synthesized answer."""

    instruction: str = ""
    output_field: str = "answer"
    model: str | None = None

    def label(self) -> str:
        return f"SemAgg({self.output_field})"


@dataclass(frozen=True)
class SemTopKOp(LogicalOperator):
    """Keep the k records most relevant to a natural-language query."""

    query: str = ""
    k: int = 10
    #: "embedding" ranks by vector similarity; "llm" asks a model to rerank.
    method: str = "embedding"
    model: str | None = None

    def label(self) -> str:
        return f"SemTopK(k={self.k})"


@dataclass(frozen=True)
class PyFilterOp(LogicalOperator):
    """Keep records passing a plain Python predicate (free to run)."""

    fn: Callable[[Any], bool] = None  # type: ignore[assignment]
    description: str = ""

    def label(self) -> str:
        return f"PyFilter({self.description or 'fn'})"


@dataclass(frozen=True)
class PyMapOp(LogicalOperator):
    """Derive new fields with a plain Python function (free to run)."""

    fn: Callable[[Any], dict] = None  # type: ignore[assignment]
    description: str = ""

    def label(self) -> str:
        return f"PyMap({self.description or 'fn'})"


@dataclass(frozen=True)
class StructFilterOp(LogicalOperator):
    """Keep records where a SQL predicate over typed fields is TRUE.

    ``condition`` is the ``repro.sql`` WHERE grammar (three-valued NULL
    logic; a missing field reads as NULL).  Free to run — no LLM calls —
    and the pushdown pass compiles runs of these adjacent to the scan into
    a :class:`SqlScanOp` so the SQL engine prunes records before any LLM
    operator sees them.
    """

    condition: str = ""

    def label(self) -> str:
        return f"StructFilter({self.condition!r})"


@dataclass(frozen=True)
class StructAggOp(LogicalOperator):
    """Structured (non-semantic) aggregation via the SQL engine.

    Groups by the named fields and computes SQL aggregate expressions
    (``("total", "sum(amount)")``), emitting one fresh record per group
    with lineage-deterministic uids.  Like :class:`StructFilterOp` it is
    token-free and pushdown-eligible.
    """

    group_by: tuple[str, ...] = ()
    #: (output field, SQL aggregate expression) pairs.
    aggregates: tuple[tuple[str, str], ...] = ()

    def label(self) -> str:
        parts = list(self.group_by) + [alias for alias, _ in self.aggregates]
        return f"StructAgg({', '.join(parts)})"


@dataclass(frozen=True)
class SqlScanOp(LogicalOperator):
    """Leaf: scan a source with a pushed-down structured prefix.

    Never written by users — the pushdown pass replaces
    ``Scan → (StructFilter|Project|Limit|StructAgg)*`` with one of these.
    ``pushed`` holds the replaced operators in execution order (children
    severed); ``sql`` is the display-form SELECT the prefix compiles to.
    Surviving records are bit-identical to running the pushed operators
    row-at-a-time, because both paths share ``repro.sql`` evaluation.
    """

    source: DataSource = None  # type: ignore[assignment]
    pushed: tuple[LogicalOperator, ...] = ()
    sql: str = ""

    def label(self) -> str:
        return f"SqlScan({self.source.source_id}, {len(self.pushed)} ops)"


@dataclass(frozen=True)
class ProjectOp(LogicalOperator):
    """Keep only the named fields."""

    fields: tuple[str, ...] = ()

    def label(self) -> str:
        return f"Project({', '.join(self.fields)})"


@dataclass(frozen=True)
class LimitOp(LogicalOperator):
    """Stop after n records."""

    n: int = 0

    def label(self) -> str:
        return f"Limit({self.n})"


@dataclass(frozen=True)
class MaterializedScanOp(LogicalOperator):
    """Leaf: replay a materialized sub-plan prefix from the store.

    Never written by users — the reuse-aware optimizer substitutes one for
    a fingerprint-matched prefix (see :mod:`repro.sem.materialize`).  When
    the source grew by an appended delta, ``delta_records`` counts the new
    source records the physical operator runs through the reused prefix.
    """

    source_id: str = ""
    fingerprint: str = ""
    base_records: int = 0
    delta_records: int = 0

    def label(self) -> str:
        suffix = f", delta={self.delta_records}" if self.delta_records else ""
        return f"MaterializedScan({self.source_id}, fp={self.fingerprint[:8]}{suffix})"


@dataclass(frozen=True)
class RetrieveOp(LogicalOperator):
    """Access-path operator: top-k vector retrieval instead of a full scan.

    Only valid directly above a scan whose source supports search (a
    Context with a registered index); the optimizer and the Context layer
    insert these.
    """

    query: str = ""
    k: int = 10

    def label(self) -> str:
        return f"Retrieve(k={self.k}, {self.query[:30]!r})"


@dataclass(frozen=True)
class LogicalPlan:
    """An immutable logical plan (a pointer to the root operator)."""

    root: LogicalOperator
    metadata: dict = field(default_factory=dict, compare=False)

    def operators(self) -> list[LogicalOperator]:
        """All operators, leaves first (left-deep order)."""
        ordered: list[LogicalOperator] = []

        def visit(op: LogicalOperator | None) -> None:
            if op is None:
                return
            visit(op.child)
            if isinstance(op, SemJoinOp):
                visit(op.right)
            ordered.append(op)

        visit(self.root)
        return ordered

    def source_ops(self) -> list[ScanOp]:
        return [op for op in self.operators() if isinstance(op, ScanOp)]

    def explain(self) -> str:
        """Readable indented plan rendering (root at top)."""
        lines: list[str] = []

        def visit(op: LogicalOperator | None, depth: int) -> None:
            if op is None:
                return
            lines.append("  " * depth + op.label())
            if isinstance(op, SemJoinOp):
                visit(op.child, depth + 1)
                visit(op.right, depth + 1)
            else:
                visit(op.child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def replace_chain(self, new_chain: list[LogicalOperator]) -> "LogicalPlan":
        """Rebuild a linear plan from a leaves-first operator list."""
        if not new_chain:
            raise PlanError("cannot build a plan from an empty chain")
        current: LogicalOperator | None = None
        for op in new_chain:
            current = op.with_child(current)
        return LogicalPlan(root=current, metadata=dict(self.metadata))

    def is_linear(self) -> bool:
        return not any(isinstance(op, SemJoinOp) for op in self.operators())


def validate_plan(plan: LogicalPlan) -> None:
    """Raise :class:`PlanError` on structurally invalid plans."""
    ops = plan.operators()
    if not ops:
        raise PlanError("empty plan")
    for op in ops:
        if isinstance(op, ScanOp):
            if op.child is not None:
                raise PlanError("ScanOp must be a leaf")
            if op.source is None:
                raise PlanError("ScanOp requires a source")
        elif isinstance(op, SemJoinOp):
            if op.child is None or op.right is None:
                raise PlanError("SemJoinOp requires two inputs")
        elif isinstance(op, MaterializedScanOp):
            if op.child is not None:
                raise PlanError("MaterializedScanOp must be a leaf")
        elif isinstance(op, SqlScanOp):
            if op.child is not None:
                raise PlanError("SqlScanOp must be a leaf")
            if op.source is None:
                raise PlanError("SqlScanOp requires a source")
            if not op.pushed:
                raise PlanError("SqlScanOp requires at least one pushed operator")
        elif op.child is None:
            raise PlanError(f"{op.label()} is missing its input")
        if isinstance(op, StructFilterOp):
            from repro.sem.structql import compile_predicate

            compile_predicate(op.condition)
        if isinstance(op, StructAggOp):
            from repro.sem.structql import validate_aggregation

            validate_aggregation(op.group_by, op.aggregates)
        if isinstance(op, LimitOp) and op.n < 0:
            raise PlanError(f"Limit must be >= 0, got {op.n}")
        if isinstance(op, SemTopKOp) and op.k < 1:
            raise PlanError(f"TopK requires k >= 1, got {op.k}")
        if isinstance(op, RetrieveOp) and not isinstance(op.child, ScanOp):
            raise PlanError("RetrieveOp must sit directly above a scan")
