"""Structured-predicate evaluation shared by row mode and SQL pushdown.

The pushdown pass (``sem/optimizer/pushdown.py``) compiles structured
predicates, projections, and pre-aggregations into ``repro.sql`` execution
that runs before any LLM operator.  The row-mode escape hatch
(``PhysStructFilter`` / ``PhysStructAgg``) must agree with the pushed-down
path bit-for-bit — including SQL three-valued NULL logic — so both paths
funnel through this module: one parse (``repro.sql.parser``), one
evaluator (``repro.sql.executor``), one semantics.

Conventions:

- A predicate is the expression grammar accepted inside ``WHERE``.  A
  record satisfies it only when it evaluates to exactly ``TRUE``;
  ``FALSE`` and ``NULL`` both drop the record.
- A referenced field missing from a record (or explicitly ``None``) reads
  as SQL ``NULL`` — that is what "projection of missing typed fields"
  means for semi-structured records.
- Aggregations run through a real ``repro.sql`` table + SELECT, so GROUP
  BY grouping order, NULL handling, and empty-input behaviour are the SQL
  engine's, not a re-implementation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Mapping

from repro.errors import PlanError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Star,
    Subquery,
    UnaryOp,
)
from repro.sql.database import Database
from repro.sql.executor import Executor
from repro.sql.functions import is_aggregate
from repro.sql.parser import parse_expression

#: Binding name records are exposed under when evaluating predicates.
_ROW_BINDING = "r"

#: One stateless evaluator is enough: predicates reject subqueries, the
#: only construct that reads the catalog.
_EVALUATOR = Executor({})


@lru_cache(maxsize=512)
def compile_predicate(condition: str) -> Expr:
    """Parse and validate one structured predicate.

    Raises :class:`~repro.errors.PlanError` on syntax errors, aggregates,
    subqueries, or ``*`` — a predicate must be evaluable per record.
    """
    from repro.errors import SQLSyntaxError

    try:
        expr = parse_expression(condition)
    except SQLSyntaxError as exc:
        raise PlanError(f"invalid structured predicate {condition!r}: {exc}") from exc
    for node in walk_expression(expr):
        if isinstance(node, (Subquery, InSubquery)):
            raise PlanError(
                f"structured predicate {condition!r} may not contain a subquery"
            )
        if isinstance(node, Star):
            raise PlanError(f"structured predicate {condition!r} may not contain '*'")
        if isinstance(node, FuncCall) and (is_aggregate(node.name) or node.star):
            raise PlanError(
                f"structured predicate {condition!r} may not aggregate "
                f"({node.name.upper()})"
            )
        if isinstance(node, ColumnRef) and node.table is not None:
            raise PlanError(
                f"structured predicate {condition!r} may not qualify columns "
                f"({node.display()!r}); records have a single scope"
            )
    return expr


def walk_expression(expr: Expr):
    """Yield every node of an expression tree, root first."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expression(arg)
    elif isinstance(expr, InList):
        yield from walk_expression(expr.operand)
        for option in expr.options:
            yield from walk_expression(option)
    elif isinstance(expr, InSubquery):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, Between):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, Like):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.pattern)
    elif isinstance(expr, IsNull):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, CaseWhen):
        for condition, outcome in expr.whens:
            yield from walk_expression(condition)
            yield from walk_expression(outcome)
        if expr.otherwise is not None:
            yield from walk_expression(expr.otherwise)


def referenced_columns(condition: str) -> tuple[str, ...]:
    """Sorted field names a predicate reads."""
    expr = compile_predicate(condition)
    names = {
        node.name for node in walk_expression(expr) if isinstance(node, ColumnRef)
    }
    return tuple(sorted(names))


def normalized_condition(condition: str) -> str:
    """Whitespace/case-insensitive canonical form for fingerprinting.

    Two spellings of the same predicate (``priority>=2`` vs
    ``priority >= 2``) parse to the same AST; its repr is the canonical
    token.  Materialization fingerprints use this so pushed-down and
    row-mode plans compose with reuse.
    """
    return repr(compile_predicate(condition))


def evaluate_predicate(expr: Expr, fields: Mapping[str, Any]):
    """Three-valued evaluation of a compiled predicate over record fields.

    Returns ``True`` / ``False`` / ``None`` with exact SQL semantics —
    this is the ``repro.sql`` executor's own ``_eval``, handed an
    environment where every referenced-but-missing field is NULL.
    """
    scope = {
        node.name: fields.get(node.name)
        for node in walk_expression(expr)
        if isinstance(node, ColumnRef)
    }
    return _EVALUATOR._eval(expr, {_ROW_BINDING: scope})


def predicate_holds(condition: str, fields: Mapping[str, Any]) -> bool:
    """SQL WHERE semantics: keep only rows where the predicate is TRUE."""
    return evaluate_predicate(compile_predicate(condition), fields) is True


# ---------------------------------------------------------------------------
# Structured aggregation
# ---------------------------------------------------------------------------


def validate_aggregation(
    group_by: tuple[str, ...], aggregates: tuple[tuple[str, str], ...]
) -> None:
    """Fail fast on malformed struct_agg specs (at plan-build time)."""
    from repro.errors import SQLSyntaxError

    if not aggregates:
        raise PlanError("struct_agg needs at least one aggregate expression")
    seen: set[str] = set()
    for name in tuple(group_by) + tuple(alias for alias, _ in aggregates):
        if not name.isidentifier():
            raise PlanError(f"struct_agg output name {name!r} is not an identifier")
        if name in seen:
            raise PlanError(f"struct_agg output name {name!r} is duplicated")
        seen.add(name)
    for alias, expression in aggregates:
        try:
            expr = parse_expression(expression)
        except SQLSyntaxError as exc:
            raise PlanError(
                f"invalid aggregate expression {expression!r} for {alias!r}: {exc}"
            ) from exc
        if not any(
            isinstance(node, FuncCall) and (is_aggregate(node.name) or node.star)
            for node in walk_expression(expr)
        ):
            raise PlanError(
                f"aggregate expression {expression!r} for {alias!r} contains "
                f"no aggregate function"
            )


def aggregation_sql(
    table: str, group_by: tuple[str, ...], aggregates: tuple[tuple[str, str], ...]
) -> str:
    """The SELECT a struct_agg runs (also shown by EXPLAIN)."""
    items = list(group_by) + [
        f"{expression} AS {alias}" for alias, expression in aggregates
    ]
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if group_by:
        sql += f" GROUP BY {', '.join(group_by)}"
    return sql


def _aggregation_input_columns(
    group_by: tuple[str, ...], aggregates: tuple[tuple[str, str], ...]
) -> list[str]:
    columns = list(group_by)
    for _, expression in aggregates:
        for node in walk_expression(parse_expression(expression)):
            if isinstance(node, ColumnRef) and node.name not in columns:
                columns.append(node.name)
    return columns


def run_aggregation(
    rows: list[Mapping[str, Any]],
    group_by: tuple[str, ...],
    aggregates: tuple[tuple[str, str], ...],
) -> list[dict[str, Any]]:
    """Aggregate record fields through a real ``repro.sql`` SELECT.

    Builds an in-memory table from the rows (missing fields become NULL)
    and executes ``aggregation_sql``.  With zero input rows the table is
    created from the referenced columns (all TEXT) so SQL's empty-input
    semantics apply: GROUP BY yields no groups; a global aggregate yields
    one row (COUNT 0, SUM/AVG/MIN/MAX NULL).
    """
    database = Database()
    needed = _aggregation_input_columns(group_by, aggregates)
    table_rows = [
        {column: row.get(column) for column in needed} for row in rows
    ]
    if table_rows:
        database.create_table_from_rows("t", table_rows)
    else:
        from repro.sql.table import Column, Table

        database._catalog["t"] = Table("t", [Column(name) for name in needed])
    return database.query(aggregation_sql("t", group_by, aggregates))
