"""Standing queries: incremental view maintenance over delta execution.

The paper's ContextManager envisions analytics that stay *live* as new
evidence arrives.  This module turns the fingerprinted delta execution of
:mod:`repro.sem.materialize` into continuous *standing queries*: a
registered :class:`~repro.sem.dataset.Dataset` plan re-evaluates
incrementally as its :class:`~repro.data.sources.DataSource`\\ s receive
``append``/``update`` events, so repeated evaluation costs O(delta)
instead of O(stream).

How a tick works:

1. Sources publish :class:`~repro.data.sources.SourceEvent`\\ s to the
   :class:`StandingQueryManager`, which accumulates them as *pending* work
   per standing query (updates additionally cascade an invalidation
   through :meth:`~repro.core.context_manager.ContextManager.invalidate`
   and the source's bumped ``content_version``).
2. :meth:`StandingQueryManager.pump` evaluates each query's
   :class:`RefreshPolicy` — count / interval / watermark triggers, or the
   freshness-vs-cost *governor* that consults
   :class:`~repro.obs.stats.StatisticsStore` priors to decide "refresh now
   vs batch more appends".
3. A due refresh re-runs the plan.  The shared
   :class:`~repro.sem.materialize.MaterializationStore` classifies each
   fingerprinted prefix as a delta hit, so only the appended records flow
   through the delta-safe prefix; past unsafe boundaries (group-by, join,
   top-k, limit) execution falls back to a scoped recompute over the
   merged record set.  Because simulated answers and derived uids are pure
   functions of lineage, the tick's result is bit-identical to a
   from-scratch run.
4. The tick emits a **changelog** of result deltas — insert/retract
   entries carrying the affected records (and through them the lineage
   uids) — computed as a minimal sequence diff against the previous view.
   :func:`fold_changelog` replays a changelog onto any prior state and
   reproduces the current view exactly.

Empty-delta ticks are zero-cost no-ops: a trigger that fires with nothing
pending records a skipped tick without touching the engine or the clock.

Observability: ``standing-query`` (registration), ``standing-tick`` (one
refresh) and ``changelog`` (the emitted deltas) span kinds, plus
``streaming.*`` counters.  :meth:`StandingQuery.explain` appends a
refresh-provenance footer to the usual EXPLAIN ANALYZE rendering.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from itertools import groupby
from typing import TYPE_CHECKING, Any, Callable

from repro.data.records import DataRecord
from repro.data.sources import DataSource, SourceEvent
from repro.errors import QuotaExceededError, StreamingError

if TYPE_CHECKING:
    from repro.sem.config import QueryProcessorConfig
    from repro.sem.dataset import Dataset

_TRIGGERS = ("count", "interval", "watermark", "governor")

#: A pluggable refresh executor: ``(query, tag) -> (records, cost_usd,
#: time_s, report_or_None)``.  The default runs the plan directly; the
#: serving layer substitutes admission-controlled submission.
RefreshRunner = Callable[["StandingQuery", str], tuple]


@dataclass(frozen=True)
class RefreshPolicy:
    """When a standing query's pending events justify a refresh.

    - ``count`` — refresh once ``count`` appended records are pending.
    - ``interval`` — refresh every ``interval_s`` virtual seconds (fires
      even with an empty delta; the tick is then a zero-cost no-op).
    - ``watermark`` — refresh when a pending event's event time falls at
      or below the watermark (max event time seen minus ``lateness_s``).
      Events arriving already below the watermark are *late*: counted,
      immediately ripe, never regressing the watermark.
    - ``governor`` — the freshness-vs-cost budget governor: estimate the
      pending delta's refresh cost from learned priors and batch more
      appends until it clears ``min_batch_usd`` (amortizing per-refresh
      overhead), unless ``max_staleness_s`` forces the issue first.

    Update events always force a refresh at the next pump regardless of
    the trigger — an in-place rewrite makes the standing view stale in a
    way batching cannot excuse.
    """

    trigger: str = "count"
    count: int = 1
    interval_s: float = 60.0
    lateness_s: float = 0.0
    #: Governor: defer until the estimated refresh spend reaches this.
    min_batch_usd: float = 0.0
    #: Governor: refresh regardless once the view is this stale (None =
    #: batch indefinitely while the estimate stays under the floor).
    max_staleness_s: float | None = None

    def __post_init__(self) -> None:
        if self.trigger not in _TRIGGERS:
            raise StreamingError(
                f"unknown refresh trigger {self.trigger!r}; "
                f"expected one of {_TRIGGERS}"
            )
        if self.count < 1:
            raise StreamingError(f"count must be >= 1, got {self.count}")
        if self.interval_s < 0 or self.lateness_s < 0 or self.min_batch_usd < 0:
            raise StreamingError("policy intervals and budgets must be >= 0")
        if self.max_staleness_s is not None and self.max_staleness_s < 0:
            raise StreamingError(
                f"max_staleness_s must be >= 0, got {self.max_staleness_s}"
            )


@dataclass(frozen=True)
class ChangeEntry:
    """One result delta: a record inserted into or retracted from the view.

    ``position`` indexes the *pre-tick* view for retracts and the
    *post-tick* view for inserts, so applying a tick's retracts (by
    descending position) and then its inserts (ascending) reconstructs the
    new view exactly — see :func:`fold_changelog`.
    """

    kind: str  # "insert" | "retract"
    tick: int
    position: int
    record: DataRecord

    @property
    def uid(self) -> str:
        return self.record.uid

    @property
    def lineage(self) -> tuple[str, ...]:
        """Parent uids of the affected record (provenance)."""
        return self.record.parent_uids


@dataclass
class TickResult:
    """What one evaluated trigger firing produced."""

    name: str
    tick: int
    #: What fired: register|count|interval|watermark|governor|staleness|
    #: update|forced (deferred quota rejections keep their firing cause).
    fired: str
    at_s: float
    #: Empty-delta no-op: the trigger fired but nothing was pending, so no
    #: execution happened (zero cost, zero clock).
    skipped: bool = False
    #: Admission control rejected the refresh; pending events are retained
    #: and the next pump retries.
    deferred: bool = False
    pending_appends: int = 0
    pending_updates: int = 0
    #: Governor's prior-based spend estimate for this refresh (None = no
    #: usable priors / non-governor trigger).
    est_cost_usd: float | None = None
    cost_usd: float = 0.0
    time_s: float = 0.0
    reused_prefix: int = 0
    reuse_kind: str = ""
    delta_records: int = 0
    inserts: int = 0
    retracts: int = 0
    changelog: list[ChangeEntry] = field(default_factory=list)


def _record_key(record: DataRecord) -> tuple[str, str]:
    """Hashable identity for diffing: uid + a stable field rendering."""
    return record.uid, repr(sorted(record.fields.items()))


def diff_records(
    before: list[DataRecord], after: list[DataRecord], tick: int
) -> list[ChangeEntry]:
    """Minimal insert/retract sequence edit turning ``before`` into ``after``."""
    matcher = difflib.SequenceMatcher(
        a=[_record_key(record) for record in before],
        b=[_record_key(record) for record in after],
        autojunk=False,
    )
    entries: list[ChangeEntry] = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag in ("delete", "replace"):
            for position in range(i1, i2):
                entries.append(
                    ChangeEntry("retract", tick, position, before[position])
                )
        if tag in ("insert", "replace"):
            for position in range(j1, j2):
                entries.append(
                    ChangeEntry("insert", tick, position, after[position])
                )
    return entries


def fold_changelog(
    base: list[DataRecord], entries: list[ChangeEntry]
) -> list[DataRecord]:
    """Replay a changelog onto ``base``, returning the resulting view.

    Entries must be in emission order (grouped by tick); folding the full
    changelog from an empty base reproduces the standing query's current
    records bit-identically.
    """
    state = list(base)
    for _tick, group in groupby(entries, key=lambda entry: entry.tick):
        batch = list(group)
        retracts = sorted(
            (entry for entry in batch if entry.kind == "retract"),
            key=lambda entry: entry.position,
            reverse=True,
        )
        for entry in retracts:
            if not 0 <= entry.position < len(state) or (
                state[entry.position].uid != entry.record.uid
            ):
                raise StreamingError(
                    f"changelog retract at position {entry.position} does "
                    f"not match the folded state (tick {entry.tick})"
                )
            del state[entry.position]
        inserts = sorted(
            (entry for entry in batch if entry.kind == "insert"),
            key=lambda entry: entry.position,
        )
        for entry in inserts:
            if entry.position > len(state):
                raise StreamingError(
                    f"changelog insert at position {entry.position} is out "
                    f"of range for the folded state (tick {entry.tick})"
                )
            state.insert(entry.position, entry.record)
    return state


class StandingQuery:
    """One registered plan plus its live view and pending-event state."""

    def __init__(
        self,
        name: str,
        dataset: "Dataset",
        config: "QueryProcessorConfig | None",
        policy: RefreshPolicy,
        sources: list[DataSource],
        runner: RefreshRunner,
        clock: Any,
        tracer: Any,
        metrics: Any,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.config = config
        self.policy = policy
        self.sources = sources
        self.runner = runner
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        #: The current standing view (last refresh's result records).
        self.records: list[DataRecord] = []
        #: Full changelog across all ticks, in emission order.
        self.changelog: list[ChangeEntry] = []
        #: Every evaluated firing (refreshes, no-ops, and deferrals).
        self.ticks: list[TickResult] = []
        self.tick_count = 0
        self.last_refresh_s = 0.0
        self.cumulative_cost_usd = 0.0
        # Pending-event accounting since the last completed refresh.
        self.pending_appends = 0
        self.pending_updates = 0
        self.pending_event_times: list[float | None] = []
        self.max_event_time_s: float | None = None
        self.late_events = 0
        self.governor_deferrals = 0
        # Last completed run's artifacts (refresh provenance + governor).
        self.last_result = None
        self.last_report = None
        self.last_stats_plan = None

    @property
    def watermark_s(self) -> float | None:
        """Max event time seen minus allowed lateness (None = no events)."""
        if self.max_event_time_s is None:
            return None
        return self.max_event_time_s - self.policy.lateness_s

    def folded(self) -> list[DataRecord]:
        """The changelog folded from empty — must equal :attr:`records`."""
        return fold_changelog([], self.changelog)

    # -- refresh provenance (EXPLAIN footer) ----------------------------

    def refresh_footer(self) -> str:
        """Render the refresh-provenance footer for EXPLAIN output."""
        refreshes = sum(
            1 for tick in self.ticks if not tick.skipped and not tick.deferred
        )
        skipped = sum(1 for tick in self.ticks if tick.skipped)
        deferred = sum(1 for tick in self.ticks if tick.deferred)
        lines = [
            f"standing query {self.name!r}: {len(self.ticks)} ticks "
            f"({refreshes} refreshes, {skipped} empty no-ops, "
            f"{deferred} deferred), trigger={self.policy.trigger}, "
            f"cumulative cost ${self.cumulative_cost_usd:.4f}"
        ]
        if self.ticks:
            tick = self.ticks[-1]
            line = (
                f"last tick {tick.tick}: fired by {tick.fired} at "
                f"{tick.at_s:.1f}s"
            )
            if tick.skipped:
                line += ", empty delta (zero-cost no-op)"
            elif tick.deferred:
                line += ", deferred by admission control"
            else:
                reuse = (
                    f"{tick.reuse_kind} prefix={tick.reused_prefix} "
                    f"({tick.delta_records} delta records)"
                    if tick.reused_prefix
                    else "full recompute"
                )
                line += (
                    f", {reuse}, changelog +{tick.inserts}/-{tick.retracts}, "
                    f"cost ${tick.cost_usd:.4f}"
                )
            if tick.est_cost_usd is not None:
                line += f", governor est ${tick.est_cost_usd:.4f}"
            lines.append(line)
        if self.policy.trigger == "watermark":
            watermark = self.watermark_s
            lines.append(
                "watermark: "
                + (f"{watermark:.1f}s" if watermark is not None else "unset")
                + (
                    f" (max event time {self.max_event_time_s:.1f}s, "
                    if self.max_event_time_s is not None
                    else " ("
                )
                + f"lateness {self.policy.lateness_s:.1f}s, "
                f"{self.late_events} late events)"
            )
        return "\n".join(lines)

    def explain(self) -> str:
        """EXPLAIN ANALYZE of the last refresh plus the refresh footer."""
        body = ""
        if self.last_result is not None and self.last_report is not None:
            from repro.sem.explain import explain_analyze

            body = explain_analyze(self.last_result, self.last_report) + "\n\n"
        return body + self.refresh_footer()


class StandingQueryManager:
    """Registers standing queries and drives their incremental refreshes.

    One manager watches many queries over shared substrate components; all
    of ``clock``/``tracer``/``metrics`` default per query to the
    registered config's LLM.  ``store`` (a shared
    :class:`~repro.sem.materialize.MaterializationStore`) is attached to
    registered configs that lack one, so delta reuse works out of the box;
    ``context_manager`` receives the invalidation cascade on update
    events; ``stats_store`` feeds the governor's estimates and is told
    about source-version changes so selectivity priors decay instead of
    serving stale cardinalities.
    """

    def __init__(
        self,
        clock: Any = None,
        tracer: Any = None,
        metrics: Any = None,
        store: Any = None,
        stats_store: Any = None,
        context_manager: Any = None,
    ) -> None:
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        self.store = store
        self.stats_store = stats_store
        self.context_manager = context_manager
        self.queries: dict[str, StandingQuery] = {}
        self._watchers: dict[int, list[StandingQuery]] = {}
        self._subscribed: set[int] = set()

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        dataset: "Dataset",
        config: "QueryProcessorConfig | None" = None,
        policy: RefreshPolicy | None = None,
        runner: RefreshRunner | None = None,
        prime: bool = True,
    ) -> StandingQuery:
        """Register ``dataset`` as a standing query named ``name``.

        With ``prime=True`` (default) the plan runs once immediately
        (tick 0, cause ``register``) to establish the base view and warm
        the materialized prefixes that later ticks replay.
        """
        if name in self.queries:
            raise StreamingError(f"standing query {name!r} already registered")
        if config is None and runner is None:
            raise StreamingError(
                "register() needs a QueryProcessorConfig (default runner) "
                "or an explicit runner"
            )
        if config is not None:
            if (
                getattr(config, "materialization_store", None) is None
                and self.store is not None
            ):
                config.materialization_store = self.store
            if (
                getattr(config, "stats_store", None) is None
                and self.stats_store is not None
            ):
                config.stats_store = self.stats_store
        sources = [
            op.source
            for op in dataset.plan().source_ops()
            if op.source is not None and hasattr(op.source, "subscribe")
        ]
        if not sources:
            raise StreamingError(
                f"standing query {name!r} has no subscribable DataSource; "
                "standing queries need an event-publishing source "
                "(e.g. MemorySource)"
            )
        clock = self.clock if self.clock is not None else config.llm.clock
        tracer = self.tracer if self.tracer is not None else config.llm.tracer
        metrics = (
            self.metrics if self.metrics is not None else config.llm.metrics
        )
        query = StandingQuery(
            name=name,
            dataset=dataset,
            config=config,
            policy=policy or RefreshPolicy(),
            sources=sources,
            runner=runner or _default_runner,
            clock=clock,
            tracer=tracer,
            metrics=metrics,
        )
        query.last_refresh_s = clock.elapsed
        self.queries[name] = query
        for source in sources:
            self._watchers.setdefault(id(source), []).append(query)
            if id(source) not in self._subscribed:
                self._subscribed.add(id(source))
                source.subscribe(self._on_event)
        if tracer.enabled:
            with tracer.span(
                f"standing:{name}",
                kind="standing-query",
                trigger=query.policy.trigger,
                sources=[source.source_id for source in sources],
            ):
                pass
        self._count(query, "streaming.queries")
        if prime:
            self._refresh(query, "register", clock.elapsed)
        return query

    # -- event intake ---------------------------------------------------

    def _on_event(self, event: SourceEvent) -> None:
        """Source callback: accumulate pending work, cascade invalidation."""
        watchers = [
            query
            for queries in self._watchers.values()
            for query in queries
            if any(
                source.source_id == event.source_id for source in query.sources
            )
        ]
        # id()-keyed watcher lists can alias one query twice only if it
        # reads the same source object twice; dedupe by name.
        seen: dict[str, StandingQuery] = {}
        for query in watchers:
            seen.setdefault(query.name, query)
        if self.stats_store is not None and hasattr(
            self.stats_store, "note_dataset_version"
        ):
            self.stats_store.note_dataset_version(
                event.source_id, event.version, change=event.kind
            )
        if event.kind == "update":
            self._invalidate_for_update(event, seen.values())
        for query in seen.values():
            if event.kind == "append":
                rows = len(event.uids)
                query.pending_appends += rows
                query.pending_event_times.append(event.event_time_s)
                if event.event_time_s is not None:
                    watermark = query.watermark_s
                    if (
                        watermark is not None
                        and event.event_time_s <= watermark
                    ):
                        query.late_events += 1
                        self._count(query, "streaming.late_events")
                    if (
                        query.max_event_time_s is None
                        or event.event_time_s > query.max_event_time_s
                    ):
                        query.max_event_time_s = event.event_time_s
                self._count(query, "streaming.appends")
                self._count(query, "streaming.appended_records", rows)
            else:
                query.pending_updates += len(event.uids)
                self._count(query, "streaming.updates")

    def _invalidate_for_update(self, event: SourceEvent, queries) -> None:
        """Cascade an in-place update into every reuse layer.

        The bumped ``content_version`` already guarantees the next match
        classifies stale entries as ``update``; the eager eviction here
        (through :meth:`ContextManager.invalidate` when wired) keeps the
        shared stores honest for *other* consumers between pumps.
        """
        stores = []
        if self.store is not None:
            stores.append(self.store)
        if self.context_manager is not None:
            attached = getattr(
                self.context_manager, "materialization_store", None
            )
            if attached is not None:
                stores.append(attached)
        for query in queries:
            store = getattr(query.config, "materialization_store", None)
            if store is not None:
                stores.append(store)
        handled = set()
        for store in stores:
            if id(store) in handled:
                continue
            handled.add(id(store))
            store.invalidate_sources([event.source_id], kind="update")
        # Context-level cascade after the stores: evicted contexts built on
        # the source go stale too (their own store pass is then a no-op).
        if self.context_manager is not None:
            self.context_manager.invalidate(event.source_id)

    # -- trigger evaluation ---------------------------------------------

    def pump(self, now_s: float | None = None) -> list[TickResult]:
        """Evaluate every query's trigger; run the due refreshes."""
        results = []
        for query in list(self.queries.values()):
            now = now_s if now_s is not None else query.clock.elapsed
            cause = self._due(query, now)
            if cause is None:
                continue
            results.append(self._refresh(query, cause, now))
        return results

    def refresh(self, name: str, cause: str = "forced") -> TickResult:
        """Force one query's refresh regardless of its trigger."""
        query = self.queries.get(name)
        if query is None:
            raise StreamingError(f"no standing query named {name!r}")
        return self._refresh(query, cause, query.clock.elapsed)

    def _due(self, query: StandingQuery, now: float) -> str | None:
        """The cause firing ``query`` now, or None to keep batching."""
        if query.pending_updates:
            return "update"
        policy = query.policy
        pending = query.pending_appends
        if policy.trigger == "count":
            return "count" if pending >= policy.count else None
        if policy.trigger == "interval":
            due = now - query.last_refresh_s >= policy.interval_s
            return "interval" if due else None
        if policy.trigger == "watermark":
            if not pending:
                return None
            watermark = query.watermark_s
            ripe = any(
                event_time is None
                or (watermark is not None and event_time <= watermark)
                for event_time in query.pending_event_times
            )
            return "watermark" if ripe else None
        # governor: freshness vs cost.
        if not pending:
            return None
        if (
            policy.max_staleness_s is not None
            and now - query.last_refresh_s >= policy.max_staleness_s
        ):
            return "staleness"
        estimate = self._estimate_refresh_cost(query, pending)
        if estimate is None or estimate >= policy.min_batch_usd:
            return "governor"
        query.governor_deferrals += 1
        self._count(query, "streaming.governor_deferrals")
        return None

    def _estimate_refresh_cost(
        self, query: StandingQuery, pending_rows: int
    ) -> float | None:
        """Prior-based spend estimate for refreshing the pending delta.

        Composes learned per-operator cost-per-record and selectivity down
        the plan's statistics keys; None (no usable priors yet) means the
        governor cannot justify deferring and refreshes immediately.
        """
        stats_store = self.stats_store
        if stats_store is None and query.config is not None:
            stats_store = getattr(query.config, "stats_store", None)
        if stats_store is None or not query.last_stats_plan:
            return None
        rows = float(pending_rows)
        total = 0.0
        informed = False
        for entry in query.last_stats_plan:
            if entry is None:
                continue
            prior = stats_store.usable_prior(entry.get("key"))
            if prior is None:
                continue
            informed = True
            total += rows * prior.cost_per_record
            rows *= prior.selectivity
        return total if informed else None

    # -- refresh execution ----------------------------------------------

    def _refresh(
        self, query: StandingQuery, cause: str, now: float
    ) -> TickResult:
        tick_index = query.tick_count
        pending_appends = query.pending_appends
        pending_updates = query.pending_updates
        estimate = (
            self._estimate_refresh_cost(query, pending_appends)
            if query.policy.trigger == "governor"
            else None
        )
        tick = TickResult(
            name=query.name,
            tick=tick_index,
            fired=cause,
            at_s=now,
            pending_appends=pending_appends,
            pending_updates=pending_updates,
            est_cost_usd=estimate,
        )

        # Empty-delta no-op: nothing pending, nothing to run, zero cost.
        if cause != "register" and not pending_appends and not pending_updates:
            tick.skipped = True
            query.tick_count += 1
            query.ticks.append(tick)
            query.last_refresh_s = now
            if query.tracer.enabled:
                with query.tracer.span(
                    f"standing:{query.name}:tick{tick_index}",
                    kind="standing-tick",
                    fired=cause,
                    skipped=True,
                ):
                    pass
            self._count(query, "streaming.ticks")
            self._count(query, "streaming.empty_ticks")
            return tick

        tag = f"standing:{query.name}:t{tick_index}"
        tracer = query.tracer
        span_ctx = (
            tracer.span(
                f"standing:{query.name}:tick{tick_index}",
                kind="standing-tick",
                fired=cause,
                pending_appends=pending_appends,
                pending_updates=pending_updates,
            )
            if tracer.enabled
            else _null_span()
        )
        with span_ctx as tick_span:
            try:
                records, cost_usd, time_s, report = query.runner(query, tag)
            except QuotaExceededError:
                tick.deferred = True
                query.tick_count += 1
                query.ticks.append(tick)
                if tick_span is not None:
                    tick_span.attributes["deferred"] = True
                self._count(query, "streaming.ticks")
                self._count(query, "streaming.deferred")
                return tick

            changelog = diff_records(query.records, records, tick_index)
            tick.changelog = changelog
            tick.inserts = sum(1 for e in changelog if e.kind == "insert")
            tick.retracts = sum(1 for e in changelog if e.kind == "retract")
            tick.cost_usd = cost_usd
            tick.time_s = time_s
            if report is not None:
                tick.reused_prefix = report.reused_prefix
                tick.reuse_kind = report.reuse_kind
                tick.delta_records = report.reuse_delta_records
                query.last_report = report
                query.last_stats_plan = report.stats_plan
            query.records = list(records)
            query.changelog.extend(changelog)
            query.cumulative_cost_usd += cost_usd
            query.tick_count += 1
            query.ticks.append(tick)
            query.pending_appends = 0
            query.pending_updates = 0
            query.pending_event_times = []
            query.last_refresh_s = query.clock.elapsed
            if tick_span is not None:
                tick_span.attributes.update(
                    cost_usd=round(cost_usd, 6),
                    inserts=tick.inserts,
                    retracts=tick.retracts,
                    reused_prefix=tick.reused_prefix,
                    reuse_kind=tick.reuse_kind,
                    records=len(records),
                )
                with tracer.span(
                    f"standing:{query.name}:changelog",
                    kind="changelog",
                    tick=tick_index,
                    inserts=tick.inserts,
                    retracts=tick.retracts,
                ):
                    pass
        self._count(query, "streaming.ticks")
        self._count(query, "streaming.refreshes")
        self._count(query, "streaming.inserts", tick.inserts)
        self._count(query, "streaming.retracts", tick.retracts)
        self._count(query, "streaming.delta_records", pending_appends)
        return tick

    # -- internals ------------------------------------------------------

    def _count(self, query: StandingQuery, name: str, amount: float = 1) -> None:
        metrics = query.metrics if query is not None else self.metrics
        if metrics is not None and metrics.enabled and amount:
            metrics.counter(name).inc(amount)


def _default_runner(query: StandingQuery, tag: str) -> tuple:
    """Run the plan directly on the registered config's substrate."""
    config = query.config
    llm = config.llm
    previous_tag = config.tag
    checkpoint = llm.tracker.checkpoint()
    time_before = llm.clock.elapsed
    config.tag = tag
    try:
        result, report = query.dataset.run_with_report(config)
    finally:
        config.tag = previous_tag
    query.last_result = result
    usage = llm.tracker.since(checkpoint)
    return result.records, usage.cost_usd, llm.clock.elapsed - time_before, report


class _null_span:
    """Minimal no-op context manager for disabled tracers."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False
