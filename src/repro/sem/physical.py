"""Physical operators.

Each physical operator executes one logical operator against a materialized
batch of records, charging the simulated LLM for every semantic call.  The
engine (see :mod:`repro.sem.execution`) wires operators together and
collects statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.data.records import DataRecord
from repro.errors import ExecutionError, TransientLLMError
from repro.llm.embeddings import top_k_similar
from repro.llm.simulated import SimulatedLLM
from repro.sem import logical as L

import numpy as np

T = TypeVar("T")

#: Valid per-record degradation modes when a call exhausts its retries.
FAILURE_MODES = ("skip", "fallback", "raise")


@dataclass
class ExecutionContext:
    """Shared state for one plan execution."""

    llm: SimulatedLLM
    parallelism: int = 1
    tag: str = "exec"
    #: What an operator does when a semantic call fails even after the LLM
    #: substrate's retries: "skip" flags the record and moves on, "fallback"
    #: re-asks ``fallback_model`` once (then skips), "raise" propagates.
    on_failure: str = "skip"
    #: Cheaper tier used by the "fallback" mode.
    fallback_model: str | None = None
    #: (record uid, error class name) for every degraded record, in order.
    failures: list[tuple[str, str]] = field(default_factory=list)

    def guarded(
        self, uid: str, model: str, call: Callable[[str], T]
    ) -> T | None:
        """Run ``call(model)`` under the failure policy; None means degraded."""
        try:
            return call(model)
        except TransientLLMError as exc:
            if self.on_failure == "raise":
                raise
            if (
                self.on_failure == "fallback"
                and self.fallback_model
                and self.fallback_model != model
            ):
                try:
                    return call(self.fallback_model)
                except TransientLLMError as fallback_exc:
                    exc = fallback_exc
            self.failures.append((uid, type(exc).__name__))
            return None


class PhysicalOperator(abc.ABC):
    """Executes one logical operator over a batch of records."""

    def __init__(self, logical_op: L.LogicalOperator, model: str | None = None) -> None:
        self.logical_op = logical_op
        self.model = model

    @abc.abstractmethod
    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        """Transform ``records``; must not mutate the input list."""

    def label(self) -> str:
        suffix = f" [{self.model}]" if self.model else ""
        return self.logical_op.label() + suffix


class PhysScan(PhysicalOperator):
    logical_op: L.ScanOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        if records:
            raise ExecutionError("scan is a leaf; it takes no input records")
        return list(self.logical_op.source.iterate())


class PhysRetrieve(PhysicalOperator):
    """Top-k vector retrieval over the upstream scan's records.

    If the scan's source exposes a prebuilt vector index (a Context with a
    registered index), retrieval delegates to it; otherwise records are
    embedded on the fly (embeddings are cached, so this cost is paid once).
    """

    logical_op: L.RetrieveOp

    def __init__(
        self,
        logical_op: L.RetrieveOp,
        model: str | None = None,
        source: object | None = None,
    ) -> None:
        super().__init__(logical_op, model)
        self.source = source

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        if self.source is not None and hasattr(self.source, "vector_search"):
            hits = self.source.vector_search(op.query, op.k, llm=ctx.llm)
            return [record for record, _ in hits]
        if not records:
            return []
        query_vec = ctx.llm.embed(op.query, tag=f"{ctx.tag}:retrieve")
        matrix = np.stack(
            [ctx.llm.embed(record.as_text(), tag=f"{ctx.tag}:retrieve") for record in records]
        )
        hits = top_k_similar(query_vec, matrix, op.k)
        return [records[index] for index, _ in hits]


class PhysSemFilter(PhysicalOperator):
    logical_op: L.SemFilterOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        kept: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                judgment = ctx.guarded(
                    record.uid,
                    model,
                    lambda m, record=record: ctx.llm.judge_filter(
                        op.instruction, record, model=m, tag=f"{ctx.tag}:filter"
                    ),
                )
                if judgment is not None and judgment.answer:
                    kept.append(record)
        return kept


class PhysSemMap(PhysicalOperator):
    logical_op: L.SemMapOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        output: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                new_fields = {}
                for schema_field, instruction in op.outputs:
                    extraction = ctx.guarded(
                        record.uid,
                        model,
                        lambda m, record=record, instruction=instruction: ctx.llm.extract(
                            instruction, record, model=m, tag=f"{ctx.tag}:map"
                        ),
                    )
                    # Degraded extractions surface as None (flagged in
                    # ctx.failures), keeping the record and its other fields.
                    new_fields[schema_field.name] = (
                        schema_field.coerce(extraction.value)
                        if extraction is not None
                        else None
                    )
                output.append(record.derive(new_fields))
        return output


class PhysSemClassify(PhysicalOperator):
    logical_op: L.SemClassifyOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        output: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                result = ctx.guarded(
                    record.uid,
                    model,
                    lambda m, record=record: ctx.llm.classify(
                        op.instruction, list(op.options), record,
                        model=m, tag=f"{ctx.tag}:classify",
                    ),
                )
                value = result.value if result is not None else None
                output.append(record.derive({op.output_field: value}))
        return output


class PhysSemGroupBy(PhysicalOperator):
    """Classify-then-partition implementation of the semantic group-by."""

    logical_op: L.SemGroupByOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        groups: dict[str, list[DataRecord]] = {}
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                result = ctx.guarded(
                    record.uid,
                    model,
                    lambda m, record=record: ctx.llm.classify(
                        op.instruction, list(op.groups), record,
                        model=m, tag=f"{ctx.tag}:groupby",
                    ),
                )
                if result is None:
                    continue  # degraded: record is flagged and ungrouped
                groups.setdefault(str(result.value), []).append(record)

        output: list[DataRecord] = []
        for group in op.groups:
            members = groups.get(group, [])
            if not members:
                continue
            fields: dict = {"group": group, "count": len(members)}
            if op.summarize:
                joined_text = "\n---\n".join(
                    member.as_text() for member in members
                )[:AGG_TEXT_BUDGET]
                completion = ctx.guarded(
                    f"group:{group}",
                    model or "gpt-4o",
                    lambda m, group=group, joined_text=joined_text: ctx.llm.complete(
                        f"Summarize the records in group {group!r}: "
                        f"{op.instruction}\n\n{joined_text}",
                        model=m,
                        tag=f"{ctx.tag}:groupby",
                    ),
                )
                fields["summary"] = completion.text if completion is not None else None
            output.append(
                DataRecord(
                    fields=fields,
                    parent_uids=tuple(member.uid for member in members),
                )
            )
        return output


class PhysSemJoinBlocked(PhysicalOperator):
    """Embedding-blocked semantic join.

    Classic blocking applied to LLM joins: pairs are pre-screened by
    embedding similarity and only the most promising candidates are sent
    to the model for judgment.  Cuts the O(n*m) judgment cost at a small
    recall risk (pairs below the similarity floor are never judged).
    """

    logical_op: L.SemJoinOp

    def __init__(
        self,
        logical_op: L.SemJoinOp,
        right_ops: "list[PhysicalOperator]",
        model: str | None = None,
        similarity_floor: float = 0.10,
        max_candidates_per_left: int = 8,
    ) -> None:
        super().__init__(logical_op, model)
        self.right_ops = right_ops
        self.similarity_floor = similarity_floor
        self.max_candidates_per_left = max_candidates_per_left

    def label(self) -> str:
        return super().label() + " (blocked)"

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        right_records: list[DataRecord] = []
        for op in self.right_ops:
            right_records = op.execute(right_records, ctx)
        if not records or not right_records:
            return []
        model = self.model or self.logical_op.model
        tag = f"{ctx.tag}:join"
        right_matrix = np.stack(
            [ctx.llm.embed(record.as_text(), tag=tag) for record in right_records]
        )
        joined: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for left in records:
                left_vec = ctx.llm.embed(left.as_text(), tag=tag)
                hits = top_k_similar(left_vec, right_matrix, self.max_candidates_per_left)
                for index, similarity in hits:
                    if similarity < self.similarity_floor:
                        break  # hits are sorted descending
                    right = right_records[index]
                    judgment = ctx.guarded(
                        f"{left.uid}|{right.uid}",
                        model,
                        lambda m, left=left, right=right: ctx.llm.judge_join(
                            self.logical_op.instruction, left, right, model=m, tag=tag
                        ),
                    )
                    if judgment is not None and judgment.answer:
                        joined.append(DataRecord.merge(left, right))
        return joined


class PhysSemJoin(PhysicalOperator):
    """Nested-loop semantic join: one judgment per candidate pair."""

    logical_op: L.SemJoinOp

    def __init__(
        self,
        logical_op: L.SemJoinOp,
        right_ops: "list[PhysicalOperator]",
        model: str | None = None,
    ) -> None:
        super().__init__(logical_op, model)
        self.right_ops = right_ops

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        right_records: list[DataRecord] = []
        for op in self.right_ops:
            right_records = op.execute(right_records, ctx)
        model = self.model or self.logical_op.model
        joined: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for left in records:
                for right in right_records:
                    judgment = ctx.guarded(
                        f"{left.uid}|{right.uid}",
                        model,
                        lambda m, left=left, right=right: ctx.llm.judge_join(
                            self.logical_op.instruction, left, right,
                            model=m, tag=f"{ctx.tag}:join",
                        ),
                    )
                    if judgment is not None and judgment.answer:
                        joined.append(DataRecord.merge(left, right))
        return joined


#: Character budget for the concatenated input of a semantic aggregation.
AGG_TEXT_BUDGET = 24_000


class PhysSemAgg(PhysicalOperator):
    logical_op: L.SemAggOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        chunks: list[str] = []
        used = 0
        for record in records:
            text = record.as_text()
            if used + len(text) > AGG_TEXT_BUDGET:
                break
            chunks.append(text)
            used += len(text)
        prompt = op.instruction + "\n\n" + "\n---\n".join(chunks)
        completion = ctx.guarded(
            "agg",
            model or "gpt-4o",
            lambda m: ctx.llm.complete(prompt, model=m, tag=f"{ctx.tag}:agg"),
        )
        result = DataRecord(
            fields={op.output_field: completion.text if completion is not None else None},
            parent_uids=tuple(record.uid for record in records),
        )
        return [result]


class PhysSemTopK(PhysicalOperator):
    logical_op: L.SemTopKOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        if not records:
            return []
        query_vec = ctx.llm.embed(op.query, tag=f"{ctx.tag}:topk")
        matrix = np.stack(
            [ctx.llm.embed(record.as_text(), tag=f"{ctx.tag}:topk") for record in records]
        )
        hits = top_k_similar(query_vec, matrix, len(records))
        if op.method == "llm":
            # Rerank: an LLM relevance judgment partitions candidates; the
            # embedding score breaks ties within each partition.
            model = self.model or op.model
            scored = []
            with ctx.llm.parallel(ctx.parallelism):
                for index, similarity in hits:
                    judgment = ctx.guarded(
                        records[index].uid,
                        model,
                        lambda m, index=index: ctx.llm.judge_filter(
                            f"The record is relevant to: {op.query}",
                            records[index],
                            model=m,
                            tag=f"{ctx.tag}:topk",
                        ),
                    )
                    # A degraded judgment falls back to the embedding score.
                    relevant = 1 if (judgment is not None and judgment.answer) else 0
                    scored.append((relevant, similarity, index))
            scored.sort(key=lambda item: (-item[0], -item[1]))
            chosen = [records[index] for _, _, index in scored[: op.k]]
        else:
            chosen = [records[index] for index, _ in hits[: op.k]]
        return chosen


class PhysPyFilter(PhysicalOperator):
    logical_op: L.PyFilterOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return [record for record in records if self.logical_op.fn(record)]


class PhysPyMap(PhysicalOperator):
    logical_op: L.PyMapOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        output = []
        for record in records:
            new_fields = self.logical_op.fn(record)
            if not isinstance(new_fields, dict):
                raise ExecutionError(
                    f"PyMap function must return a dict of new fields, "
                    f"got {type(new_fields).__name__}"
                )
            output.append(record.derive(new_fields))
        return output


class PhysProject(PhysicalOperator):
    logical_op: L.ProjectOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        wanted = set(self.logical_op.fields)
        output = []
        for record in records:
            drop = [name for name in record.fields if name not in wanted]
            output.append(record.derive({}, drop=drop))
        return output


class PhysLimit(PhysicalOperator):
    logical_op: L.LimitOp

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return records[: self.logical_op.n]
