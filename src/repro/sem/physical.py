"""Physical operators.

Each physical operator executes one logical operator against a materialized
batch of records, charging the simulated LLM for every semantic call.  The
engine (see :mod:`repro.sem.execution`) wires operators together and
collects statistics.

Operators marked ``streamable`` additionally implement a record-at-a-time
protocol (:meth:`PhysicalOperator.new_state` / ``prepare_batch`` /
``process_record`` / ``finalize``) so the engine can fuse adjacent
streamable operators into one pipelined section: record batches flow
through the fused stages and the virtual clock is charged the section's
critical-path makespan instead of the per-operator sum.  The classic
``execute`` entry point remains the barrier path (``pipeline=False``) and
preserves the original materialize-everything semantics exactly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.data.records import DataRecord
from repro.errors import BudgetExceededError, ExecutionError, TransientLLMError
from repro.llm.embeddings import cosine_similarity, top_k_similar
from repro.llm.simulated import SimulatedLLM
from repro.sem import logical as L
from repro.sem.batch import (
    RecordBatch,
    project_batch,
    py_map_batch,
    struct_filter_mask,
)
from repro.sem.structql import (
    compile_predicate,
    evaluate_predicate,
    run_aggregation,
)
from repro.utils.hashing import stable_digest

import numpy as np

T = TypeVar("T")

#: Valid per-record degradation modes when a call exhausts its retries.
FAILURE_MODES = ("skip", "fallback", "raise")


@dataclass
class AdaptiveParallelism:
    """Wave-width controller for the pipelined executor (TCP-style).

    Replaces the static ``parallelism`` knob on the streaming path: waves
    start at the configured cap, and a wave that draws rate-limit faults
    halves the width (multiplicative decrease).  Recovery is two-phase:
    clean waves *double* the width back toward the last level that worked
    (fast recovery after a burst passes), then probe one slot at a time
    beyond it every ``widen_after`` consecutive clean waves (additive
    increase).  Each fault also lowers the fast-recovery ceiling just
    below the width that faulted, so a persistent throttle converges to
    the safe width instead of re-probing the cap every round.  A
    fault-free run never leaves the cap, so the controller is invisible
    until the substrate actually throttles.
    """

    cap: int
    min_width: int = 1
    #: Consecutive clean waves required before probing one slot wider.
    widen_after: int = 3
    width: int = 0
    #: Waves that saw at least one rate-limit fault.
    backoffs: int = 0
    widenings: int = 0
    _clean_streak: int = 0
    #: Fast-recovery ceiling: doubling stops here, additive probing beyond.
    _recover_target: int = 0

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise ValueError(f"parallelism cap must be >= 1, got {self.cap}")
        self.min_width = max(1, min(self.min_width, self.cap))
        if self.width < 1:
            self.width = self.cap
        if self._recover_target < 1:
            self._recover_target = self.width

    def observe(self, rate_limited: bool) -> None:
        """Feed back one wave's outcome; adjusts :attr:`width`."""
        if rate_limited:
            self._recover_target = max(self.min_width, self.width - 1)
            self.width = max(self.min_width, self.width // 2)
            self.backoffs += 1
            self._clean_streak = 0
            return
        self._clean_streak += 1
        if self.width < self._recover_target:
            self.width = min(self._recover_target, self.width * 2)
            self.widenings += 1
            self._clean_streak = 0
        elif self.width < self.cap and self._clean_streak >= self.widen_after:
            self.width += 1
            self.widenings += 1
            self._clean_streak = 0


@dataclass
class ExecutionContext:
    """Shared state for one plan execution."""

    llm: SimulatedLLM
    parallelism: int = 1
    tag: str = "exec"
    #: What an operator does when a semantic call fails even after the LLM
    #: substrate's retries: "skip" flags the record and moves on, "fallback"
    #: re-asks ``fallback_model`` once (then skips), "raise" propagates.
    on_failure: str = "skip"
    #: Cheaper tier used by the "fallback" mode.
    fallback_model: str | None = None
    #: (record uid, error class name) for every degraded record, in order.
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Hard spend cap threaded down from the engine so the budget truncates
    #: the run mid-batch instead of overshooting by a whole operator's cost.
    max_cost_usd: float | None = None
    #: Spend already on the tracker when this execution began; the cap
    #: applies to the delta.
    cost_baseline_usd: float = 0.0
    #: Texts per batched embedding request; 1 = legacy per-record calls.
    embed_batch_size: int = 1
    #: Live wave-width controller (None = static ``parallelism``).
    adaptive: AdaptiveParallelism | None = None

    def wave_width(self) -> int:
        """Concurrency the next wave should be issued at."""
        if self.adaptive is not None:
            return self.adaptive.width
        return self.parallelism

    def check_budget(self) -> None:
        """Raise :class:`BudgetExceededError` once the spend cap is reached."""
        if self.max_cost_usd is None:
            return
        spent = self.llm.tracker.spent_usd - self.cost_baseline_usd
        if spent >= self.max_cost_usd:
            raise BudgetExceededError(
                f"spent ${spent:.4f} of the ${self.max_cost_usd:.4f} cap"
            )

    def guarded(
        self, uid: str, model: str, call: Callable[[str], T]
    ) -> T | None:
        """Run ``call(model)`` under the failure policy; None means degraded."""
        self.check_budget()
        try:
            return call(model)
        except TransientLLMError as exc:
            if self.on_failure == "raise":
                raise
            if (
                self.on_failure == "fallback"
                and self.fallback_model
                and self.fallback_model != model
            ):
                try:
                    return call(self.fallback_model)
                except TransientLLMError as fallback_exc:
                    exc = fallback_exc
            self.failures.append((uid, type(exc).__name__))
            return None


def _embed_texts(texts: list[str], ctx: ExecutionContext, tag: str) -> list[np.ndarray]:
    """Embed ``texts`` one batched request per chunk, or one call per text.

    ``ctx.embed_batch_size > 1`` selects the vectorized path (the pipelined
    executor); 1 keeps the legacy per-record calls and their exact timing.
    """
    if ctx.embed_batch_size > 1:
        return ctx.llm.embed_batch(texts, tag=tag, batch_size=ctx.embed_batch_size)
    return [ctx.llm.embed(text, tag=tag) for text in texts]


class PhysicalOperator(abc.ABC):
    """Executes one logical operator over a batch of records."""

    #: Streamable operators implement the record-at-a-time protocol below
    #: and can be fused into pipelined sections by the engine.
    streamable = False

    #: Vectorized operators additionally implement :meth:`process_batch`
    #: over a columnar :class:`~repro.sem.batch.RecordBatch`; the engine
    #: uses it in place of the per-record loop when columnar mode is on.
    #: Only token-free operators qualify — LLM operators need the
    #: per-record wave machinery (retries, adaptive width, budget cuts).
    vectorized = False

    #: How the sharded executor (:mod:`repro.sem.shard`) may place this
    #: operator: "source" leaves run once at the coordinator; "scatter"
    #: ops run shard-parallel on any partition (record-local); "merge"
    #: ops run shard-parallel with a global order-restoring merge (partial
    #: top-k/limit per shard + global rerank); "shuffle" ops repartition
    #: by their grouping key; "broadcast" ops replicate their right input
    #: to every shard; "gather" ops need the whole input at the
    #: coordinator.  ``None`` means undeclared — the sharding pass refuses
    #: to plan around such an operator instead of guessing.
    exchange: str | None = None

    def __init__(self, logical_op: L.LogicalOperator, model: str | None = None) -> None:
        self.logical_op = logical_op
        self.model = model

    @abc.abstractmethod
    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        """Transform ``records``; must not mutate the input list."""

    # -- streaming protocol (streamable operators only) -----------------

    def new_state(self, ctx: ExecutionContext) -> dict:
        """Fresh per-execution mutable state for the streaming protocol."""
        return {}

    def prepare_batch(
        self, records: list[DataRecord], ctx: ExecutionContext, state: dict
    ) -> None:
        """Batch-level vectorized work (e.g. one embedding request per batch)."""

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        """Stream one record through; may emit zero or more records."""
        raise ExecutionError(f"{self.label()} is not streamable")

    def finalize(self, ctx: ExecutionContext, state: dict) -> list[DataRecord]:
        """Records held back until the stream ends (e.g. top-k winners)."""
        return []

    def sated(self, state: dict) -> bool:
        """True once this operator can never emit more records (early exit)."""
        return False

    def process_batch(
        self, batch: "RecordBatch", ctx: ExecutionContext, state: dict
    ) -> "RecordBatch":
        """Vectorized whole-batch step (``vectorized`` operators only).

        Must be observationally identical to streaming the batch's records
        through :meth:`process_record` one at a time.
        """
        raise ExecutionError(f"{self.label()} is not vectorized")

    def label(self) -> str:
        suffix = f" [{self.model}]" if self.model else ""
        return self.logical_op.label() + suffix


class StreamingOperator(PhysicalOperator):
    """Record-at-a-time operator.

    The default :meth:`execute` reproduces the legacy barrier semantics
    exactly — one parallel section over all records — by driving the
    streaming protocol itself, so barrier and pipelined modes share one
    per-record implementation.
    """

    streamable = True

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        state = self.new_state(ctx)
        self.prepare_batch(records, ctx, state)
        output: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                output.extend(self.process_record(record, ctx, state))
        output.extend(self.finalize(ctx, state))
        return output

    @abc.abstractmethod
    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        ...


class PhysScan(PhysicalOperator):
    logical_op: L.ScanOp
    exchange = "source"

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        if records:
            raise ExecutionError("scan is a leaf; it takes no input records")
        return list(self.logical_op.source.iterate())


class PhysMaterializedScan(PhysicalOperator):
    """Replay a materialized prefix; merge an appended source delta.

    The stored records are returned as-is (zero LLM cost).  When the source
    grew since materialization, only the appended ``delta_records`` run
    through ``delta_ops`` — the bound prefix operators, scan excluded — and
    the survivors are appended.  This matches a full recompute exactly
    because delta merging is only offered for order-preserving record-local
    prefixes (see :data:`repro.sem.materialize.INCREMENTAL_SAFE_OPS`) and
    appended source records sit at the tail of the scan order.
    """

    #: Surfaced in per-operator stats and the EXPLAIN "Reused" column.
    reused = True

    logical_op: L.MaterializedScanOp
    exchange = "source"

    def __init__(
        self,
        logical_op: L.MaterializedScanOp,
        entry,
        delta_ops=(),
        delta_records=(),
    ) -> None:
        super().__init__(logical_op, None)
        self.entry = entry
        self.delta_ops = list(delta_ops)
        self.delta_records = list(delta_records)

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        if records:
            raise ExecutionError("materialized scan is a leaf; it takes no input records")
        output = list(self.entry.records)
        if self.delta_records:
            delta = list(self.delta_records)
            for op in self.delta_ops:
                delta = op.execute(delta, ctx)
            output.extend(delta)
        return output


class PhysRetrieve(PhysicalOperator):
    """Top-k vector retrieval over the upstream scan's records.

    If the scan's source exposes a prebuilt vector index (a Context with a
    registered index), retrieval delegates to it; otherwise records are
    embedded on the fly (embeddings are cached, so this cost is paid once),
    one batched request per ``ctx.embed_batch_size`` texts on the
    vectorized path.
    """

    logical_op: L.RetrieveOp
    exchange = "gather"

    def __init__(
        self,
        logical_op: L.RetrieveOp,
        model: str | None = None,
        source: object | None = None,
    ) -> None:
        super().__init__(logical_op, model)
        self.source = source

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        if self.source is not None and hasattr(self.source, "vector_search"):
            hits = self.source.vector_search(op.query, op.k, llm=ctx.llm)
            return [record for record, _ in hits]
        if not records:
            return []
        tag = f"{ctx.tag}:retrieve"
        query_vec = ctx.llm.embed(op.query, tag=tag)
        matrix = np.stack(
            _embed_texts([record.as_text() for record in records], ctx, tag)
        )
        hits = top_k_similar(query_vec, matrix, op.k)
        return [records[index] for index, _ in hits]


class PhysSemFilter(StreamingOperator):
    logical_op: L.SemFilterOp
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        judgment = ctx.guarded(
            record.uid,
            model,
            lambda m: ctx.llm.judge_filter(
                op.instruction, record, model=m, tag=f"{ctx.tag}:filter"
            ),
        )
        if judgment is not None and judgment.answer:
            return [record]
        return []


class PhysSemMap(StreamingOperator):
    logical_op: L.SemMapOp
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        new_fields = {}
        for schema_field, instruction in op.outputs:
            extraction = ctx.guarded(
                record.uid,
                model,
                lambda m, instruction=instruction: ctx.llm.extract(
                    instruction, record, model=m, tag=f"{ctx.tag}:map"
                ),
            )
            # Degraded extractions surface as None (flagged in ctx.failures),
            # keeping the record and its other fields.
            new_fields[schema_field.name] = (
                schema_field.coerce(extraction.value)
                if extraction is not None
                else None
            )
        return [record.derive(new_fields)]


class PhysSemClassify(StreamingOperator):
    logical_op: L.SemClassifyOp
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        op = self.logical_op
        model = self.model or op.model
        result = ctx.guarded(
            record.uid,
            model,
            lambda m: ctx.llm.classify(
                op.instruction, list(op.options), record,
                model=m, tag=f"{ctx.tag}:classify",
            ),
        )
        value = result.value if result is not None else None
        return [record.derive({op.output_field: value})]


class PhysSemGroupBy(PhysicalOperator):
    """Classify-then-partition implementation of the semantic group-by.

    Split into two independently-callable phases so the sharded executor
    can scatter :meth:`classify_label` across partitions and shuffle each
    label's members to an owner shard for :meth:`build_group`; both phases
    are pure functions of (record, substrate), so the split changes
    nothing about the answers.
    """

    logical_op: L.SemGroupByOp
    exchange = "shuffle"

    def classify_label(
        self, record: DataRecord, ctx: ExecutionContext
    ) -> str | None:
        """Assign ``record`` its group label; None means degraded."""
        op = self.logical_op
        model = self.model or op.model
        result = ctx.guarded(
            record.uid,
            model,
            lambda m: ctx.llm.classify(
                op.instruction, list(op.groups), record,
                model=m, tag=f"{ctx.tag}:groupby",
            ),
        )
        if result is None:
            return None
        return str(result.value)

    def build_group(
        self, group: str, members: list[DataRecord], ctx: ExecutionContext
    ) -> DataRecord:
        """Mint the output record for one non-empty group."""
        from repro.sem.config import DEFAULT_FALLBACK_MODEL

        op = self.logical_op
        model = self.model or op.model
        fields: dict = {"group": group, "count": len(members)}
        if op.summarize:
            joined_text = "\n---\n".join(
                member.as_text() for member in members
            )[:AGG_TEXT_BUDGET]
            completion = ctx.guarded(
                f"group:{group}",
                model or DEFAULT_FALLBACK_MODEL,
                lambda m, group=group, joined_text=joined_text: ctx.llm.complete(
                    f"Summarize the records in group {group!r}: "
                    f"{op.instruction}\n\n{joined_text}",
                    model=m,
                    tag=f"{ctx.tag}:groupby",
                ),
            )
            fields["summary"] = completion.text if completion is not None else None
        member_uids = tuple(member.uid for member in members)
        return DataRecord(
            fields=fields,
            # Deterministic group-record uid: pure function of the
            # label and membership, identical across execution modes.
            uid=f"group:{group}:{stable_digest(member_uids)[:6]}",
            parent_uids=member_uids,
        )

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        op = self.logical_op
        groups: dict[str, list[DataRecord]] = {}
        with ctx.llm.parallel(ctx.parallelism):
            for record in records:
                label = self.classify_label(record, ctx)
                if label is None:
                    continue  # degraded: record is flagged and ungrouped
                groups.setdefault(label, []).append(record)

        output: list[DataRecord] = []
        for group in op.groups:
            members = groups.get(group, [])
            if not members:
                continue
            output.append(self.build_group(group, members, ctx))
        return output


class PhysSemJoinBlocked(PhysicalOperator):
    """Embedding-blocked semantic join.

    Classic blocking applied to LLM joins: pairs are pre-screened by
    embedding similarity and only the most promising candidates are sent
    to the model for judgment.  Cuts the O(n*m) judgment cost at a small
    recall risk (pairs below the similarity floor are never judged).
    """

    logical_op: L.SemJoinOp
    exchange = "broadcast"

    def __init__(
        self,
        logical_op: L.SemJoinOp,
        right_ops: "list[PhysicalOperator]",
        model: str | None = None,
        similarity_floor: float = 0.10,
        max_candidates_per_left: int = 8,
    ) -> None:
        super().__init__(logical_op, model)
        self.right_ops = right_ops
        self.similarity_floor = similarity_floor
        self.max_candidates_per_left = max_candidates_per_left

    def label(self) -> str:
        return super().label() + " (blocked)"

    def prepare_right(self, ctx: ExecutionContext, have_left: bool = True) -> dict:
        """Run the right subplan once; embed it when a probe side exists.

        Coordinator-side in sharded mode: the right records (and their
        embedding matrix) are broadcast to every shard rather than
        recomputed per shard.
        """
        right_records: list[DataRecord] = []
        for op in self.right_ops:
            right_records = op.execute(right_records, ctx)
        state: dict = {"right_records": right_records, "right_matrix": None}
        if have_left and right_records:
            state["right_matrix"] = np.stack(
                _embed_texts(
                    [record.as_text() for record in right_records],
                    ctx, f"{ctx.tag}:join",
                )
            )
        return state

    def join_left(
        self,
        left: DataRecord,
        ctx: ExecutionContext,
        right_state: dict,
        left_vec=None,
    ) -> list[DataRecord]:
        """Judge one left record against its blocked candidates."""
        right_records = right_state["right_records"]
        right_matrix = right_state["right_matrix"]
        model = self.model or self.logical_op.model
        tag = f"{ctx.tag}:join"
        if left_vec is None:
            left_vec = ctx.llm.embed(left.as_text(), tag=tag)
        hits = top_k_similar(left_vec, right_matrix, self.max_candidates_per_left)
        joined: list[DataRecord] = []
        for index, similarity in hits:
            if similarity < self.similarity_floor:
                break  # hits are sorted descending
            right = right_records[index]
            judgment = ctx.guarded(
                f"{left.uid}|{right.uid}",
                model,
                lambda m, left=left, right=right: ctx.llm.judge_join(
                    self.logical_op.instruction, left, right, model=m, tag=tag
                ),
            )
            if judgment is not None and judgment.answer:
                joined.append(DataRecord.merge(left, right))
        return joined

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        right_state = self.prepare_right(ctx, have_left=bool(records))
        if not records or not right_state["right_records"]:
            return []
        tag = f"{ctx.tag}:join"
        # Vectorized path: one batched request for every left vector before
        # the judgment waves, instead of one embed call inside each slot.
        left_vectors = (
            _embed_texts([left.as_text() for left in records], ctx, tag)
            if ctx.embed_batch_size > 1
            else None
        )
        joined: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for position, left in enumerate(records):
                joined.extend(
                    self.join_left(
                        left, ctx, right_state,
                        left_vec=(
                            left_vectors[position]
                            if left_vectors is not None
                            else None
                        ),
                    )
                )
        return joined


class PhysSemJoin(PhysicalOperator):
    """Nested-loop semantic join: one judgment per candidate pair."""

    logical_op: L.SemJoinOp
    exchange = "broadcast"

    def __init__(
        self,
        logical_op: L.SemJoinOp,
        right_ops: "list[PhysicalOperator]",
        model: str | None = None,
    ) -> None:
        super().__init__(logical_op, model)
        self.right_ops = right_ops

    def prepare_right(self, ctx: ExecutionContext, have_left: bool = True) -> dict:
        """Run the right subplan once (broadcast side in sharded mode)."""
        right_records: list[DataRecord] = []
        for op in self.right_ops:
            right_records = op.execute(right_records, ctx)
        return {"right_records": right_records}

    def join_left(
        self, left: DataRecord, ctx: ExecutionContext, right_state: dict
    ) -> list[DataRecord]:
        """Judge one left record against every right record."""
        model = self.model or self.logical_op.model
        joined: list[DataRecord] = []
        for right in right_state["right_records"]:
            judgment = ctx.guarded(
                f"{left.uid}|{right.uid}",
                model,
                lambda m, left=left, right=right: ctx.llm.judge_join(
                    self.logical_op.instruction, left, right,
                    model=m, tag=f"{ctx.tag}:join",
                ),
            )
            if judgment is not None and judgment.answer:
                joined.append(DataRecord.merge(left, right))
        return joined

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        right_state = self.prepare_right(ctx)
        joined: list[DataRecord] = []
        with ctx.llm.parallel(ctx.parallelism):
            for left in records:
                joined.extend(self.join_left(left, ctx, right_state))
        return joined


#: Character budget for the concatenated input of a semantic aggregation.
AGG_TEXT_BUDGET = 24_000


class PhysSemAgg(PhysicalOperator):
    logical_op: L.SemAggOp
    exchange = "gather"

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        from repro.sem.config import DEFAULT_FALLBACK_MODEL

        op = self.logical_op
        model = self.model or op.model
        chunks: list[str] = []
        used = 0
        for record in records:
            text = record.as_text()
            if used + len(text) > AGG_TEXT_BUDGET:
                break
            chunks.append(text)
            used += len(text)
        prompt = op.instruction + "\n\n" + "\n---\n".join(chunks)
        completion = ctx.guarded(
            "agg",
            model or DEFAULT_FALLBACK_MODEL,
            lambda m: ctx.llm.complete(prompt, model=m, tag=f"{ctx.tag}:agg"),
        )
        input_uids = tuple(record.uid for record in records)
        result = DataRecord(
            fields={op.output_field: completion.text if completion is not None else None},
            uid=f"agg:{stable_digest(input_uids)[:6]}",
            parent_uids=input_uids,
        )
        return [result]


class PhysSemTopK(StreamingOperator):
    """Embedding-ranked top-k with optional LLM reranking.

    Streams: every record is scored (and, for ``method="llm"``, judged) as
    it arrives, held back, and the top ``k`` are emitted at stream end.
    The relevance judgment partitions candidates; the embedding score
    breaks ties within each partition, then arrival order.
    """

    logical_op: L.SemTopKOp
    exchange = "merge"

    def new_state(self, ctx: ExecutionContext) -> dict:
        return {"scored": {}, "sims": {}, "arrivals": 0}

    def prepare_batch(
        self, records: list[DataRecord], ctx: ExecutionContext, state: dict
    ) -> None:
        if not records:
            return
        tag = f"{ctx.tag}:topk"
        if "query_vec" not in state:
            state["query_vec"] = ctx.llm.embed(self.logical_op.query, tag=tag)
        vectors = _embed_texts([record.as_text() for record in records], ctx, tag)
        for record, vector in zip(records, vectors):
            state["sims"][record.uid] = cosine_similarity(state["query_vec"], vector)

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        op = self.logical_op
        previous = state["scored"].get(record.uid)
        if previous is None:
            similarity = state["sims"].pop(record.uid)
            arrival = state["arrivals"]
            state["arrivals"] += 1
        else:
            # Resubmission after a withdrawn rate-limit failure: replace the
            # degraded judgment, keeping the original score and arrival slot
            # so the ranking matches a fault-free run.
            _, similarity, arrival, _ = previous
        relevant = 1
        if op.method == "llm":
            model = self.model or op.model
            judgment = ctx.guarded(
                record.uid,
                model,
                lambda m: ctx.llm.judge_filter(
                    f"The record is relevant to: {op.query}",
                    record,
                    model=m,
                    tag=f"{ctx.tag}:topk",
                ),
            )
            # A degraded judgment falls back to the embedding score.
            relevant = 1 if (judgment is not None and judgment.answer) else 0
        state["scored"][record.uid] = (relevant, similarity, arrival, record)
        return []

    def finalize(self, ctx: ExecutionContext, state: dict) -> list[DataRecord]:
        ranked = sorted(
            state["scored"].values(), key=lambda item: (-item[0], -item[1], item[2])
        )
        return [record for _, _, _, record in ranked[: self.logical_op.k]]


class PhysPyFilter(StreamingOperator):
    logical_op: L.PyFilterOp
    vectorized = True
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        return [record] if self.logical_op.fn(record) else []

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return [record for record in records if self.logical_op.fn(record)]

    def process_batch(
        self, batch: RecordBatch, ctx: ExecutionContext, state: dict
    ) -> RecordBatch:
        fn = self.logical_op.fn
        return RecordBatch([record for record in batch.records if fn(record)])


class PhysPyMap(StreamingOperator):
    logical_op: L.PyMapOp
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        new_fields = self.logical_op.fn(record)
        if not isinstance(new_fields, dict):
            raise ExecutionError(
                f"PyMap function must return a dict of new fields, "
                f"got {type(new_fields).__name__}"
            )
        return [record.derive(new_fields)]

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        output = []
        for record in records:
            output.extend(self.process_record(record, ctx, {}))
        return output

    vectorized = True

    def process_batch(
        self, batch: RecordBatch, ctx: ExecutionContext, state: dict
    ) -> RecordBatch:
        return py_map_batch(batch, self.logical_op.fn)


class PhysProject(StreamingOperator):
    logical_op: L.ProjectOp
    vectorized = True
    exchange = "scatter"

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        wanted = set(self.logical_op.fields)
        drop = [name for name in record.fields if name not in wanted]
        return [record.derive({}, drop=drop)]

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        output = []
        for record in records:
            output.extend(self.process_record(record, ctx, {}))
        return output

    def process_batch(
        self, batch: RecordBatch, ctx: ExecutionContext, state: dict
    ) -> RecordBatch:
        return project_batch(batch, self.logical_op.fields)


class PhysLimit(StreamingOperator):
    """Limit with early-exit pushdown: once sated, the engine stops pulling
    batches from upstream stages instead of truncating after the fact."""

    logical_op: L.LimitOp
    exchange = "merge"

    def new_state(self, ctx: ExecutionContext) -> dict:
        return {"remaining": self.logical_op.n}

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        if state["remaining"] <= 0:
            return []
        state["remaining"] -= 1
        return [record]

    def sated(self, state: dict) -> bool:
        return state["remaining"] <= 0

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return records[: self.logical_op.n]

    vectorized = True

    def process_batch(
        self, batch: RecordBatch, ctx: ExecutionContext, state: dict
    ) -> RecordBatch:
        take = max(0, min(state["remaining"], len(batch)))
        state["remaining"] -= take
        return RecordBatch(batch.records[:take])


class PhysStructFilter(StreamingOperator):
    """SQL predicate over record fields: keep rows where it is TRUE.

    Row mode evaluates the compiled expression per record through the
    ``repro.sql`` executor; columnar mode evaluates it once per batch with
    vectorized masks (:func:`repro.sem.batch.struct_filter_mask`).  Both
    only *select* rows, so the surviving record objects — and their uids —
    are untouched.
    """

    logical_op: L.StructFilterOp
    vectorized = True
    exchange = "scatter"

    def __init__(self, logical_op: L.StructFilterOp, model: str | None = None) -> None:
        super().__init__(logical_op, model)
        self._expr = compile_predicate(logical_op.condition)

    def process_record(
        self, record: DataRecord, ctx: ExecutionContext, state: dict
    ) -> list[DataRecord]:
        return [record] if evaluate_predicate(self._expr, record.fields) is True else []

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return [
            record
            for record in records
            if evaluate_predicate(self._expr, record.fields) is True
        ]

    def process_batch(
        self, batch: RecordBatch, ctx: ExecutionContext, state: dict
    ) -> RecordBatch:
        return batch.take(struct_filter_mask(self._expr, batch))


def _struct_agg_records(
    records: list[DataRecord], op: L.StructAggOp
) -> list[DataRecord]:
    """Shared struct-agg body: one fresh record per SQL result row.

    Uids are a pure function of the input lineage and the group key, so
    row mode, columnar mode, and the pushed-down SqlScan all mint
    identical records.
    """
    rows = run_aggregation(
        [record.fields for record in records], op.group_by, op.aggregates
    )
    input_uids = tuple(record.uid for record in records)
    output = []
    for row in rows:
        group_values = tuple(row[name] for name in op.group_by)
        output.append(
            DataRecord(
                fields=dict(row),
                uid=f"structagg:{stable_digest(input_uids, group_values)[:6]}",
                parent_uids=input_uids,
            )
        )
    return output


class PhysStructAgg(PhysicalOperator):
    """Structured GROUP BY / aggregation via the SQL engine (token-free)."""

    logical_op: L.StructAggOp
    exchange = "gather"

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        return _struct_agg_records(records, self.logical_op)


def apply_structured(
    op: L.LogicalOperator, records: list[DataRecord], columnar: bool = False
) -> list[DataRecord]:
    """Run one pushed-down structured operator over materialized records.

    This is the SqlScan interpretation loop — and also how delta records
    replay through a pushed prefix.  Each case matches its row-mode
    physical operator exactly (same evaluator, same ``derive`` calls).
    """
    if isinstance(op, L.StructFilterOp):
        expr = compile_predicate(op.condition)
        if columnar:
            batch = RecordBatch(records)
            return batch.take(struct_filter_mask(expr, batch)).records
        return [
            record
            for record in records
            if evaluate_predicate(expr, record.fields) is True
        ]
    if isinstance(op, L.ProjectOp):
        wanted = set(op.fields)
        output = []
        for record in records:
            drop = [name for name in record.fields if name not in wanted]
            output.append(record.derive({}, drop=drop))
        return output
    if isinstance(op, L.LimitOp):
        return records[: op.n]
    if isinstance(op, L.StructAggOp):
        return _struct_agg_records(records, op)
    raise ExecutionError(f"operator {op.label()} cannot run inside a SqlScan")


class PhysSqlScan(PhysicalOperator):
    """Leaf: scan a source and run its pushed-down structured prefix.

    The SQL engine prunes/projects/pre-aggregates the record set before
    any LLM operator runs.  ``scanned`` records how many source records
    the scan saw, so EXPLAIN can report what was pruned ahead of the first
    LLM operator.
    """

    logical_op: L.SqlScanOp
    exchange = "source"

    #: Surfaced in per-operator stats and the EXPLAIN "SQL" column.
    pushed_down = True

    def __init__(self, logical_op: L.SqlScanOp, columnar: bool = False) -> None:
        super().__init__(logical_op, None)
        self.columnar = columnar
        self.scanned = 0

    def execute(self, records: list[DataRecord], ctx: ExecutionContext) -> list[DataRecord]:
        if records:
            raise ExecutionError("sql scan is a leaf; it takes no input records")
        current = list(self.logical_op.source.iterate())
        self.scanned = len(current)
        for op in self.logical_op.pushed:
            current = apply_structured(op, current, self.columnar)
        return current
