"""Scale-out sharded execution: partitioned sources + exchange operators.

This module turns the single-worker engine into a deterministic simulation
of an N-worker cluster.  A :func:`plan_shards` pass walks the bound
physical operators, reads each operator's declared ``exchange``
requirement (see :class:`~repro.sem.physical.PhysicalOperator.exchange`),
and groups the chain into exchange segments:

- **scatter** — maximal runs of record-local operators (filter / map /
  classify / where / project) run shard-parallel on any partition of
  their input; a trailing **merge** operator (limit, top-k) runs as a
  per-shard partial pass plus a global order-restoring merge (partial
  top-k per shard + global rerank, ties broken by lineage uid);
- **shuffle** — the semantic group-by classifies shard-parallel, then
  repartitions each label's members to an owner shard (``key_shard``)
  for the summary phase;
- **broadcast** — semantic joins replicate their (smaller) right side to
  every shard and scatter only the probe side;
- **global** — sources and whole-input aggregations run once at the
  coordinator, exactly as in unsharded execution.

Workers are *simulated*: each shard's work runs in a
:meth:`~repro.llm.simulated.SimulatedLLM.measure` block on its own
:class:`~repro.utils.clock.PipelineSchedule`, so no virtual time passes
while a shard runs; after all shards of a segment finish, the clock is
charged ``max(shard makespans)`` — N workers in parallel — and the gap
``max - min`` is the segment's measurable straggler cost.  Under a
serving sink the same charge is routed through
``serve_sink.end_step(width, busy)`` so the shared clock is never touched
directly (the serving invariant).

Determinism and bit-identity: partitioners are pure functions of record
uid / position; simulated answers are pure functions of (seed, model,
instruction, record uid), never of call order; and derived-record uids
are lineage-deterministic.  Scatter preserves each record's global input
position, so the order-restoring merge reproduces the unsharded output
order exactly — records are bit-identical at every shard count.  Dollars
are identical too on fault-free runs *except* plans whose early-exit
limit stops upstream work: each shard over-fetches up to its own limit
before the global truncation (the classic distributed limit-pushdown
overfetch), so such plans may spend more when sharded — never produce
different records.

Materialization composes with partitioning through per-shard
fingerprints (:func:`~repro.sem.materialize.shard_fingerprint`): pure
scatter segments capture one store entry per shard keyed by (boundary,
partitioner, shard count, shard index), with per-input emit counts so a
replay can re-place records at their global positions.  Hash
partitioning keeps shard assignments stable under append-only source
growth, so per-shard *delta* execution runs only each shard's appended
tail; range/round-robin assignments shift on append and their stale
entries are invalidated by the store's source-uid prefix check.

``shards=1`` never constructs any of this — the config gates the pass,
so the unsharded engine path is byte-identical to the pre-sharding
engine in cost, latency, spans, and records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.records import DataRecord
from repro.errors import BudgetExceededError, OptimizationError
from repro.sem.execution import OperatorStats, _StageAccount
from repro.sem.materialize import shard_fingerprint
from repro.sem.physical import (
    PhysicalOperator,
    PhysLimit,
    PhysSemJoinBlocked,
    PhysSemTopK,
    _embed_texts,
)
from repro.utils.clock import PipelineSchedule
from repro.utils.hashing import stable_hash

#: Supported partitioning strategies for scatter/shuffle exchanges.
PARTITIONERS = ("hash", "range", "round_robin")


def shard_of(
    uid: str, position: int, total: int, n_shards: int, partitioner: str
) -> int:
    """Which shard one record lands on under ``partitioner``.

    ``hash`` keys on the record uid (the only assignment stable under
    append-only source growth); ``range`` cuts the input into contiguous
    position chunks; ``round_robin`` deals positions out cyclically.
    """
    if partitioner == "hash":
        return stable_hash("shard", uid) % n_shards
    if partitioner == "range":
        return position * n_shards // max(total, 1)
    if partitioner == "round_robin":
        return position % n_shards
    raise OptimizationError(
        f"unknown partitioner {partitioner!r}; expected one of {PARTITIONERS}"
    )


def partition_records(
    items: list[tuple[int, DataRecord]], n_shards: int, partitioner: str
) -> list[list[tuple[int, DataRecord]]]:
    """Split ``(position, record)`` pairs into ``n_shards`` ordered lists.

    Positions are global segment-input positions (what the merge restores
    order by); the ``range``/``round_robin`` strategies key on the local
    index within ``items`` so partitions stay balanced even when an
    upstream filter left position gaps.
    """
    shards: list[list[tuple[int, DataRecord]]] = [[] for _ in range(n_shards)]
    total = len(items)
    for index, (position, record) in enumerate(items):
        shards[shard_of(record.uid, index, total, n_shards, partitioner)].append(
            (position, record)
        )
    return shards


def key_shard(key, n_shards: int) -> int:
    """Owner shard for one shuffle key (group label / join key).

    NULL keys route deterministically to shard 0 so NULL-keyed records
    still land *somewhere*, but routing is not matching: under SQL
    three-valued semantics (see :func:`keys_match`, mirroring
    ``structql``'s evaluator) NULL never equi-matches anything — not even
    another NULL — so co-locating NULLs can never manufacture a match
    that the unsharded evaluator would reject.
    """
    if key is None:
        return 0
    return stable_hash("shard-key", str(key)) % n_shards


def keys_match(a, b) -> bool:
    """Three-valued equi-match: NULL = anything is unknown, i.e. no match.

    Matches ``structql``'s ``evaluate_predicate`` on ``a = b``: a NULL on
    either side yields NULL, and only TRUE joins.
    """
    if a is None or b is None:
        return False
    return a == b


@dataclass
class ShardSegment:
    """One exchange segment of a sharded plan: ``operators[start:end)``."""

    kind: str  # "global" | "scatter" | "shuffle" | "broadcast"
    start: int
    end: int
    #: Operator index of a trailing merge op (limit/top-k) run per-shard
    #: with a global merge; None = plain segment.
    finisher: int | None = None
    #: Exchange strategy shown in EXPLAIN ("source"/"gather"/"scatter"/
    #: "shuffle"/"broadcast").
    strategy: str = ""
    #: Rejected alternative strategy (exchange costing), "" = none.
    alternative: str = ""
    # -- runtime diagnostics, filled by the executor --------------------
    shard_makespans: list[float] = field(default_factory=list)
    shard_rows: list[int] = field(default_factory=list)
    straggler_gap_s: float = 0.0
    #: Record transfers the chosen strategy performed.
    moved_records: int = 0
    #: Record transfers the rejected alternative would have performed.
    cost_alternative: int = 0
    #: Shards served entirely from per-shard materialized entries.
    replayed_shards: int = 0
    #: Shards that ran only their appended delta tail.
    delta_shards: int = 0


@dataclass
class ShardPlan:
    """Output of the sharding pass; doubles as the run's diagnostics."""

    n_shards: int
    partitioner: str
    segments: list[ShardSegment] = field(default_factory=list)
    #: Operators skipped by the executor's whole-boundary replay (the
    #: sharded counterpart of the optimizer's reuse splice).
    reused_prefix: int = 0
    #: True when *any* materialized replay (global or per-shard) fed this
    #: run — gates statistics ingestion like ``report.reused_prefix``.
    reused_any: bool = False

    def describe(self) -> str:
        parts = []
        for segment in self.segments:
            parts.append(f"{segment.strategy}[{segment.start}:{segment.end}]")
        return (
            f"shards={self.n_shards} partitioner={self.partitioner} "
            + " -> ".join(parts)
        )


def plan_shards(
    operators: list[PhysicalOperator], n_shards: int, partitioner: str
) -> ShardPlan:
    """Group bound operators into exchange segments for ``n_shards`` workers.

    Raises :class:`~repro.errors.OptimizationError` when an operator has
    not declared its exchange requirement — new operators must opt in
    explicitly rather than being scattered on a guess — or when the
    partitioner is unknown.
    """
    if partitioner not in PARTITIONERS:
        raise OptimizationError(
            f"unknown partitioner {partitioner!r}; expected one of {PARTITIONERS}"
        )
    if n_shards < 1:
        raise OptimizationError(f"n_shards must be >= 1, got {n_shards}")
    for operator in operators:
        if operator.exchange is None:
            raise OptimizationError(
                f"operator {operator.label()} ({type(operator).__name__}) "
                "declares no exchange requirement; set the class attribute "
                "`exchange` to one of source/scatter/merge/shuffle/"
                "broadcast/gather before it can run sharded"
            )

    plan = ShardPlan(n_shards=n_shards, partitioner=partitioner)
    index = 0
    while index < len(operators):
        exchange = operators[index].exchange
        if exchange in ("source", "gather"):
            plan.segments.append(
                ShardSegment("global", index, index + 1, strategy=exchange)
            )
            index += 1
        elif exchange in ("scatter", "merge"):
            start = index
            while index < len(operators) and operators[index].exchange == "scatter":
                index += 1
            finisher = None
            if index < len(operators) and operators[index].exchange == "merge":
                finisher = index
                index += 1
            plan.segments.append(
                ShardSegment(
                    "scatter", start, index, finisher=finisher, strategy="scatter"
                )
            )
        elif exchange == "shuffle":
            # Group-by moves each record once (to its label's owner shard);
            # broadcasting would move it n_shards times.
            plan.segments.append(
                ShardSegment(
                    "shuffle", index, index + 1,
                    strategy="shuffle", alternative="broadcast",
                )
            )
            index += 1
        elif exchange == "broadcast":
            # Semantic joins have no equi-key to shuffle on (the predicate
            # is a model judgment), so the right side is replicated; the
            # rejected shuffle cost is still recorded for EXPLAIN.
            plan.segments.append(
                ShardSegment(
                    "broadcast", index, index + 1,
                    strategy="broadcast", alternative="shuffle",
                )
            )
            index += 1
        else:
            raise OptimizationError(
                f"operator {operators[index].label()} declares unknown "
                f"exchange {exchange!r}"
            )
    return plan


def exchange_footer(plan: ShardPlan) -> str:
    """EXPLAIN ANALYZE footer lines for a sharded run's exchanges."""
    lines = []
    for segment in plan.segments:
        if segment.kind == "global":
            continue
        line = (
            f"\nexchange: {segment.strategy} over operators "
            f"{segment.start}..{segment.end - 1}"
        )
        if segment.shard_makespans:
            line += (
                f" — {len(segment.shard_makespans)} shards, "
                f"makespan {max(segment.shard_makespans):.1f}s, "
                f"straggler gap {segment.straggler_gap_s:.1f}s"
            )
        line += f", {segment.moved_records} records moved"
        if segment.alternative:
            line += (
                f" (rejected {segment.alternative}: "
                f"{segment.cost_alternative} transfers)"
            )
        if segment.replayed_shards or segment.delta_shards:
            line += (
                f"; reuse: {segment.replayed_shards} shard(s) replayed, "
                f"{segment.delta_shards} delta"
            )
        lines.append(line)
    if plan.reused_prefix:
        lines.append(
            f"\nshard reuse: {plan.reused_prefix}-operator prefix replayed "
            "from a materialized boundary"
        )
    return "".join(lines)


class ShardedExecutor:
    """Drives one plan across N simulated workers for the engine.

    Constructed (and dispatched to) by :meth:`Engine.execute` when a
    :class:`ShardPlan` is attached; shares the engine's context, budget,
    capture plan, and batch size so everything except worker placement
    behaves identically.
    """

    def __init__(self, engine, plan: ShardPlan) -> None:
        self.engine = engine
        self.plan = plan
        self.ctx = engine.ctx
        self.run_checkpoint = 0

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def execute(self, operators: list[PhysicalOperator]):
        from repro.sem.execution import ExecutionResult

        ctx = self.ctx
        llm = ctx.llm
        engine = self.engine
        metrics = llm.metrics
        run_start_cost = llm.tracker.spent_usd
        run_start_time = llm.clock.elapsed
        self.run_checkpoint = llm.tracker.checkpoint()
        ctx.cost_baseline_usd = run_start_cost
        if engine.max_cost_usd is not None and ctx.max_cost_usd is None:
            ctx.max_cost_usd = engine.max_cost_usd
        truncated = False

        stats: list[OperatorStats] = []
        start_segment, records = self._replay_prefix(operators, stats)

        for segment in self.plan.segments[start_segment:]:
            spent = llm.tracker.spent_usd - run_start_cost
            if engine.max_cost_usd is not None and spent >= engine.max_cost_usd:
                truncated = True
                break
            new_records, segment_stats, segment_truncated = self._run_segment(
                segment, operators, records
            )
            stats.extend(segment_stats)
            if segment_truncated:
                truncated = True
                break
            records = new_records
            engine._maybe_capture(
                segment.end - 1, records, llm,
                run_start_cost, run_start_time, self.run_checkpoint,
            )

        if metrics.enabled and truncated:
            metrics.counter("engine.truncations").inc()
        return ExecutionResult(
            records=records,
            operator_stats=stats,
            total_cost_usd=llm.tracker.spent_usd - run_start_cost,
            total_time_s=llm.clock.elapsed - run_start_time,
            truncated=truncated,
            retried_calls=sum(s.retried_calls for s in stats),
            failed_records=sum(s.failed_records for s in stats),
        )

    def _replay_prefix(
        self, operators: list[PhysicalOperator], stats: list[OperatorStats]
    ) -> tuple[int, list[DataRecord]]:
        """Swap the longest exact-hit segment boundary for a replay.

        The sharded counterpart of the optimizer's reuse splice (which is
        skipped when ``shards > 1`` so segment indices stay aligned with
        the bound operator list).  Only exact matches replay here; delta
        execution happens per shard inside scatter segments.
        """
        capture = self.engine.capture
        plan = self.plan
        if capture is None:
            return 0, []
        tracer = self.ctx.llm.tracer
        for index in range(len(plan.segments) - 1, -1, -1):
            segment = plan.segments[index]
            position = segment.end - 1
            if position >= len(capture.fingerprints):
                continue
            fingerprint = capture.fingerprints[position]
            if fingerprint is None:
                continue
            kind, entry = capture.store.match(
                fingerprint, capture.source_uids, capture.content_version
            )
            if kind != "exact":
                continue
            capture.store.note_hit(entry, "exact")
            capture.carried_cost_usd += entry.cost_usd
            capture.carried_time_s += entry.time_s
            plan.reused_prefix = segment.end
            plan.reused_any = True
            for operator in operators[: segment.end]:
                stats.append(
                    OperatorStats(
                        label=operator.label(),
                        model=operator.model,
                        records_in=0,
                        records_out=0,
                        cost_usd=0.0,
                        time_s=0.0,
                        llm_calls=0,
                        cached_calls=0,
                        reused=True,
                    )
                )
            stats[-1].records_out = len(entry.records)
            if tracer.enabled:
                with tracer.span(
                    "materialization-reuse",
                    kind="reuse",
                    fingerprint=fingerprint[:12],
                    prefix=segment.end,
                    match="exact",
                    delta_records=0,
                ):
                    pass
            return index + 1, list(entry.records)
        capture.store.note_miss()
        return 0, []

    # ------------------------------------------------------------------
    # Segment dispatch
    # ------------------------------------------------------------------

    def _run_segment(
        self,
        segment: ShardSegment,
        operators: list[PhysicalOperator],
        records: list[DataRecord],
    ):
        tracer = self.ctx.llm.tracer
        if segment.kind == "global":
            return self._run_global(operators[segment.start], records)
        label = " | ".join(
            op.label() for op in operators[segment.start : segment.end]
        )
        with tracer.span(
            f"exchange[{label}]", kind="exchange",
            strategy=segment.strategy, shards=self.plan.n_shards,
            partitioner=self.plan.partitioner,
        ) as segment_span:
            if segment.kind == "scatter":
                out = self._run_scatter(segment, operators, records, segment_span)
            elif segment.kind == "shuffle":
                out = self._run_shuffle(
                    segment, operators[segment.start], records, segment_span
                )
            else:
                out = self._run_broadcast(
                    segment, operators[segment.start], records, segment_span
                )
            merged, segment_stats, truncated = out
            if tracer.enabled:
                segment_span.attributes.update(
                    records_in=len(records),
                    records_out=len(merged),
                    shard_rows=list(segment.shard_rows),
                    shard_makespans=[
                        round(s, 3) for s in segment.shard_makespans
                    ],
                    straggler_gap_s=round(segment.straggler_gap_s, 3),
                    moved_records=segment.moved_records,
                )
        return merged, segment_stats, truncated

    def _run_global(self, operator: PhysicalOperator, records: list[DataRecord]):
        """One coordinator-side operator, exactly the engine's barrier path."""
        from repro.sem.execution import _stats_attrs

        ctx = self.ctx
        llm = ctx.llm
        tracer = llm.tracer
        checkpoint = llm.tracker.checkpoint()
        time_before = llm.clock.elapsed
        failures_before = len(ctx.failures)
        n_in = len(records)
        truncated = False
        with tracer.span(operator.label(), kind="operator") as op_span:
            try:
                records = operator.execute(records, ctx)
                n_out = len(records)
            except BudgetExceededError:
                truncated = True
                n_out = 0
                records = []
        usage = llm.tracker.since(checkpoint)
        cached = sum(1 for event in llm.tracker.events[checkpoint:] if event.cached)
        op_stats = OperatorStats(
            label=operator.label(),
            model=operator.model,
            reused=getattr(operator, "reused", False),
            sql_pushdown=getattr(operator, "pushed_down", False),
            records_scanned=getattr(operator, "scanned", 0),
            records_in=n_in,
            records_out=n_out,
            cost_usd=usage.cost_usd,
            time_s=llm.clock.elapsed - time_before,
            llm_calls=usage.calls,
            cached_calls=cached,
            retried_calls=llm.tracker.failed_calls(checkpoint),
            failed_records=len(ctx.failures) - failures_before,
            input_tokens=usage.input_tokens,
            output_tokens=usage.output_tokens,
        )
        if tracer.enabled:
            op_span.attributes.update(_stats_attrs(op_stats))
        return records, [op_stats], truncated

    # ------------------------------------------------------------------
    # Scatter segments (with optional merge finisher)
    # ------------------------------------------------------------------

    def _run_scatter(
        self,
        segment: ShardSegment,
        operators: list[PhysicalOperator],
        records: list[DataRecord],
        segment_span,
    ):
        ctx = self.ctx
        llm = ctx.llm
        tracer = llm.tracer
        plan = self.plan
        n = plan.n_shards
        section = operators[segment.start : segment.end]
        accounts = [_StageAccount(op) for op in section]
        finisher = operators[segment.finisher] if segment.finisher is not None else None
        stages = section[:-1] if finisher is not None else section

        items = list(enumerate(records))
        shards = partition_records(items, n, plan.partitioner)

        capture = self.engine.capture
        base_fingerprint = None
        if (
            finisher is None
            and capture is not None
            and segment.end - 1 < len(capture.fingerprints)
        ):
            base_fingerprint = capture.fingerprints[segment.end - 1]

        out_by_pos: dict[int, list[DataRecord]] = {}
        topk_candidates: list[tuple] = []
        shard_seconds: list[float] = []
        cells: list[tuple] = []
        origin = llm.clock.elapsed
        truncated = False
        segment.replayed_shards = 0
        segment.delta_shards = 0

        for shard_index in range(n):
            seconds, shard_truncated = self._run_one_shard(
                shard_index, shards[shard_index], stages, finisher,
                accounts, segment, out_by_pos, topk_candidates,
                base_fingerprint, cells,
            )
            shard_seconds.append(seconds)
            if shard_truncated:
                truncated = True
                break

        self._charge(shard_seconds)
        segment.shard_makespans = list(shard_seconds)
        segment.shard_rows = [len(shard) for shard in shards]
        segment.straggler_gap_s = (
            max(shard_seconds) - min(shard_seconds) if shard_seconds else 0.0
        )
        segment.moved_records = len(items)

        if tracer.enabled and llm.serve_sink is None:
            ops_by_stage = stages + ([finisher] if finisher is not None else [])
            for shard_index, stage, start_s, end_s, batch_no, n_records in cells:
                tracer.add_span(
                    f"{ops_by_stage[stage].label()} s{shard_index}b{batch_no}",
                    "cell",
                    origin + start_s,
                    origin + end_s,
                    track=f"shard {shard_index} stage {stage}",
                    parent=segment_span,
                    shard=shard_index, stage=stage,
                    batch=batch_no, records=n_records,
                )

        if truncated:
            return [], self._finish_stats(accounts, segment, None), True

        merged = [
            record for position in sorted(out_by_pos)
            for record in out_by_pos[position]
        ]
        if finisher is not None:
            if isinstance(finisher, PhysLimit):
                merged = merged[: finisher.logical_op.n]
            elif isinstance(finisher, PhysSemTopK):
                # Global rerank of the per-shard partial top-k: position
                # reproduces the unsharded arrival order; the lineage uid
                # breaks (impossible-by-construction) residual ties.
                topk_candidates.sort(
                    key=lambda item: (-item[0], -item[1], item[2], item[3])
                )
                merged = [
                    record
                    for _, _, _, _, record in topk_candidates[: finisher.logical_op.k]
                ]
        return merged, self._finish_stats(accounts, segment, len(merged)), False

    def _finish_stats(
        self,
        accounts: list[_StageAccount],
        segment: ShardSegment,
        merged_count: int | None,
    ) -> list[OperatorStats]:
        stats = []
        for account in accounts:
            op_stats = account.to_stats()
            op_stats.shards = self.plan.n_shards
            if (
                segment.replayed_shards
                and segment.replayed_shards == self.plan.n_shards
            ):
                op_stats.reused = True
            stats.append(op_stats)
        if segment.finisher is not None and merged_count is not None:
            stats[-1].records_out = merged_count
        return stats

    def _run_one_shard(
        self,
        shard_index: int,
        items: list[tuple[int, DataRecord]],
        stages: list[PhysicalOperator],
        finisher: PhysicalOperator | None,
        accounts: list[_StageAccount],
        segment: ShardSegment,
        out_by_pos: dict[int, list[DataRecord]],
        topk_candidates: list[tuple],
        base_fingerprint: str | None,
        cells: list[tuple],
    ) -> tuple[float, bool]:
        """One simulated worker: its partition through the segment's stages.

        Returns (shard makespan, truncated).  Emitted records land in
        ``out_by_pos`` under their global positions; a top-k finisher's
        per-shard winners land in ``topk_candidates``.  When the segment
        boundary is fingerprintable, an exact per-shard store hit replays
        the whole shard for free, a delta hit runs only the shard's
        appended tail, and a fault-free run captures the shard's output.
        """
        ctx = self.ctx
        llm = ctx.llm
        engine = self.engine
        plan = self.plan
        capture = engine.capture
        input_uids = tuple(record.uid for _, record in items)

        live_items = items
        carried_cost = 0.0
        carried_time = 0.0
        fingerprint = None
        if base_fingerprint is not None:
            fingerprint = shard_fingerprint(
                base_fingerprint, plan.partitioner, plan.n_shards, shard_index
            )
            kind, entry = capture.store.match(
                fingerprint, input_uids, capture.content_version
            )
            if kind == "exact" and entry.emit_counts is not None:
                capture.store.note_hit(entry, "exact")
                self._place_replayed(items, entry, out_by_pos)
                plan.reused_any = True
                segment.replayed_shards += 1
                return 0.0, False
            if kind == "delta" and entry.emit_counts is not None:
                base = len(entry.source_uids)
                capture.store.note_hit(
                    entry, "delta", delta_records=len(items) - base
                )
                self._place_replayed(items[:base], entry, out_by_pos)
                live_items = items[base:]
                carried_cost = entry.cost_usd
                carried_time = entry.time_s
                plan.reused_any = True
                segment.delta_shards += 1

        schedule = PipelineSchedule()
        states = [op.new_state(ctx) for op in stages]
        finisher_state = finisher.new_state(ctx) if finisher is not None else None
        all_ops = stages + ([finisher] if finisher is not None else [])
        all_states = states + ([finisher_state] if finisher is not None else [])
        position_of: dict[str, int] = {}
        checkpoint = llm.tracker.checkpoint()
        batch_size = (
            engine.batch_size if engine.pipeline else max(len(live_items), 1)
        )
        batch_no = 0
        truncated = False
        stage = 0

        try:
            for start in range(0, len(live_items), batch_size):
                if any(op.sated(st) for op, st in zip(all_ops, all_states)):
                    break
                current = live_items[start : start + batch_size]
                schedule.start_batch()
                batch_no += 1
                for stage, operator in enumerate(all_ops):
                    if not current:
                        break
                    n_records = len(current)
                    if operator is finisher:
                        for position, record in current:
                            position_of[record.uid] = position
                    current, seconds = self._cell(
                        operator, current, all_states[stage], accounts[stage]
                    )
                    schedule.record(stage, seconds)
                    cells.append(
                        (shard_index, stage, *schedule.last_cell, batch_no, n_records)
                    )
                for position, record in current:
                    out_by_pos.setdefault(position, []).append(record)
        except BudgetExceededError as exc:
            seconds = getattr(exc, "cell_seconds", 0.0)
            schedule.record(stage, seconds)
            cells.append(
                (shard_index, stage, *schedule.last_cell, batch_no, 0)
            )
            truncated = True

        if not truncated and finisher is not None and isinstance(finisher, PhysSemTopK):
            entries = [
                (relevant, similarity, position_of[uid], uid, record)
                for uid, (relevant, similarity, _arrival, record)
                in finisher_state["scored"].items()
            ]
            entries.sort(key=lambda item: (-item[0], -item[1], item[2], item[3]))
            topk_candidates.extend(entries[: finisher.logical_op.k])

        if (
            not truncated
            and fingerprint is not None
            and not (ctx.failures or llm.tracker.failed_calls(self.run_checkpoint))
        ):
            emit_counts = tuple(
                len(out_by_pos.get(position, ())) for position, _ in items
            )
            shard_records = [
                record
                for position, _ in items
                for record in out_by_pos.get(position, ())
            ]
            usage = llm.tracker.since(checkpoint)
            capture.store.put(
                fingerprint,
                shard_records,
                source_uids=input_uids,
                source_id=capture.source_id,
                cost_usd=carried_cost + usage.cost_usd,
                time_s=carried_time + schedule.makespan,
                emit_counts=emit_counts,
                content_version=capture.content_version,
            )
        return schedule.makespan, truncated

    def _place_replayed(
        self,
        items: list[tuple[int, DataRecord]],
        entry,
        out_by_pos: dict[int, list[DataRecord]],
    ) -> None:
        """Re-place a shard entry's records at their global positions."""
        cursor = 0
        for (position, _), count in zip(items, entry.emit_counts):
            if count:
                out_by_pos.setdefault(position, []).extend(
                    entry.records[cursor : cursor + count]
                )
            cursor += count

    def _cell(
        self,
        operator: PhysicalOperator,
        items: list[tuple[int, DataRecord]],
        state: dict,
        account: _StageAccount,
    ) -> tuple[list[tuple[int, DataRecord]], float]:
        """One shard-local (batch, stage) cell: measured, position-tagged.

        The single wave runs at the configured width; the adaptive
        controller and its throttled-record resubmission are deliberately
        not consulted here — fault specs are per-query, not per-shard,
        and fault-free runs never diverge from the static width anyway.
        """
        ctx = self.ctx
        tracker = ctx.llm.tracker
        checkpoint = tracker.checkpoint()
        failures_before = len(ctx.failures)
        account.records_in += len(items)
        emitted: dict[int, list[DataRecord]] = {}
        budget_error: BudgetExceededError | None = None

        with ctx.llm.measure() as measured:
            try:
                operator.prepare_batch(
                    [record for _, record in items], ctx, state
                )
                with ctx.llm.parallel(ctx.wave_width()):
                    for position, record in items:
                        emitted[position] = operator.process_record(
                            record, ctx, state
                        )
            except BudgetExceededError as exc:
                budget_error = exc

        self._account_usage(account, checkpoint, failures_before, measured.seconds)
        if ctx.llm.metrics.enabled:
            ctx.llm.metrics.histogram("engine.cell_s").observe(measured.seconds)
        if budget_error is not None:
            budget_error.cell_seconds = measured.seconds
            raise budget_error
        results = [
            (position, record)
            for position in sorted(emitted)
            for record in emitted[position]
        ]
        account.records_out += len(results)
        return results, measured.seconds

    def _account_usage(
        self,
        account: _StageAccount,
        checkpoint: int,
        failures_before: int,
        seconds: float,
    ) -> None:
        tracker = self.ctx.llm.tracker
        usage = tracker.since(checkpoint)
        account.cost_usd += usage.cost_usd
        account.llm_calls += usage.calls
        account.input_tokens += usage.input_tokens
        account.output_tokens += usage.output_tokens
        account.cached_calls += sum(
            1 for event in tracker.events[checkpoint:] if event.cached
        )
        account.retried_calls += tracker.failed_calls(checkpoint)
        account.failed_records += len(self.ctx.failures) - failures_before
        account.time_s += seconds

    def _charge(self, shard_seconds: list[float]) -> None:
        """Advance time as if the shards had run on N parallel workers.

        Off serving, the clock moves by the slowest shard's makespan.
        Under a serving sink the busy shards' makespans are handed to
        ``end_step`` as one wave (its standalone makespan is the same
        max), so the shared clock is never advanced during body execution
        — the serving invariant the runtime asserts.
        """
        llm = self.ctx.llm
        busy = [seconds for seconds in shard_seconds if seconds > 0]
        if not busy:
            return
        if llm.serve_sink is not None:
            llm.serve_sink.end_step(len(busy), busy)
        else:
            llm.clock.advance(max(shard_seconds))

    # ------------------------------------------------------------------
    # Shuffle segments (semantic group-by)
    # ------------------------------------------------------------------

    def _run_shuffle(
        self,
        segment: ShardSegment,
        operator,
        records: list[DataRecord],
        segment_span,
    ):
        ctx = self.ctx
        llm = ctx.llm
        tracer = llm.tracer
        plan = self.plan
        n = plan.n_shards
        account = _StageAccount(operator)
        items = list(enumerate(records))
        shards = partition_records(items, n, plan.partitioner)
        origin = llm.clock.elapsed

        # Phase A: classify shard-parallel (scatter by the partitioner).
        labeled: dict[int, tuple[str, DataRecord]] = {}
        classify_seconds: list[float] = []
        truncated = False
        for shard_index in range(n):
            shard_items = shards[shard_index]
            checkpoint = llm.tracker.checkpoint()
            failures_before = len(ctx.failures)
            account.records_in += len(shard_items)
            budget_error = None
            with llm.measure() as measured:
                try:
                    with llm.parallel(ctx.wave_width()):
                        for position, record in shard_items:
                            label = operator.classify_label(record, ctx)
                            if label is not None:
                                labeled[position] = (label, record)
                except BudgetExceededError as exc:
                    budget_error = exc
            self._account_usage(
                account, checkpoint, failures_before, measured.seconds
            )
            classify_seconds.append(measured.seconds)
            if budget_error is not None:
                truncated = True
                break
        self._charge(classify_seconds)
        if tracer.enabled and llm.serve_sink is None:
            for shard_index, seconds in enumerate(classify_seconds):
                if seconds > 0:
                    tracer.add_span(
                        f"classify s{shard_index}", "cell",
                        origin, origin + seconds,
                        track=f"shard {shard_index} stage 0",
                        parent=segment_span,
                        shard=shard_index, stage=0,
                        records=len(shards[shard_index]),
                    )
        if truncated:
            stats = account.to_stats()
            stats.shards = n
            return [], [stats], True

        # Shuffle: repartition by group label to each label's owner shard.
        owners: list[dict[str, list[tuple[int, DataRecord]]]] = [
            {} for _ in range(n)
        ]
        moved = 0
        for position in sorted(labeled):
            label, record = labeled[position]
            owners[key_shard(label, n)].setdefault(label, []).append(
                (position, record)
            )
            moved += 1

        # Phase B: each owner shard builds its labels' group records.
        #: Members arrive sorted by global position, so membership — and
        #: therefore the lineage-deterministic group uid and the summary
        #: prompt — matches the unsharded grouping exactly.
        build_origin = llm.clock.elapsed
        build_seconds: list[float] = []
        built: dict[str, DataRecord] = {}
        for shard_index in range(n):
            shard_labels = owners[shard_index]
            if not shard_labels:
                build_seconds.append(0.0)
                continue
            checkpoint = llm.tracker.checkpoint()
            failures_before = len(ctx.failures)
            budget_error = None
            with llm.measure() as measured:
                try:
                    for label in sorted(shard_labels):
                        members = [
                            record for _, record in shard_labels[label]
                        ]
                        built[label] = operator.build_group(label, members, ctx)
                except BudgetExceededError as exc:
                    budget_error = exc
            self._account_usage(
                account, checkpoint, failures_before, measured.seconds
            )
            build_seconds.append(measured.seconds)
            if budget_error is not None:
                truncated = True
                break
        self._charge(build_seconds)
        if tracer.enabled and llm.serve_sink is None:
            for shard_index, seconds in enumerate(build_seconds):
                if seconds > 0:
                    tracer.add_span(
                        f"build s{shard_index}", "cell",
                        build_origin, build_origin + seconds,
                        track=f"shard {shard_index} stage 1",
                        parent=segment_span,
                        shard=shard_index, stage=1,
                        records=len(owners[shard_index]),
                    )

        makespans = []
        for shard_index in range(n):
            classify = (
                classify_seconds[shard_index]
                if shard_index < len(classify_seconds) else 0.0
            )
            build = (
                build_seconds[shard_index]
                if shard_index < len(build_seconds) else 0.0
            )
            makespans.append(classify + build)
        segment.shard_makespans = makespans
        segment.shard_rows = [len(shard) for shard in shards]
        segment.straggler_gap_s = (
            max(makespans) - min(makespans) if makespans else 0.0
        )
        segment.moved_records = len(items) + moved
        segment.cost_alternative = n * len(items)

        if truncated:
            stats = account.to_stats()
            stats.shards = n
            return [], [stats], True

        output = [
            built[group]
            for group in operator.logical_op.groups
            if group in built
        ]
        account.records_out = len(output)
        stats = account.to_stats()
        stats.shards = n
        return output, [stats], False

    # ------------------------------------------------------------------
    # Broadcast segments (semantic joins)
    # ------------------------------------------------------------------

    def _run_broadcast(
        self,
        segment: ShardSegment,
        operator,
        records: list[DataRecord],
        segment_span,
    ):
        ctx = self.ctx
        llm = ctx.llm
        tracer = llm.tracer
        plan = self.plan
        n = plan.n_shards
        account = _StageAccount(operator)
        account.records_in = len(records)
        blocked = isinstance(operator, PhysSemJoinBlocked)

        # Coordinator side: run (and for the blocked join, embed) the right
        # subplan once; the result is broadcast to every shard by reference.
        checkpoint = llm.tracker.checkpoint()
        failures_before = len(ctx.failures)
        time_before = llm.clock.elapsed
        right_state = operator.prepare_right(ctx, have_left=bool(records))
        self._account_usage(
            account, checkpoint, failures_before,
            llm.clock.elapsed - time_before,
        )
        right_count = len(right_state["right_records"])
        segment.moved_records = n * right_count
        segment.cost_alternative = len(records) + right_count

        if blocked and (not records or not right_count):
            stats = account.to_stats()
            stats.shards = n
            return [], [stats], False

        items = list(enumerate(records))
        shards = partition_records(items, n, plan.partitioner)
        out_by_pos: dict[int, list[DataRecord]] = {}
        shard_seconds: list[float] = []
        origin = llm.clock.elapsed
        truncated = False
        tag = f"{ctx.tag}:join"
        for shard_index in range(n):
            shard_items = shards[shard_index]
            shard_checkpoint = llm.tracker.checkpoint()
            shard_failures = len(ctx.failures)
            budget_error = None
            with llm.measure() as measured:
                try:
                    left_vectors = None
                    if blocked and ctx.embed_batch_size > 1 and shard_items:
                        left_vectors = _embed_texts(
                            [record.as_text() for _, record in shard_items],
                            ctx, tag,
                        )
                    with llm.parallel(ctx.wave_width()):
                        for index, (position, left) in enumerate(shard_items):
                            if blocked:
                                out_by_pos[position] = operator.join_left(
                                    left, ctx, right_state,
                                    left_vec=(
                                        left_vectors[index]
                                        if left_vectors is not None else None
                                    ),
                                )
                            else:
                                out_by_pos[position] = operator.join_left(
                                    left, ctx, right_state
                                )
                except BudgetExceededError as exc:
                    budget_error = exc
            self._account_usage(
                account, shard_checkpoint, shard_failures, measured.seconds
            )
            shard_seconds.append(measured.seconds)
            if budget_error is not None:
                truncated = True
                break
        self._charge(shard_seconds)
        segment.shard_makespans = list(shard_seconds)
        segment.shard_rows = [len(shard) for shard in shards]
        segment.straggler_gap_s = (
            max(shard_seconds) - min(shard_seconds) if shard_seconds else 0.0
        )
        if tracer.enabled and llm.serve_sink is None:
            for shard_index, seconds in enumerate(shard_seconds):
                if seconds > 0:
                    tracer.add_span(
                        f"join s{shard_index}", "cell",
                        origin, origin + seconds,
                        track=f"shard {shard_index} stage 0",
                        parent=segment_span,
                        shard=shard_index, stage=0,
                        records=len(shards[shard_index]),
                    )

        stats = account.to_stats()
        stats.shards = n
        if truncated:
            return [], [stats], True
        merged = [
            record
            for position in sorted(out_by_pos)
            for record in out_by_pos[position]
        ]
        stats.records_out = len(merged)
        return merged, [stats], False
