"""Semantic-operator framework (the Palimpzest-style substrate).

Declarative, natural-language-specified AI operators over collections of
records, with logical optimization (filter pushdown and reordering),
cost-based physical optimization (sampling-driven model selection), and an
iterator-semantics execution engine.

Quick use::

    from repro.sem import Dataset, QueryProcessorConfig

    emails = Dataset.from_source(bundle.source())
    relevant = emails.sem_filter("The email discusses project Alpha.")
    result = relevant.run(QueryProcessorConfig(llm=llm))
    for record in result.records:
        ...
"""

from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.execution import ExecutionResult, OperatorStats
from repro.sem.explain import explain_analyze
from repro.sem.optimizer.policies import (
    Balanced,
    MaxQuality,
    MinCost,
    OptimizationPolicy,
)
from repro.sem.streaming import (
    ChangeEntry,
    RefreshPolicy,
    StandingQuery,
    StandingQueryManager,
    TickResult,
    fold_changelog,
)

__all__ = [
    "Balanced",
    "ChangeEntry",
    "Dataset",
    "ExecutionResult",
    "MaxQuality",
    "MinCost",
    "OperatorStats",
    "OptimizationPolicy",
    "QueryProcessorConfig",
    "RefreshPolicy",
    "StandingQuery",
    "StandingQueryManager",
    "TickResult",
    "explain_analyze",
    "fold_changelog",
]
