"""Columnar record batches for the streaming executor's hot path.

A :class:`RecordBatch` is a struct-of-arrays view over a list of
:class:`~repro.data.records.DataRecord`: per-field value arrays plus
validity (non-NULL presence) masks, built lazily and cached.  The original
record objects ride along untouched, so any operator that only *selects*
rows (filters, limits) emits the identical objects row mode would — the
bit-identity contract costs nothing.

Vectorized predicate evaluation (:func:`struct_filter_mask`) mirrors the
``repro.sql`` executor's three-valued logic exactly.  Internally a boolean
expression is a pair of masks ``(true, false)`` with NULL = neither;
comparisons against numeric literals ride numpy float arrays when that is
provably lossless, and every other leaf falls back to the executor's own
scalar helpers looped once per batch — so row mode and columnar mode can
only ever disagree by raising the same error from a different row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.data.records import DataRecord
from repro.errors import ExecutionError
from repro.sem.structql import evaluate_predicate
from repro.utils.hashing import stable_digest
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.sql.executor import _sql_equal, _sql_less, _sql_lte

#: Integers with magnitude at or below this are exact in float64, so a
#: numpy float compare cannot diverge from Python int comparison.
_EXACT_FLOAT_INT = 2**53


class RecordBatch:
    """A struct-of-arrays view over a run of records."""

    __slots__ = ("records", "_columns", "_validity")

    def __init__(self, records: list[DataRecord]) -> None:
        self.records = records
        self._columns: dict[str, np.ndarray] = {}
        self._validity: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DataRecord]:
        return iter(self.records)

    def column(self, name: str) -> np.ndarray:
        """Field values as an object array; missing fields read as None."""
        cached = self._columns.get(name)
        if cached is None:
            cached = np.empty(len(self.records), dtype=object)
            for position, record in enumerate(self.records):
                cached[position] = record.fields.get(name)
            self._columns[name] = cached
        return cached

    def validity(self, name: str) -> np.ndarray:
        """True where the field is present and not NULL."""
        cached = self._validity.get(name)
        if cached is None:
            column = self.column(name)
            cached = np.fromiter(
                (value is not None for value in column), dtype=bool, count=len(column)
            )
            self._validity[name] = cached
        return cached

    def take(self, mask: np.ndarray) -> "RecordBatch":
        """Rows where ``mask`` is True, as a new batch (records shared)."""
        kept = [record for record, keep in zip(self.records, mask) if keep]
        return RecordBatch(kept)


# ---------------------------------------------------------------------------
# Vectorized field writes (projection / py-map)
# ---------------------------------------------------------------------------
#
# Deriving operators used to funnel every batch through the per-row
# ``DataRecord.derive`` path: one full dict rebuild per record plus a second
# defensive copy inside ``DataRecord.__init__``, and downstream columnar
# consumers then re-scanned the fresh records per field to rebuild column
# caches.  The helpers below produce the same records with the copies
# amortized batch-wide — per-shape drop/sort tuples computed once, a single
# owned dict per output record, and the output batch's column/validity
# caches pre-seeded array-at-a-time (shared with the input where the
# operator provably does not touch the field).  The uid digest stays the
# per-row ``derive`` formula, so outputs are bit-identical to row mode;
# ``process_record`` remains the row-mode escape hatch.


def _fast_child(
    parent: DataRecord, fields: dict[str, Any], suffix: str
) -> DataRecord:
    """Construct a derived record from an owned fields dict, skipping the
    constructor's defensive copy.  Must mirror :meth:`DataRecord.derive`."""
    child = DataRecord.__new__(DataRecord)
    child.uid = f"{parent.uid}.{suffix}"
    child.fields = fields
    child.annotations = dict(parent.annotations)
    child.source_id = parent.source_id
    child.parent_uids = (parent.uid,)
    return child


def project_batch(batch: RecordBatch, fields: "list[str] | tuple[str, ...]") -> RecordBatch:
    """Project each record onto ``fields``, batch-at-a-time.

    The kept/dropped name split is computed once per distinct input field
    shape (homogeneous batches pay it once), and since projection never
    rewrites a value, the output batch *shares* the input's column and
    validity arrays for every projected field — downstream vectorized
    predicates get their columns for free.
    """
    wanted = set(fields)
    shapes: dict[tuple[str, ...], tuple[tuple[str, ...], tuple[str, ...]]] = {}
    output = []
    for record in batch.records:
        names = tuple(record.fields)
        shape = shapes.get(names)
        if shape is None:
            shape = (
                tuple(name for name in names if name in wanted),
                tuple(sorted(name for name in names if name not in wanted)),
            )
            shapes[names] = shape
        kept, dropped = shape
        values = record.fields
        suffix = stable_digest(record.uid, (), dropped)[:6]
        output.append(
            _fast_child(record, {name: values[name] for name in kept}, suffix)
        )
    out = RecordBatch(output)
    for name in fields:
        out._columns[name] = batch.column(name)
        out._validity[name] = batch.validity(name)
    return out


def py_map_batch(batch: RecordBatch, fn: Callable[[DataRecord], dict]) -> RecordBatch:
    """Apply a python map ``fn`` to each record, batch-at-a-time.

    The function itself is inherently per-row; everything around it is
    amortized: sorted new-field-name tuples are cached per shape, output
    records are built from one owned dict each, new-field columns are
    materialized array-at-a-time from the map outputs, and columns for
    fields no map output touches are shared with the input batch.
    """
    size = len(batch.records)
    news: list[dict] = []
    for record in batch.records:
        new_fields = fn(record)
        if not isinstance(new_fields, dict):
            raise ExecutionError(
                f"PyMap function must return a dict of new fields, "
                f"got {type(new_fields).__name__}"
            )
        news.append(new_fields)
    sorted_names: dict[tuple[str, ...], tuple[str, ...]] = {}
    output = []
    for record, new_fields in zip(batch.records, news):
        names = tuple(new_fields)
        added = sorted_names.get(names)
        if added is None:
            added = tuple(sorted(names))
            sorted_names[names] = added
        fields = dict(record.fields)
        fields.update(new_fields)
        suffix = stable_digest(record.uid, added, ())[:6]
        output.append(_fast_child(record, fields, suffix))
    out = RecordBatch(output)
    touched = set()
    for new_fields in news:
        touched.update(new_fields)
    for name in touched:
        column = np.empty(size, dtype=object)
        for position, (record, new_fields) in enumerate(zip(batch.records, news)):
            if name in new_fields:
                column[position] = new_fields[name]
            else:
                column[position] = record.fields.get(name)
        out._columns[name] = column
    for name, column in batch._columns.items():
        if name not in touched:
            out._columns[name] = column
            validity = batch._validity.get(name)
            if validity is not None:
                out._validity[name] = validity
    return out


# ---------------------------------------------------------------------------
# Vectorized predicate evaluation
# ---------------------------------------------------------------------------


class _Fallback(Exception):
    """Raised when a sub-expression has no provably-exact vector path."""


def struct_filter_mask(expr: Expr, batch: RecordBatch) -> np.ndarray:
    """Keep-mask for a compiled predicate: True where it evaluates TRUE.

    Identical to evaluating the predicate row-at-a-time (FALSE and NULL
    both drop the row); unsupported shapes fall back to per-row evaluation
    through the shared ``repro.sql`` executor.
    """
    try:
        true_mask, _ = _vector_eval(expr, batch)
        return true_mask
    except _Fallback:
        return np.fromiter(
            (
                evaluate_predicate(expr, record.fields) is True
                for record in batch.records
            ),
            dtype=bool,
            count=len(batch),
        )


def _vector_eval(expr: Expr, batch: RecordBatch) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate a boolean expression to ``(true, false)`` masks.

    NULL is represented as neither mask set; the algebra below is exactly
    the executor's: AND is TRUE iff both TRUE and FALSE iff either FALSE,
    OR dually, NOT swaps the masks.
    """
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            left_t, left_f = _vector_eval(expr.left, batch)
            right_t, right_f = _vector_eval(expr.right, batch)
            return left_t & right_t, left_f | right_f
        if expr.op == "or":
            left_t, left_f = _vector_eval(expr.left, batch)
            right_t, right_f = _vector_eval(expr.right, batch)
            return left_t | right_t, left_f & right_f
        if expr.op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return _vector_compare(expr, batch)
        raise _Fallback
    if isinstance(expr, UnaryOp) and expr.op == "not":
        true_mask, false_mask = _vector_eval(expr.operand, batch)
        return false_mask, true_mask
    if isinstance(expr, IsNull):
        if not isinstance(expr.operand, ColumnRef):
            raise _Fallback
        valid = batch.validity(expr.operand.name)
        null = ~valid
        return (valid, null) if expr.negated else (null, valid)
    if isinstance(expr, Between):
        # Engine semantics: NULL iff any of the three is NULL, else a bool.
        # The engine short-circuits its two bound checks, so only the
        # provably error-free all-numeric path is vectorized.
        if not isinstance(expr.operand, ColumnRef):
            raise _Fallback
        low, high = _literal_value(expr.low), _literal_value(expr.high)
        valid = batch.validity(expr.operand.name)
        if low is None or high is None:
            zeros = np.zeros(len(batch), dtype=bool)
            return zeros, zeros.copy()
        column = batch.column(expr.operand.name)
        floats = _exact_float_column(column, valid, low)
        if floats is None or _exact_float_column(column, valid, high) is None:
            raise _Fallback
        true_mask = (floats >= float(low)) & (floats <= float(high)) & valid
        false_mask = valid & ~true_mask
        return (false_mask, true_mask) if expr.negated else (true_mask, false_mask)
    if isinstance(expr, InList):
        # Engine semantics: NULL iff the operand is NULL, else membership
        # (a NULL list element can never match).
        if not isinstance(expr.operand, ColumnRef):
            raise _Fallback
        valid = batch.validity(expr.operand.name)
        true_mask = np.zeros(len(batch), dtype=bool)
        for option in expr.options:
            value = _literal_value(option)
            if value is None:
                continue
            option_t, _ = _vector_compare_leaf(expr.operand, "=", value, batch)
            true_mask = true_mask | option_t
        false_mask = valid & ~true_mask
        return (false_mask, true_mask) if expr.negated else (true_mask, false_mask)
    if isinstance(expr, ColumnRef):
        column = batch.column(expr.name)
        valid = batch.validity(expr.name)
        if any(valid[i] and not isinstance(column[i], bool) for i in range(len(column))):
            raise _Fallback  # numeric truthiness: leave it to the executor
        true_mask = np.fromiter(
            (value is True for value in column), dtype=bool, count=len(column)
        )
        return true_mask, valid & ~true_mask
    raise _Fallback


def _literal_value(expr: Expr) -> Any:
    if not isinstance(expr, Literal):
        raise _Fallback
    return expr.value


def _vector_compare(expr: BinaryOp, batch: RecordBatch) -> tuple[np.ndarray, np.ndarray]:
    """``column <op> literal`` (either side) with exact scalar semantics."""
    if isinstance(expr.left, ColumnRef):
        return _vector_compare_leaf(expr.left, expr.op, _literal_value(expr.right), batch)
    if isinstance(expr.right, ColumnRef):
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
        op = flipped.get(expr.op, expr.op)
        return _vector_compare_leaf(expr.right, op, _literal_value(expr.left), batch)
    raise _Fallback


def _vector_compare_leaf(
    column_expr: Expr, op: str, literal: Any, batch: RecordBatch
) -> tuple[np.ndarray, np.ndarray]:
    if not isinstance(column_expr, ColumnRef):
        raise _Fallback
    column = batch.column(column_expr.name)
    valid = batch.validity(column_expr.name)
    size = len(column)
    if literal is None:  # comparison with NULL is NULL everywhere
        zeros = np.zeros(size, dtype=bool)
        return zeros, zeros.copy()

    floats = _exact_float_column(column, valid, literal)
    if floats is not None:
        target = float(literal)
        if op in ("=", "<>", "!="):
            hits = floats == target
        elif op == "<":
            hits = floats < target
        elif op == "<=":
            hits = floats <= target
        elif op == ">":
            hits = floats > target
        else:
            hits = floats >= target
        if op in ("<>", "!="):
            hits = ~hits
        true_mask = hits & valid
        return true_mask, valid & ~true_mask

    # Exact scalar helpers, looped once per batch.  Equality never raises;
    # ordering raises on mismatched types exactly like row mode.
    if op in ("=", "<>", "!="):
        scalar: Callable[[Any], Any] = lambda value: _sql_equal(value, literal)
        negate = op != "="
    elif op == "<":
        scalar, negate = lambda value: _sql_less(value, literal), False
    elif op == "<=":
        scalar, negate = lambda value: _sql_lte(value, literal), False
    elif op == ">":
        scalar, negate = lambda value: _sql_less(literal, value), False
    else:
        scalar, negate = lambda value: _sql_lte(literal, value), False
    true_mask = np.zeros(size, dtype=bool)
    for position in range(size):
        if not valid[position]:
            continue
        outcome = scalar(column[position])
        if outcome is not None and (outcome != negate):
            true_mask[position] = True
    return true_mask, valid & ~true_mask


def _exact_float_column(
    column: np.ndarray, valid: np.ndarray, literal: Any
) -> np.ndarray | None:
    """Float64 view of a numeric column, or None when that could lie.

    Requires the literal and every present value to be non-bool ints or
    floats, with ints small enough to be exact in float64.  NULL slots
    carry NaN, which compares False against everything — and the caller
    masks them out anyway.
    """
    if isinstance(literal, bool) or not isinstance(literal, (int, float)):
        return None
    if isinstance(literal, int) and abs(literal) > _EXACT_FLOAT_INT:
        return None
    floats = np.full(len(column), np.nan)
    for position in range(len(column)):
        if not valid[position]:
            continue
        value = column[position]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if isinstance(value, int) and abs(value) > _EXACT_FLOAT_INT:
            return None
        floats[position] = float(value)
    return floats
