"""Semantic materialization: sub-plan fingerprints and the reuse store.

The cross-query counterpart of the generation cache.  Where the
:class:`~repro.llm.cache.GenerationCache` reuses single LLM *calls*, the
:class:`MaterializationStore` reuses whole operator-boundary record sets:
every prefix of a linear plan gets a canonical **fingerprint** — a stable
digest of the operator subtree (kinds + normalized instructions + resolved
models + source lineage + the substrate seed) — and the engine stores the
records flowing across each fingerprintable boundary.  A later query whose
prefix hashes to the same fingerprint replays the stored records instead of
recomputing them; if the source has *appended* records since, only the
delta runs through the prefix (incremental execution).

Soundness rests on three facts established by earlier PRs:

- simulated answers are a pure function of (seed, model, instruction,
  record uid) — never of call order — so a fingerprint match implies the
  recomputation would produce byte-identical records;
- instructions enter the noise key through
  :func:`~repro.utils.text.normalize_text`, so fingerprints normalize the
  same way (semantically identical whitespace/case variants share entries);
- derived-record uids are lineage-deterministic, so records computed from
  an appended delta are identical to the ones a full recompute would make.

Commuting filter runs (see :func:`repro.sem.optimizer.rules.commuting_runs`)
are canonicalized by sorting their tokens: filters only remove records and
preserve order, so any permutation — even a prefix that cuts a run in half
— yields the same record set, and semantically identical reorderings share
fingerprints.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.records import DataRecord
from repro.sem import logical as L
from repro.utils.hashing import stable_digest
from repro.utils.text import normalize_text

#: Bump when the token grammar changes; keeps persisted stores honest.
FINGERPRINT_VERSION = 1

#: Ops whose output on an appended delta equals the tail of a full
#: recompute: record-local, order-preserving, no whole-input dependence.
#: Limit/TopK/GroupBy/Agg/Retrieve depend on the entire input (or its
#: count) and are therefore exact-reuse only.
INCREMENTAL_SAFE_OPS = (
    L.SemFilterOp,
    L.SemMapOp,
    L.SemClassifyOp,
    L.PyFilterOp,
    L.PyMapOp,
    L.StructFilterOp,
    L.ProjectOp,
)

#: Ops worth materializing behind: they spend LLM calls or embeddings.
COSTLY_OPS = (
    L.SemFilterOp,
    L.SemMapOp,
    L.SemClassifyOp,
    L.SemGroupByOp,
    L.SemAggOp,
    L.SemTopKOp,
    L.RetrieveOp,
)

#: Adjacent runs of these commute (mirrors ``rules._COMMUTING``).
_COMMUTING = (L.SemFilterOp, L.PyFilterOp, L.StructFilterOp)


def op_token(op: L.LogicalOperator, model: str | None) -> tuple | None:
    """Canonical token for one operator, or None if unfingerprintable.

    ``model`` is the *resolved* physical model (reuse matching happens
    after the optimizer's model choice, so a hit implies the current run
    would bind the same models).  Python ops are fingerprintable only via
    their declared ``description`` — bare lambdas are not process-stable.
    """
    if isinstance(op, L.ScanOp):
        return ("scan", op.source.source_id)
    if isinstance(op, L.SemFilterOp):
        return ("sem_filter", normalize_text(op.instruction), model)
    if isinstance(op, L.SemMapOp):
        outputs = tuple(
            (
                field_.name,
                getattr(field_.type, "__name__", repr(field_.type)),
                field_.desc,
                normalize_text(instruction),
            )
            for field_, instruction in op.outputs
        )
        return ("sem_map", outputs, model)
    if isinstance(op, L.SemClassifyOp):
        return (
            "sem_classify",
            op.output_field,
            tuple(op.options),
            normalize_text(op.instruction),
            model,
        )
    if isinstance(op, L.SemGroupByOp):
        return (
            "sem_groupby",
            tuple(op.groups),
            normalize_text(op.instruction),
            op.summarize,
            model,
        )
    if isinstance(op, L.SemAggOp):
        return ("sem_agg", op.output_field, normalize_text(op.instruction), model)
    if isinstance(op, L.SemTopKOp):
        return ("sem_topk", normalize_text(op.query), op.k, op.method, model)
    if isinstance(op, L.RetrieveOp):
        return ("retrieve", normalize_text(op.query), op.k)
    if isinstance(op, L.PyFilterOp):
        return ("py_filter", op.description) if op.description else None
    if isinstance(op, L.PyMapOp):
        return ("py_map", op.description) if op.description else None
    if isinstance(op, L.StructFilterOp):
        from repro.sem.structql import normalized_condition

        # The parsed AST's repr, so `priority>=2` and `priority >= 2`
        # share a token — and pushed-down vs row-mode plans compose.
        return ("struct_filter", normalized_condition(op.condition))
    if isinstance(op, L.StructAggOp):
        return ("struct_agg", tuple(op.group_by), tuple(op.aggregates))
    if isinstance(op, L.ProjectOp):
        return ("project", tuple(op.fields))
    if isinstance(op, L.LimitOp):
        return ("limit", op.n)
    return None


def _canonical_tokens(
    chain: list[L.LogicalOperator], tokens: list[tuple]
) -> list[tuple]:
    """Sort tokens within maximal adjacent commuting-filter runs.

    Sound even when a prefix boundary cuts a run: filters preserve record
    identity and order, so applying any subset of a commuting run in any
    order produces the same record set.
    """
    canonical = list(tokens)
    index = 0
    while index < len(chain):
        if not isinstance(chain[index], _COMMUTING):
            index += 1
            continue
        end = index
        while end < len(chain) and isinstance(chain[end], _COMMUTING):
            end += 1
        if end - index > 1:
            canonical[index:end] = sorted(canonical[index:end], key=repr)
        index = end
    return canonical


def prefix_fingerprints(
    chain: list[L.LogicalOperator],
    models: list[str | None],
    llm_seed: int,
    scope: str = "",
) -> list[str | None]:
    """Fingerprint of every prefix ``chain[:p]``, indexed by ``p - 1``.

    None marks boundaries not worth (or not safe to) materialize: prefixes
    containing an unfingerprintable operator (and everything above them),
    and prefixes with no costly operator yet.

    ``scope`` namespaces fingerprints (tenant isolation on a shared store):
    scoped queries can only ever match entries captured under the same
    scope.  The empty scope keeps historical digests unchanged.

    A :class:`~repro.sem.logical.SqlScanOp` leaf is fingerprinted by
    *expansion*: its token sequence is the plain scan token followed by the
    embedded operators' tokens, and the expanded virtual chain feeds the
    commuting-run canonicalization.  A pushed-down plan therefore shares
    every boundary fingerprint at or after the end of the scan-adjacent
    filter run with its row-mode equivalent — pushdown composes with reuse
    instead of fragmenting the store.
    """
    virtual_chain: list[L.LogicalOperator] = []
    virtual_tokens: list[tuple | None] = []
    boundaries: list[int] = []
    for op, model in zip(chain, models):
        if isinstance(op, L.SqlScanOp):
            virtual_chain.append(L.ScanOp(child=None, source=op.source))
            virtual_tokens.append(("scan", op.source.source_id))
            for pushed in op.pushed:
                virtual_chain.append(pushed)
                virtual_tokens.append(op_token(pushed, None))
        else:
            virtual_chain.append(op)
            virtual_tokens.append(op_token(op, model))
        boundaries.append(len(virtual_chain))

    scope_tokens = ("scope", scope) if scope else ()
    fingerprints: list[str | None] = []
    poisoned = False
    costly = False
    consumed = 0
    for boundary in boundaries:
        for position in range(consumed, boundary):
            if virtual_tokens[position] is None:
                poisoned = True
            if isinstance(virtual_chain[position], COSTLY_OPS):
                costly = True
        consumed = boundary
        if poisoned or not costly:
            fingerprints.append(None)
            continue
        canonical = _canonical_tokens(
            virtual_chain[:boundary], virtual_tokens[:boundary]
        )
        fingerprints.append(
            stable_digest(
                "materialize-fp",
                FINGERPRINT_VERSION,
                llm_seed,
                *scope_tokens,
                *canonical,
            )
        )
    return fingerprints


def shard_fingerprint(
    base_fingerprint: str, partitioner: str, n_shards: int, shard_index: int
) -> str:
    """Namespace a boundary fingerprint to one shard of a partitioning.

    Per-shard entries are keyed by (boundary, partitioner, shard count,
    shard index): a shard's output is only replayable by a run that
    partitions the identical segment input the identical way.  Input
    *content* drift is still caught by the store's source-uid prefix check
    — e.g. a range-partitioned source that grew reassigns positions, the
    stored uids stop being a prefix of the probe's, and the entry goes
    stale — so no partitioner is unsound, hash is just the only one whose
    assignments survive appends (and therefore the only one that ever
    produces per-shard *delta* hits).
    """
    return stable_digest(
        "shard-fp", base_fingerprint, partitioner, n_shards, shard_index
    )


def incremental_safe_prefix(chain: list[L.LogicalOperator]) -> list[bool]:
    """Whether ``chain[:p]`` can merge an appended delta, indexed ``p - 1``.

    Position 0 (the scan) is trivially safe; above it every operator must
    be record-local and order-preserving.  A pushed-down
    :class:`~repro.sem.logical.SqlScanOp` leaf is safe only when every
    embedded operator is (a pushed limit or aggregation depends on the
    whole input, so those prefixes are exact-reuse only).
    """
    safe: list[bool] = []
    all_safe = True
    for position, op in enumerate(chain):
        if isinstance(op, L.SqlScanOp):
            if not all(isinstance(p, INCREMENTAL_SAFE_OPS) for p in op.pushed):
                all_safe = False
        elif position > 0 and not isinstance(op, INCREMENTAL_SAFE_OPS):
            all_safe = False
        safe.append(all_safe)
    return safe


@dataclass
class MaterializedEntry:
    """Records captured at one fingerprinted operator boundary."""

    fingerprint: str
    records: list[DataRecord]
    #: Source uids at capture time; delta detection compares prefixes.
    source_uids: tuple[str, ...]
    source_id: str
    #: Source update-generation at capture time.  In-place updates keep
    #: uids, so the prefix check alone would misclassify them as "exact";
    #: a probe with a different content_version invalidates the entry.
    content_version: int = 0
    #: Measured cumulative spend of producing these records (full-recompute
    #: equivalent: delta-merged updates carry the prior entry's cost).
    cost_usd: float = 0.0
    time_s: float = 0.0
    hits: int = 0
    delta_hits: int = 0
    #: Records emitted per input, aligned with ``source_uids`` (None =
    #: unknown).  Per-shard entries need this to re-place replayed records
    #: at their global positions; whole-plan entries never use it.
    emit_counts: tuple[int, ...] | None = None


@dataclass
class CapturePlan:
    """Where (and how) the engine should capture this run's boundaries.

    ``fingerprints`` is aligned with the *bound* operator list: position
    ``i`` names the boundary after operator ``i`` (None = don't capture).
    When the run itself replays a materialized prefix, the carried cost is
    folded into re-captures so updated entries keep honest full-recompute
    cost estimates.
    """

    store: "MaterializationStore"
    source_id: str
    source_uids: tuple[str, ...]
    fingerprints: list[str | None] = field(default_factory=list)
    carried_cost_usd: float = 0.0
    carried_time_s: float = 0.0
    #: Source update-generation this run executed against (stamped onto
    #: every captured entry; probes compare it to catch in-place updates).
    content_version: int = 0


class MaterializationStore:
    """LRU-bounded store of materialized sub-plan results.

    Keys are canonical prefix fingerprints; values are the records at that
    operator boundary plus enough provenance (source uids, measured cost)
    for the optimizer to cost reuse against recompute and for the engine to
    run append-only deltas.  Counters mirror into an attached
    :class:`~repro.obs.metrics.MetricsRegistry` as ``materialization.*``.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, MaterializedEntry] = OrderedDict()
        self.hits = 0
        self.delta_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        #: Invalidations caused specifically by in-place source updates
        #: (content_version drift); a subset of ``invalidations``.
        self.update_invalidations = 0
        self.delta_records = 0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.
        self.metrics = None

    # -- writes ---------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        records: list[DataRecord],
        source_uids: tuple[str, ...],
        source_id: str,
        cost_usd: float,
        time_s: float,
        emit_counts: tuple[int, ...] | None = None,
        content_version: int = 0,
    ) -> MaterializedEntry:
        previous = self._entries.pop(fingerprint, None)
        entry = MaterializedEntry(
            fingerprint=fingerprint,
            records=list(records),
            source_uids=tuple(source_uids),
            source_id=source_id,
            content_version=content_version,
            cost_usd=cost_usd,
            time_s=time_s,
            hits=previous.hits if previous else 0,
            delta_hits=previous.delta_hits if previous else 0,
            emit_counts=tuple(emit_counts) if emit_counts is not None else None,
        )
        self._entries[fingerprint] = entry
        self.stores += 1
        self._count("materialization.stores")
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("materialization.evictions")
        return entry

    # -- reads ----------------------------------------------------------

    def match(
        self,
        fingerprint: str,
        source_uids: tuple[str, ...],
        content_version: int = 0,
    ) -> tuple[str, MaterializedEntry | None]:
        """Classify a probe: ``("exact"|"delta"|"update"|"stale"|"miss", entry)``.

        Exact: the source is unchanged.  Delta: the stored uids are a
        proper prefix of the current ones (append-only growth).  Update:
        the source saw an in-place rewrite since capture (uids may still
        match, but the contents don't) — the entry is evicted so standing
        queries recompute instead of replaying stale records.  Anything
        else — shrinkage, reordering — invalidates the entry as "stale".
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            return "miss", None
        if entry.content_version != content_version:
            del self._entries[fingerprint]
            self.invalidations += 1
            self.update_invalidations += 1
            self._count("materialization.invalidations")
            self._count("materialization.update_invalidations")
            return "update", None
        if entry.source_uids == source_uids:
            return "exact", entry
        base = len(entry.source_uids)
        if len(source_uids) > base and source_uids[:base] == entry.source_uids:
            return "delta", entry
        del self._entries[fingerprint]
        self.invalidations += 1
        self._count("materialization.invalidations")
        return "stale", None

    def note_hit(
        self, entry: MaterializedEntry, kind: str, delta_records: int = 0
    ) -> None:
        """Record that the optimizer chose to reuse ``entry``."""
        self._entries.move_to_end(entry.fingerprint)
        entry.hits += 1
        self.hits += 1
        self._count("materialization.hits")
        if kind == "delta":
            entry.delta_hits += 1
            self.delta_hits += 1
            self.delta_records += delta_records
            self._count("materialization.delta_hits")
            self._count("materialization.delta_records", delta_records)

    def note_miss(self) -> None:
        self.misses += 1
        self._count("materialization.misses")

    # -- maintenance ----------------------------------------------------

    def invalidate_sources(self, source_ids, kind: str = "stale") -> int:
        """Evict every entry built on one of ``source_ids``; returns count.

        ``kind="update"`` marks the eviction as caused by an in-place
        source rewrite (the standing-query cascade), mirroring what the
        lazy ``content_version`` check in :meth:`match` would have
        classified, so update provenance survives eager invalidation.
        """
        names = set(source_ids)
        doomed = [
            fingerprint
            for fingerprint, entry in self._entries.items()
            if entry.source_id in names
        ]
        for fingerprint in doomed:
            del self._entries[fingerprint]
        self.invalidations += len(doomed)
        self._count("materialization.invalidations", len(doomed))
        if kind == "update":
            self.update_invalidations += len(doomed)
            self._count("materialization.update_invalidations", len(doomed))
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list[MaterializedEntry]:
        return list(self._entries.values())

    def get(self, fingerprint: str) -> MaterializedEntry | None:
        return self._entries.get(fingerprint)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "delta_hits": self.delta_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "update_invalidations": self.update_invalidations,
            "delta_records": self.delta_records,
        }

    # -- persistence ----------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Persist JSON-serializable entries; returns how many were saved.

        Entries whose field values don't survive a JSON round-trip (live
        objects, numpy scalars) are skipped — reuse must never replay
        records that differ from what a recompute would produce.
        """
        payload = []
        for entry in self._entries.values():
            try:
                records = [_record_to_dict(record) for record in entry.records]
                json.dumps(records)
            except (TypeError, ValueError):
                continue
            item = {
                "fingerprint": entry.fingerprint,
                "records": records,
                "source_uids": list(entry.source_uids),
                "source_id": entry.source_id,
                "content_version": entry.content_version,
                "cost_usd": entry.cost_usd,
                "time_s": entry.time_s,
            }
            if entry.emit_counts is not None:
                item["emit_counts"] = list(entry.emit_counts)
            payload.append(item)
        Path(path).write_text(
            json.dumps({"version": FINGERPRINT_VERSION, "entries": payload}),
            encoding="utf-8",
        )
        return len(payload)

    def load(self, path: str | Path) -> int:
        """Load entries saved by :meth:`save`; returns how many were loaded.

        ``max_entries`` is enforced *before* materialization: when the file
        holds more entries than this store's capacity, the oldest overflow
        (save order = LRU order, last entry most recent) is dropped on the
        floor and counted as evictions — the bound is never exceeded, even
        transiently, and doomed records are never deserialized.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != FINGERPRINT_VERSION:
            return 0
        entries = payload.get("entries", [])
        overflow = max(0, len(entries) - self.max_entries)
        if overflow:
            self.evictions += overflow
            self._count("materialization.evictions", overflow)
        loaded = 0
        for raw in entries[overflow:]:
            emit_counts = raw.get("emit_counts")
            self.put(
                raw["fingerprint"],
                [_record_from_dict(item) for item in raw["records"]],
                tuple(raw["source_uids"]),
                raw["source_id"],
                cost_usd=raw["cost_usd"],
                time_s=raw["time_s"],
                emit_counts=tuple(emit_counts) if emit_counts is not None else None,
                content_version=raw.get("content_version", 0),
            )
            loaded += 1
        return loaded

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)


def _record_to_dict(record: DataRecord) -> dict:
    return {
        "uid": record.uid,
        "fields": dict(record.fields),
        "annotations": dict(record.annotations),
        "source_id": record.source_id,
        "parent_uids": list(record.parent_uids),
    }


def _record_from_dict(payload: dict) -> DataRecord:
    return DataRecord(
        fields=payload["fields"],
        uid=payload["uid"],
        annotations=payload["annotations"],
        source_id=payload["source_id"],
        parent_uids=tuple(payload["parent_uids"]),
    )
