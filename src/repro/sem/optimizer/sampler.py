"""Sampling-based operator profiling (Abacus-style bandit).

For each semantic operator the optimizer must estimate, per candidate
model: quality (agreement with the champion), selectivity (for filters),
and per-record cost/latency.  Profiling runs the operator on a small sample
of input records through the real LLM client — sampling costs real
(simulated) dollars, exactly as in Palimpzest/Abacus, and thanks to the
generation cache the sampled judgments are free to reuse at execution time.

Model elimination uses successive halving: every candidate sees a small
first round; models that clearly disagree with the champion are dropped
before the (larger) second round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import DataRecord
from repro.data.schemas import Field as SchemaField
from repro.errors import TransientLLMError
from repro.llm.simulated import SimulatedLLM
from repro.utils.seeding import SeededRng

#: Sentinel answer for a sampled call that failed even after retries.  It
#: never equals a real answer, so it reads as disagreement with the champion.
FAILED_SAMPLE = object()

#: Sample size of the first bandit round.
FIRST_ROUND = 4

#: Agreement below this after the first round eliminates a candidate.
ELIMINATION_FLOOR = 0.7


@dataclass(frozen=True)
class OperatorProfile:
    """Sampled statistics for (operator, model)."""

    model: str
    #: Fraction of sampled records where this model matched the champion.
    agreement: float
    #: Champion pass-rate on the sample (filters; 1.0 otherwise).
    selectivity: float
    cost_per_record: float
    latency_per_record: float
    sample_size: int


class Sampler:
    """Profiles semantic operators on record samples."""

    def __init__(self, llm: SimulatedLLM, rng: SeededRng, tag: str = "optimize") -> None:
        self.llm = llm
        self.rng = rng
        self.tag = tag

    def sample_records(self, records: list[DataRecord], n: int) -> list[DataRecord]:
        """Draw a deterministic uniform sample of up to ``n`` records."""
        if len(records) <= n:
            return list(records)
        return self.rng.child("sample").sample(records, n)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------

    def profile_filter(
        self,
        instruction: str,
        sample: list[DataRecord],
        models: list[str],
        champion: str,
    ) -> dict[str, OperatorProfile]:
        """Profile a semantic filter across candidate models."""

        def judge(model: str, record: DataRecord) -> bool:
            judgment = self.llm.judge_filter(
                instruction, record, model=model, tag=f"{self.tag}:filter"
            )
            return judgment.answer

        return self._profile(sample, models, champion, judge)

    # ------------------------------------------------------------------
    # Maps
    # ------------------------------------------------------------------

    def profile_map(
        self,
        outputs: tuple[tuple[SchemaField, str], ...],
        sample: list[DataRecord],
        models: list[str],
        champion: str,
    ) -> dict[str, OperatorProfile]:
        """Profile a semantic map; agreement requires all fields to match."""

        def extract_all(model: str, record: DataRecord) -> tuple:
            values = []
            for schema_field, instruction in outputs:
                result = self.llm.extract(
                    instruction, record, model=model, tag=f"{self.tag}:map"
                )
                values.append(schema_field.coerce(result.value))
            return tuple(values)

        return self._profile(sample, models, champion, extract_all)

    def profile_classify(
        self,
        instruction: str,
        options: list[str],
        sample: list[DataRecord],
        models: list[str],
        champion: str,
    ) -> dict[str, OperatorProfile]:
        def classify(model: str, record: DataRecord):
            result = self.llm.classify(
                instruction, options, record, model=model, tag=f"{self.tag}:classify"
            )
            return result.value

        return self._profile(sample, models, champion, classify)

    # ------------------------------------------------------------------
    # Core bandit loop
    # ------------------------------------------------------------------

    def _profile(
        self,
        sample: list[DataRecord],
        models: list[str],
        champion: str,
        run_one,
    ) -> dict[str, OperatorProfile]:
        if champion not in models:
            models = [champion] + list(models)
        if not sample:
            return {
                model: OperatorProfile(model, 1.0, 1.0, 0.0, 0.0, 0)
                for model in models
            }

        first = sample[: min(FIRST_ROUND, len(sample))]
        rest = sample[len(first):]

        answers: dict[str, list] = {model: [] for model in models}
        costs: dict[str, float] = {model: 0.0 for model in models}
        latencies: dict[str, float] = {model: 0.0 for model in models}

        def run_round(round_models: list[str], records: list[DataRecord]) -> None:
            for model in round_models:
                for record in records:
                    checkpoint = self.llm.tracker.checkpoint()
                    try:
                        answers[model].append(run_one(model, record))
                    except TransientLLMError:
                        # A sample lost to faults counts as disagreement; the
                        # optimizer must keep profiling, not crash.
                        answers[model].append(FAILED_SAMPLE)
                    # Profile the *clean* per-call price: failed attempts and
                    # backoff waits are a property of the fault schedule, not
                    # of the model, and including them would let transient
                    # faults flip plan choices (breaking per-seed determinism
                    # of answer quality under fault injection).
                    clean = [
                        event
                        for event in self.llm.tracker.events[checkpoint:]
                        if not event.failed
                    ]
                    costs[model] += sum(event.cost_usd for event in clean)
                    latencies[model] += sum(event.latency_s for event in clean)

        run_round(models, first)
        survivors = []
        champion_first = answers[champion]
        for model in models:
            agreement = _agreement(answers[model], champion_first)
            if model == champion or agreement >= ELIMINATION_FLOOR:
                survivors.append(model)
        run_round(survivors, rest)

        champion_answers = answers[champion]
        champion_pass_rate = _pass_rate(champion_answers)
        profiles: dict[str, OperatorProfile] = {}
        for model in models:
            n_seen = len(answers[model])
            agreement = _agreement(answers[model], champion_answers[:n_seen])
            profiles[model] = OperatorProfile(
                model=model,
                agreement=agreement,
                selectivity=champion_pass_rate,
                cost_per_record=costs[model] / n_seen if n_seen else 0.0,
                latency_per_record=latencies[model] / n_seen if n_seen else 0.0,
                sample_size=n_seen,
            )
        return profiles


def _agreement(answers: list, reference: list) -> float:
    if not answers:
        return 0.0
    matches = sum(1 for a, b in zip(answers, reference) if a == b)
    return matches / len(answers)


def _pass_rate(answers: list) -> float:
    booleans = [answer for answer in answers if isinstance(answer, bool)]
    if not booleans:
        return 1.0
    return sum(booleans) / len(booleans)
