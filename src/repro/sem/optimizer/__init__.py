"""Cost-based optimizer for semantic-operator plans.

Implements the Palimpzest/Abacus-style pipeline the paper relies on:
sampling-based operator profiling (a successive-halving bandit over
candidate models), logical rewrites (filter pushdown and reordering by
cost/selectivity), and policy-driven physical model selection.
"""

from repro.sem.optimizer.cost_model import PlanEstimate, estimate_chain
from repro.sem.optimizer.optimizer import OptimizationReport, Optimizer
from repro.sem.optimizer.policies import Balanced, MaxQuality, MinCost, OptimizationPolicy
from repro.sem.optimizer.sampler import OperatorProfile, Sampler

__all__ = [
    "Balanced",
    "MaxQuality",
    "MinCost",
    "OperatorProfile",
    "OptimizationPolicy",
    "OptimizationReport",
    "Optimizer",
    "PlanEstimate",
    "Sampler",
    "estimate_chain",
]
