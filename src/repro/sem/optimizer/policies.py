"""Optimization policies: how to trade quality against cost.

A policy picks the physical model for an operator given sampled profiles.
Quality is measured as *agreement with the champion model* on the sample —
the same reference-model trick LOTUS uses — because ground truth is not
available to the optimizer.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sem.optimizer.sampler import OperatorProfile


class OptimizationPolicy(abc.ABC):
    """Strategy for choosing an operator's model from sampled profiles."""

    name: str = "policy"

    @abc.abstractmethod
    def choose_model(
        self, profiles: dict[str, "OperatorProfile"], champion: str
    ) -> str:
        """Return the model to use; ``profiles`` maps model name to profile."""


class MaxQuality(OptimizationPolicy):
    """Always use the champion model (Palimpzest's default posture)."""

    name = "max-quality"

    def choose_model(self, profiles: dict[str, "OperatorProfile"], champion: str) -> str:
        return champion


class MinCost(OptimizationPolicy):
    """Use the cheapest profiled model meeting a loose quality floor."""

    name = "min-cost"

    def __init__(self, quality_floor: float = 0.5) -> None:
        self.quality_floor = quality_floor

    def choose_model(self, profiles: dict[str, "OperatorProfile"], champion: str) -> str:
        candidates = [
            profile
            for profile in profiles.values()
            if profile.agreement >= self.quality_floor
        ]
        if not candidates:
            return champion
        return min(candidates, key=lambda p: (p.cost_per_record, p.model)).model


class Balanced(OptimizationPolicy):
    """Cheapest model whose sampled agreement clears a strict floor.

    This is the policy that yields the paper's observation that the
    optimizer "was able to use cheaper models for some of the semantic
    operators": easy operators downgrade, hard ones stay on the champion.
    """

    name = "balanced"

    def __init__(self, quality_floor: float = 0.92) -> None:
        if not 0.0 <= quality_floor <= 1.0:
            raise ValueError(f"quality_floor must be in [0, 1], got {quality_floor}")
        self.quality_floor = quality_floor

    def choose_model(self, profiles: dict[str, "OperatorProfile"], champion: str) -> str:
        candidates = [
            profile
            for profile in profiles.values()
            if profile.agreement >= self.quality_floor
        ]
        if not candidates:
            return champion
        return min(candidates, key=lambda p: (p.cost_per_record, p.model)).model


#: Name -> class for every built-in policy (keys match ``Policy.name``).
POLICIES: dict[str, type[OptimizationPolicy]] = {
    cls.name: cls for cls in (MaxQuality, MinCost, Balanced)
}


def policy_by_name(name: str) -> OptimizationPolicy:
    """Instantiate a built-in policy from its name.

    Replay bundles and config specs store policies by name; this is the
    single place that mapping lives.
    """
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown optimization policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
