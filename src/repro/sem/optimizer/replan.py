"""Statistics keys and the adaptive mid-query re-planner.

Two halves, one feedback loop:

- **Keys.** :func:`stats_key` names the unit the
  :class:`~repro.obs.stats.StatisticsStore` learns over: a stable digest
  of (operator token, resolved model, dataset, tenant scope, substrate
  seed).  The token grammar is :func:`~repro.sem.materialize.op_token`'s —
  the same normalization that makes materialization fingerprints stable
  makes statistics keys stable — so semantically identical operators
  accumulate into one prior across queries.

- **Re-planning.** The :class:`Replanner` is armed by the optimizer and
  consulted by the engine at operator/section boundaries: when observed
  cardinality diverges from the plan estimate past the configured
  threshold, it re-costs the remaining suffix under learned priors,
  reorders its commuting filters (the only rewrite that is bit-identity
  safe mid-flight: filters commute, so records are unchanged), and — only
  on a strict estimated-cost improvement — hands the engine freshly bound
  physical operators for the suffix.  Every accepted decision is recorded
  on the report and emitted as a zero-duration ``replan`` span carrying
  the trigger cause and before/after plan fingerprints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sem import logical as L
from repro.sem.materialize import op_token, prefix_fingerprints
from repro.sem.optimizer.cost_model import (
    estimate_chain_steps,
    filter_rank,
    profile_from_prior,
)
from repro.sem.optimizer.rules import reorder_filters
from repro.utils.hashing import stable_digest

if TYPE_CHECKING:
    from repro.sem import physical as P
    from repro.sem.optimizer.optimizer import OptimizationReport, Optimizer

#: Bump when the key grammar changes (stale persisted priors must miss).
STATS_KEY_VERSION = 1

#: Filters that commute — the only operators the re-planner may move.
_COMMUTING = (L.SemFilterOp, L.PyFilterOp, L.StructFilterOp)


def stats_token(op: L.LogicalOperator, model: "str | None") -> "tuple | None":
    """Canonical statistics token for one operator (None = unkeyable).

    Same grammar as materialization's :func:`op_token`, plus a SqlScan
    case: a pushed-down leaf is keyed by its source and embedded operator
    tokens, so its learned selectivity survives re-optimization of the
    surrounding plan.
    """
    if isinstance(op, L.SqlScanOp):
        pushed = tuple(op_token(inner, None) for inner in op.pushed)
        if any(token is None for token in pushed):
            return None
        return ("sql_scan", op.source.source_id, pushed)
    return op_token(op, model)


def stats_key(
    op: L.LogicalOperator,
    model: "str | None",
    dataset: str,
    scope: str,
    llm_seed: int,
) -> "str | None":
    """Digest naming the prior for ``op`` on ``dataset`` (None = unkeyable).

    ``scope`` isolates tenants on a shared store; ``llm_seed`` keeps
    priors honest across simulated worlds (different seeds are different
    populations).
    """
    token = stats_token(op, model)
    if token is None or not dataset:
        return None
    return stable_digest(
        "stats-key", STATS_KEY_VERSION, llm_seed, scope, dataset, token
    )


def plan_fingerprint(
    chain: "list[L.LogicalOperator]", models: "list[str | None]"
) -> str:
    """Short digest identifying a bound plan (order + models)."""
    return stable_digest(
        "plan-fp", tuple((op.label(), model) for op, model in zip(chain, models))
    )


class Replanner:
    """Mid-query suffix re-optimizer, consulted at execution boundaries.

    Holds the optimizer (for re-binding), the model choices, and the
    report whose ``final_chain`` / ``stats_plan`` / ``est_*`` views it
    keeps aligned with what the engine is actually running.
    """

    def __init__(
        self,
        optimizer: "Optimizer",
        chosen: "dict[int, str]",
        report: "OptimizationReport",
    ) -> None:
        self.optimizer = optimizer
        self.config = optimizer.config
        self.chosen = chosen
        self.report = report
        self.replans_used = 0

    def consider(
        self,
        boundary: int,
        observed_rows: int,
        operators: "list[P.PhysicalOperator]",
    ) -> "list[P.PhysicalOperator] | None":
        """Maybe re-plan the suffix past ``boundary``.

        ``observed_rows`` is the record count flowing across the boundary;
        ``operators`` the engine's current physical list (used only as an
        alignment check).  Returns freshly bound physical operators for
        the suffix, or None to keep the current plan.
        """
        config = self.config
        report = self.report
        if config.replan_limit and self.replans_used >= config.replan_limit:
            return None
        if observed_rows < config.replan_min_rows:
            return None
        chain = report.final_chain
        if not chain or len(chain) != len(operators):
            return None
        if boundary <= 0 or boundary >= len(chain):
            return None
        if len(report.est_rows) != len(chain):
            return None

        est = report.est_rows[boundary - 1]
        divergence = max(
            (observed_rows + 1e-9) / (est + 1e-9),
            (est + 1e-9) / (observed_rows + 1e-9),
        )
        if divergence < config.replan_threshold:
            return None
        metrics = config.llm.metrics
        if metrics.enabled:
            metrics.counter("replan.triggers").inc()

        store = config.stats_store
        suffix = chain[boundary:]
        models = report.resolved_models
        # What do we now believe about the suffix?  Learned priors beat
        # plan-time profiles; positions with neither stay unknown.
        knowledge: dict[int, object] = {}
        sources: dict[int, str] = {}
        filter_priors = 0
        for offset, op in enumerate(suffix):
            position = boundary + offset
            entry = (
                report.stats_plan[position]
                if position < len(report.stats_plan)
                else None
            )
            prior = store.usable_prior(entry["key"]) if entry else None
            if prior is not None:
                knowledge[offset] = profile_from_prior(prior)
                sources[offset] = "prior"
                if isinstance(op, _COMMUTING):
                    filter_priors += 1
            else:
                profile = report.est_profiles.get(position)
                if profile is not None:
                    knowledge[offset] = profile
                    sources[offset] = (
                        report.est_sources[position]
                        if position < len(report.est_sources)
                        else "static"
                    )
        if filter_priors == 0:
            # Nothing learned about any movable filter — a reorder would
            # be driven by the same estimates the plan already used.
            return None

        def rank(offset: int, op: L.LogicalOperator) -> float:
            profile = knowledge.get(offset)
            if profile is None:
                return float("inf")
            return filter_rank(profile)

        new_suffix = reorder_filters(list(suffix), rank)
        if [id(op) for op in new_suffix] == [id(op) for op in suffix]:
            return None

        observed = float(observed_rows)
        estimate_args = dict(
            input_cardinality=observed,
            parallelism=config.parallelism,
            pipeline=config.pipeline,
            batch_size=config.resolved_batch_size(),
        )
        old_total, _ = estimate_chain_steps(suffix, knowledge, **estimate_args)
        profile_by_id = {
            id(op): knowledge.get(offset) for offset, op in enumerate(suffix)
        }
        new_profiles = {
            offset: profile_by_id[id(op)]
            for offset, op in enumerate(new_suffix)
            if profile_by_id.get(id(op)) is not None
        }
        new_total, new_steps = estimate_chain_steps(
            new_suffix, new_profiles, **estimate_args
        )
        improves_cost = new_total.cost_usd < old_total.cost_usd - 1e-12
        ties_cost = abs(new_total.cost_usd - old_total.cost_usd) <= 1e-12
        improves_time = new_total.time_s < old_total.time_s - 1e-12
        if not (improves_cost or (ties_cost and improves_time)):
            return None

        # Accept: rebuild every chain-aligned view on the report so
        # EXPLAIN, ingestion, and any later boundary see the new plan.
        before_fp = plan_fingerprint(chain, models)
        entry_by_id = {
            id(op): report.stats_plan[boundary + offset]
            for offset, op in enumerate(suffix)
        }
        model_by_id = {
            id(op): models[boundary + offset]
            for offset, op in enumerate(suffix)
        }
        source_by_offset = {
            id(op): sources.get(offset) for offset, op in enumerate(suffix)
        }
        new_chain = chain[:boundary] + new_suffix
        new_models = models[:boundary] + [model_by_id[id(op)] for op in new_suffix]
        after_fp = plan_fingerprint(new_chain, new_models)

        report.final_chain = new_chain
        report.resolved_models = new_models
        report.final_order = [op.label() for op in new_chain]
        report.stats_plan[boundary:] = [entry_by_id[id(op)] for op in new_suffix]
        new_est_profiles = {
            position: profile
            for position, profile in report.est_profiles.items()
            if position < boundary
        }
        new_est_sources = report.est_sources[:boundary]
        for offset, op in enumerate(new_suffix):
            profile = profile_by_id.get(id(op))
            if profile is not None:
                new_est_profiles[boundary + offset] = profile
            new_est_sources.append(source_by_offset.get(id(op)) or "static")
        report.est_profiles = new_est_profiles
        report.est_sources = new_est_sources
        report.est_rows[boundary:] = [step.cardinality for step in new_steps]
        report.est_costs[boundary:] = [step.cost_usd for step in new_steps]
        if report.capture is not None:
            report.capture.fingerprints = list(
                prefix_fingerprints(
                    new_chain,
                    new_models,
                    getattr(config.llm, "seed", 0),
                    scope=getattr(config, "materialization_scope", ""),
                )
            )

        decision = {
            "boundary": boundary,
            "cause": (
                f"cardinality divergence {divergence:.2f}x after "
                f"{chain[boundary - 1].label()} "
                f"(est {est:.1f}, observed {observed_rows})"
            ),
            "divergence": round(divergence, 4),
            "est_rows": round(est, 2),
            "observed_rows": observed_rows,
            "before_plan": before_fp,
            "after_plan": after_fp,
            "before_order": [op.label() for op in suffix],
            "after_order": [op.label() for op in new_suffix],
            "est_cost_before_usd": round(old_total.cost_usd, 6),
            "est_cost_after_usd": round(new_total.cost_usd, 6),
        }
        report.replans.append(decision)
        self.replans_used += 1
        tracer = config.llm.tracer
        if tracer.enabled:
            with tracer.span("replan", kind="replan", **decision):
                pass
        if metrics.enabled:
            metrics.counter("replan.reorders").inc()
        return [
            self.optimizer._bind_one(op, new_chain, boundary + offset, self.chosen)
            for offset, op in enumerate(new_suffix)
        ]
