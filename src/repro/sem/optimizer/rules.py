"""Logical rewrite rules over linear operator chains.

Rules operate on leaves-first operator lists.  The only rewrite that needs
runtime statistics is filter reordering, which takes an ordering key per
position; pure-structure rules (Python-filter pushdown) need none.
"""

from __future__ import annotations

from typing import Callable

from repro.sem import logical as L

#: Operator types that commute with each other (all are record filters).
_COMMUTING = (L.SemFilterOp, L.PyFilterOp, L.StructFilterOp)


def commuting_runs(chain: list[L.LogicalOperator]) -> list[tuple[int, int]]:
    """Return [start, end) index ranges of maximal commuting-filter runs."""
    runs: list[tuple[int, int]] = []
    start = None
    for index, op in enumerate(chain):
        if isinstance(op, _COMMUTING):
            if start is None:
                start = index
        else:
            if start is not None:
                runs.append((start, index))
                start = None
    if start is not None:
        runs.append((start, len(chain)))
    return runs


def push_py_filters(chain: list[L.LogicalOperator]) -> list[L.LogicalOperator]:
    """Within each commuting run, move free filters first.

    Structured and Python filters cost nothing, so they always belong
    before semantic filters in the same run (they cannot cross
    maps/aggregations because they may read fields those operators
    produce).  Structured filters lead — adjacent to the scan they are
    SQL-pushdown candidates, and Python filters never are.
    """
    result = list(chain)
    for start, end in commuting_runs(result):
        run = result[start:end]
        struct_filters = [op for op in run if isinstance(op, L.StructFilterOp)]
        py_filters = [op for op in run if isinstance(op, L.PyFilterOp)]
        sem_filters = [op for op in run if isinstance(op, L.SemFilterOp)]
        result[start:end] = struct_filters + py_filters + sem_filters
    return result


def reorder_filters(
    chain: list[L.LogicalOperator],
    rank_of: Callable[[int, L.LogicalOperator], float],
) -> list[L.LogicalOperator]:
    """Sort each commuting run by ``rank_of(original_position, op)``.

    The sort is stable, so equal-rank filters keep their written order.
    """
    result = list(chain)
    for start, end in commuting_runs(result):
        indexed = list(enumerate(result[start:end], start=start))
        indexed.sort(key=lambda pair: rank_of(pair[0], pair[1]))
        result[start:end] = [op for _, op in indexed]
    return result


def prune_noop_projects(chain: list[L.LogicalOperator]) -> list[L.LogicalOperator]:
    """Drop adjacent duplicate projections (the later one wins)."""
    result: list[L.LogicalOperator] = []
    for op in chain:
        if (
            isinstance(op, L.ProjectOp)
            and result
            and isinstance(result[-1], L.ProjectOp)
        ):
            result.pop()
        result.append(op)
    return result


def merge_adjacent_limits(chain: list[L.LogicalOperator]) -> list[L.LogicalOperator]:
    """Collapse consecutive limits to the smaller bound."""
    result: list[L.LogicalOperator] = []
    for op in chain:
        if isinstance(op, L.LimitOp) and result and isinstance(result[-1], L.LimitOp):
            previous = result.pop()
            op = L.LimitOp(child=None, n=min(previous.n, op.n))
        result.append(op)
    return result
