"""Plan cost estimation from sampled operator profiles.

Chains per-operator estimates: a filter shrinks the estimated cardinality
by its sampled selectivity; downstream operators are charged only for the
surviving records.  This is what makes filter reordering and pushdown
worthwhile — exactly the effect the paper credits for ``PZ compute``'s
savings over ``CodeAgent+``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sem import logical as L
from repro.sem.optimizer.sampler import OperatorProfile


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated totals for executing a (partial) plan."""

    cost_usd: float
    time_s: float
    cardinality: float

    def __add__(self, other: "PlanEstimate") -> "PlanEstimate":
        return PlanEstimate(
            self.cost_usd + other.cost_usd,
            self.time_s + other.time_s,
            other.cardinality,
        )


def estimate_operator(
    op: L.LogicalOperator,
    cardinality: float,
    profile: OperatorProfile | None,
) -> PlanEstimate:
    """Estimate one operator given its input cardinality."""
    if isinstance(op, (L.PyFilterOp,)):
        selectivity = profile.selectivity if profile else 0.5
        return PlanEstimate(0.0, 0.0, cardinality * selectivity)
    if isinstance(op, (L.PyMapOp, L.ProjectOp)):
        return PlanEstimate(0.0, 0.0, cardinality)
    if isinstance(op, L.LimitOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.n))
    if isinstance(op, L.RetrieveOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.k))
    if isinstance(op, L.SemFilterOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        selectivity = profile.selectivity if profile else 0.5
        return PlanEstimate(
            cardinality * cost_per, cardinality * latency_per, cardinality * selectivity
        )
    if isinstance(op, (L.SemMapOp, L.SemClassifyOp)):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(cardinality * cost_per, cardinality * latency_per, cardinality)
    if isinstance(op, L.SemGroupByOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(
            cardinality * cost_per,
            cardinality * latency_per,
            min(cardinality, float(len(op.groups))),
        )
    if isinstance(op, L.SemTopKOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.k))
    if isinstance(op, L.SemAggOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(cost_per, latency_per, 1.0)
    if isinstance(op, L.ScanOp):
        size = op.source.cardinality() if op.source is not None else None
        return PlanEstimate(0.0, 0.0, float(size) if size is not None else cardinality)
    # Joins and unknown operators: pass cardinality through unpriced.
    return PlanEstimate(0.0, 0.0, cardinality)


def estimate_chain(
    chain: list[L.LogicalOperator],
    profiles: dict[int, OperatorProfile],
    input_cardinality: float | None = None,
) -> PlanEstimate:
    """Estimate a leaves-first operator chain.

    ``profiles`` maps chain positions to the profile of the model *chosen*
    for that operator.
    """
    cardinality = input_cardinality if input_cardinality is not None else 0.0
    total = PlanEstimate(0.0, 0.0, cardinality)
    for position, op in enumerate(chain):
        step = estimate_operator(op, total.cardinality, profiles.get(position))
        total = total + step
    return total


def filter_rank(profile: OperatorProfile) -> float:
    """Ordering key for commuting filters: cheap, selective filters first.

    Classic predicate ordering: rank = cost / (1 - selectivity).  A free
    filter ranks first regardless of selectivity; a filter that drops
    nothing ranks last regardless of cost.
    """
    reduction = max(1e-6, 1.0 - profile.selectivity)
    return profile.cost_per_record / reduction
