"""Plan cost estimation from sampled operator profiles.

Chains per-operator estimates: a filter shrinks the estimated cardinality
by its sampled selectivity; downstream operators are charged only for the
surviving records.  This is what makes filter reordering and pushdown
worthwhile — exactly the effect the paper credits for ``PZ compute``'s
savings over ``CodeAgent+``.

When the executor runs pipelined (the default), the time estimate must
predict the *critical-path makespan* of fused streamable sections — not
the per-operator sum — or plan choice regresses toward plans that only
look good under barrier semantics.  ``estimate_chain`` therefore accepts
the executor's ``parallelism``/``pipeline``/``batch_size`` knobs; with the
defaults it reproduces the original sequential-sum estimate exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sem import logical as L
from repro.sem.optimizer.sampler import OperatorProfile

#: Logical operators whose physical implementations stream record batches
#: (mirrors ``PhysicalOperator.streamable``); adjacent runs of these fuse
#: into one pipelined section.
STREAMABLE_OPS = (
    L.SemFilterOp,
    L.SemMapOp,
    L.SemClassifyOp,
    L.SemTopKOp,
    L.PyFilterOp,
    L.PyMapOp,
    L.StructFilterOp,
    L.ProjectOp,
    L.LimitOp,
)


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated totals for executing a (partial) plan."""

    cost_usd: float
    time_s: float
    cardinality: float

    def __add__(self, other: "PlanEstimate") -> "PlanEstimate":
        return PlanEstimate(
            self.cost_usd + other.cost_usd,
            self.time_s + other.time_s,
            other.cardinality,
        )


def estimate_operator(
    op: L.LogicalOperator,
    cardinality: float,
    profile: OperatorProfile | None,
) -> PlanEstimate:
    """Estimate one operator given its input cardinality."""
    if isinstance(op, (L.PyFilterOp, L.StructFilterOp)):
        selectivity = profile.selectivity if profile else 0.5
        return PlanEstimate(0.0, 0.0, cardinality * selectivity)
    if isinstance(op, (L.PyMapOp, L.ProjectOp)):
        return PlanEstimate(0.0, 0.0, cardinality)
    if isinstance(op, L.LimitOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.n))
    if isinstance(op, L.StructAggOp):
        # Token-free; a global aggregate collapses to one row, a grouped
        # one to at most the input's distinct keys (unknown — pass through).
        return PlanEstimate(0.0, 0.0, 1.0 if not op.group_by else cardinality)
    if isinstance(op, L.SqlScanOp):
        # Pushed sections are token-free by construction: chain the
        # embedded structured operators' estimates from the source size.
        size = op.source.cardinality() if op.source is not None else None
        pushed_cardinality = float(size) if size is not None else cardinality
        for pushed in op.pushed:
            pushed_cardinality = estimate_operator(
                pushed, pushed_cardinality, None
            ).cardinality
        return PlanEstimate(0.0, 0.0, pushed_cardinality)
    if isinstance(op, L.RetrieveOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.k))
    if isinstance(op, L.SemFilterOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        selectivity = profile.selectivity if profile else 0.5
        return PlanEstimate(
            cardinality * cost_per, cardinality * latency_per, cardinality * selectivity
        )
    if isinstance(op, (L.SemMapOp, L.SemClassifyOp)):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(cardinality * cost_per, cardinality * latency_per, cardinality)
    if isinstance(op, L.SemGroupByOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(
            cardinality * cost_per,
            cardinality * latency_per,
            min(cardinality, float(len(op.groups))),
        )
    if isinstance(op, L.SemTopKOp):
        return PlanEstimate(0.0, 0.0, min(cardinality, op.k))
    if isinstance(op, L.SemAggOp):
        cost_per = profile.cost_per_record if profile else 0.0
        latency_per = profile.latency_per_record if profile else 0.0
        return PlanEstimate(cost_per, latency_per, 1.0)
    if isinstance(op, L.ScanOp):
        size = op.source.cardinality() if op.source is not None else None
        return PlanEstimate(0.0, 0.0, float(size) if size is not None else cardinality)
    # Joins and unknown operators: pass cardinality through unpriced.
    return PlanEstimate(0.0, 0.0, cardinality)


def estimate_chain_steps(
    chain: list[L.LogicalOperator],
    profiles: dict[int, OperatorProfile],
    input_cardinality: float | None = None,
    parallelism: int = 1,
    pipeline: bool = False,
    batch_size: int | None = None,
) -> tuple[PlanEstimate, list[PlanEstimate]]:
    """Like :func:`estimate_chain` but also returns the per-operator steps.

    ``steps[i].cardinality`` is the estimated *output* cardinality of
    ``chain[i]`` — what EXPLAIN's drift column and the mid-query
    re-planner compare against observed row counts.
    """
    cardinality = input_cardinality if input_cardinality is not None else 0.0
    total = PlanEstimate(0.0, 0.0, cardinality)
    steps: list[PlanEstimate] = []
    for position, op in enumerate(chain):
        step = estimate_operator(op, total.cardinality, profiles.get(position))
        if parallelism > 1:
            step = PlanEstimate(step.cost_usd, step.time_s / parallelism, step.cardinality)
        steps.append(step)
        total = total + step
    if not pipeline or parallelism < 1:
        return total, steps

    time_s = 0.0
    index = 0
    while index < len(chain):
        if not isinstance(chain[index], STREAMABLE_OPS):
            time_s += steps[index].time_s
            index += 1
            continue
        end = index
        while end < len(chain) and isinstance(chain[end], STREAMABLE_OPS):
            end += 1
        section = steps[index:end]
        section_input = steps[index - 1].cardinality if index > 0 else cardinality
        resolved_batch = batch_size if batch_size is not None else max(2 * parallelism, 16)
        n_batches = max(1, math.ceil(section_input / resolved_batch))
        stage_times = [step.time_s for step in section]
        if len(section) < 2:
            time_s += sum(stage_times)
        else:
            fill = sum(stage_times) / n_batches
            bottleneck = max(stage_times) / n_batches
            time_s += fill + (n_batches - 1) * bottleneck
        index = end
    return PlanEstimate(total.cost_usd, time_s, total.cardinality), steps


def estimate_chain(
    chain: list[L.LogicalOperator],
    profiles: dict[int, OperatorProfile],
    input_cardinality: float | None = None,
    parallelism: int = 1,
    pipeline: bool = False,
    batch_size: int | None = None,
) -> PlanEstimate:
    """Estimate a leaves-first operator chain.

    ``profiles`` maps chain positions to the profile of the model *chosen*
    for that operator.  Cost and cardinality are mode-independent;
    ``parallelism`` divides per-operator latency into wave time, and
    ``pipeline=True`` replaces the per-operator time sum of each fused
    streamable section with its pipelined makespan:
    ``fill + (B - 1) * bottleneck`` for ``B`` batches — the first batch
    crosses every stage, then the slowest stage paces the rest.
    """
    total, _ = estimate_chain_steps(
        chain,
        profiles,
        input_cardinality=input_cardinality,
        parallelism=parallelism,
        pipeline=pipeline,
        batch_size=batch_size,
    )
    return total


def profile_from_prior(prior) -> OperatorProfile:
    """Adapt a learned :class:`~repro.obs.stats.OperatorPrior` to the
    :class:`OperatorProfile` shape the estimators consume.

    Duck-typed on purpose: the obs layer must not import sem, and the
    cost model only needs the prior's selectivity/cost/latency surface.
    Agreement is pinned to 1.0 — priors describe the model the plan
    already chose, not a candidate being auditioned.
    """
    return OperatorProfile(
        model=prior.model or "prior",
        agreement=1.0,
        selectivity=prior.selectivity,
        cost_per_record=prior.cost_per_record,
        latency_per_record=prior.latency_per_record,
        sample_size=max(1, round(prior.rows_in)),
    )


def filter_rank(profile: OperatorProfile) -> float:
    """Ordering key for commuting filters: cheap, selective filters first.

    Classic predicate ordering: rank = cost / (1 - selectivity).  A free
    filter ranks first regardless of selectivity; a filter that drops
    nothing ranks last regardless of cost.
    """
    reduction = max(1e-6, 1.0 - profile.selectivity)
    return profile.cost_per_record / reduction
