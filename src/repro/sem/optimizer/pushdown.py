"""SQL pushdown: compile structured prefixes into a SqlScan leaf.

Structured operators — :class:`~repro.sem.logical.StructFilterOp`,
:class:`~repro.sem.logical.ProjectOp`, :class:`~repro.sem.logical.LimitOp`,
:class:`~repro.sem.logical.StructAggOp` — are token-free and evaluable by
the ``repro.sql`` engine.  When a run of them sits adjacent to the scan
(after hoisting: structured filters commute with other filters in the same
run), the whole prefix collapses into one
:class:`~repro.sem.logical.SqlScanOp` leaf, so the SQL engine prunes
records *before* the first LLM operator sees them.

Soundness:

- Hoisting a structured filter above other filters in the same commuting
  run preserves the run's output exactly — filters are pure per-record
  predicates that only remove records and preserve order, so any
  interleaving yields the same survivors.
- The SqlScan applies the pushed operators in order through the same
  ``repro.sql`` evaluator row mode uses (see
  :func:`repro.sem.physical.apply_structured`), so surviving records are
  bit-identical, uids included.

The pass runs whether or not cost-based optimization is enabled; it is
gated only by ``QueryProcessorConfig.pushdown``.
"""

from __future__ import annotations

from repro.sem import logical as L
from repro.sem.structql import aggregation_sql

#: Operators a SqlScan can absorb (StructAgg only as the terminal op).
_PUSHABLE = (L.StructFilterOp, L.ProjectOp, L.LimitOp)

#: Filter types a structured filter may hoist across (mirrors
#: ``rules._COMMUTING``; imported lazily there to avoid a cycle).
_HOISTABLE_ACROSS = (L.SemFilterOp, L.PyFilterOp)


def push_structured_prefix(
    chain: list[L.LogicalOperator],
) -> tuple[list[L.LogicalOperator], L.SqlScanOp | None]:
    """Rewrite ``Scan → structured prefix`` into a ``SqlScanOp`` leaf.

    Returns the (possibly rewritten) chain and the SqlScan, or ``(chain,
    None)`` when nothing qualifies.  A prefix qualifies only when it
    contains at least one :class:`StructFilterOp` or :class:`StructAggOp` —
    bare projections/limits are not worth a scan rewrite.
    """
    if not chain or not isinstance(chain[0], L.ScanOp):
        return chain, None
    chain = hoist_struct_filters(chain)
    pushed: list[L.LogicalOperator] = []
    index = 1
    while index < len(chain):
        op = chain[index]
        if isinstance(op, _PUSHABLE):
            pushed.append(op)
            index += 1
            continue
        if isinstance(op, L.StructAggOp):
            # Terminal: an aggregation re-keys the record stream, so
            # nothing structured after it can join this scan.
            pushed.append(op)
            index += 1
        break
    if not any(isinstance(op, (L.StructFilterOp, L.StructAggOp)) for op in pushed):
        return chain, None
    scan: L.ScanOp = chain[0]
    severed = tuple(op.with_child(None) for op in pushed)
    sql_scan = L.SqlScanOp(
        child=None,
        source=scan.source,
        pushed=severed,
        sql=compiled_sql(scan.source.source_id, severed),
    )
    return [sql_scan] + chain[index:], sql_scan


def hoist_struct_filters(chain: list[L.LogicalOperator]) -> list[L.LogicalOperator]:
    """Move structured filters to the front of the scan-adjacent filter run.

    Only the commuting run that starts directly above the scan is touched:
    that is the only place a hoist can extend the pushable prefix.  The
    relative order of the structured filters — and of everything else — is
    preserved (the rewrite is a stable partition).
    """
    if not chain or not isinstance(chain[0], L.ScanOp):
        return chain
    end = 1
    while end < len(chain) and isinstance(
        chain[end], (L.StructFilterOp,) + _HOISTABLE_ACROSS
    ):
        end += 1
    run = chain[1:end]
    structured = [op for op in run if isinstance(op, L.StructFilterOp)]
    if not structured or run[: len(structured)] == structured:
        return chain
    rest = [op for op in run if not isinstance(op, L.StructFilterOp)]
    return [chain[0]] + structured + rest + chain[end:]


def compiled_sql(source_id: str, pushed: tuple[L.LogicalOperator, ...]) -> str:
    """Display-form SELECT for a pushed prefix (EXPLAIN / report surface).

    Clause slots fill in SQL's evaluation order (WHERE → SELECT list →
    LIMIT); an operator arriving out of slot order closes the current
    SELECT into a subquery, so arbitrary pushed sequences — a filter over
    projected fields, a filter after a limit — render faithfully.
    """
    base = source_id
    where: list[str] = []
    select: tuple[str, ...] | None = None
    limit: int | None = None

    def flush() -> None:
        nonlocal base, where, select, limit
        if not where and select is None and limit is None:
            return
        clause = f"SELECT {', '.join(select) if select is not None else '*'} FROM {base}"
        if where:
            conjunction = (
                " AND ".join(f"({condition})" for condition in where)
                if len(where) > 1
                else where[0]
            )
            clause += f" WHERE {conjunction}"
        if limit is not None:
            clause += f" LIMIT {limit}"
        base = f"({clause})"
        where, select, limit = [], None, None

    for op in pushed:
        if isinstance(op, L.StructFilterOp):
            if select is not None or limit is not None:
                flush()
            where.append(op.condition)
        elif isinstance(op, L.ProjectOp):
            if select is not None or limit is not None:
                flush()
            select = op.fields
        elif isinstance(op, L.LimitOp):
            if limit is not None:
                flush()
            limit = op.n
        elif isinstance(op, L.StructAggOp):
            flush()
            base = f"({aggregation_sql(base, op.group_by, op.aggregates)})"
    flush()
    if base.startswith("(") and base.endswith(")"):
        return base[1:-1]
    return f"SELECT * FROM {base}"
