"""The plan optimizer: rewrites + sampling + model selection + binding.

For linear plans the optimizer:

1. materializes the scan's records and draws a profiling sample;
2. profiles every semantic operator across candidate models with the
   successive-halving :class:`~repro.sem.optimizer.sampler.Sampler`;
3. lets the configured policy choose each operator's physical model;
4. reorders commuting filters by cost/selectivity rank and pushes free
   Python filters first;
5. binds logical operators to physical operators.

Plans containing joins are bound without sampling (the champion model runs
every semantic operator) — mirroring the prototype status of join
optimization in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import OptimizationError
from repro.sem import logical as L
from repro.sem import physical as P

if TYPE_CHECKING:
    from repro.sem.config import QueryProcessorConfig
from repro.sem.materialize import (
    CapturePlan,
    incremental_safe_prefix,
    prefix_fingerprints,
)
from repro.sem.optimizer.cost_model import (
    PlanEstimate,
    estimate_chain_steps,
    filter_rank,
    profile_from_prior,
)
from repro.sem.optimizer.pushdown import push_structured_prefix
from repro.sem.optimizer.replan import Replanner, stats_key
from repro.sem.optimizer.rules import (
    merge_adjacent_limits,
    prune_noop_projects,
    push_py_filters,
    reorder_filters,
)
from repro.sem.optimizer.sampler import OperatorProfile, Sampler
from repro.utils.seeding import SeededRng

_PROFILED_OPS = (L.SemFilterOp, L.SemMapOp, L.SemClassifyOp, L.SemGroupByOp)


@dataclass
class OptimizationReport:
    """What the optimizer decided and what deciding cost."""

    optimized: bool
    chosen_models: dict[str, str] = field(default_factory=dict)
    final_order: list[str] = field(default_factory=list)
    sampling_cost_usd: float = 0.0
    sampling_time_s: float = 0.0
    profiles: dict[str, dict[str, OperatorProfile]] = field(default_factory=dict)
    estimate: PlanEstimate | None = None
    note: str = ""
    #: Sub-plan reuse decision (0 = no materialized prefix was reused).
    reused_prefix: int = 0
    reuse_kind: str = ""
    reuse_fingerprint: str = ""
    reuse_delta_records: int = 0
    #: Estimated spend avoided by replaying instead of recomputing.
    reuse_saved_est_usd: float = 0.0
    #: Store-wide hit count after this decision (exact + delta).
    reuse_store_hits: int = 0
    #: Engine-side capture instructions (None = no store configured).
    capture: "CapturePlan | None" = field(default=None, repr=False)
    #: Structured operators compiled into the SqlScan leaf (0 = no pushdown).
    pushdown_ops: int = 0
    #: Display-form SELECT the pushed prefix compiles to.
    pushdown_sql: str = ""
    #: The bound logical chain (leaves first) — kept aligned with the
    #: engine's physical operators, including across mid-query replans.
    final_chain: list = field(default_factory=list, repr=False)
    #: Resolved physical model per chain position (None for free ops).
    resolved_models: list = field(default_factory=list, repr=False)
    #: Statistics-key metadata per chain position (None = not keyable);
    #: what post-run ingestion and the re-planner look priors up with.
    stats_plan: list = field(default_factory=list, repr=False)
    #: Estimated output cardinality / cost per chain position.
    est_rows: list = field(default_factory=list)
    est_costs: list = field(default_factory=list)
    #: Where each position's estimate came from: "prior" | "sampled" | "static".
    est_sources: list = field(default_factory=list)
    #: The profile actually used per position (prior-derived or sampled).
    est_profiles: dict = field(default_factory=dict, repr=False)
    #: Accepted mid-query replan decisions (cause, before/after plans).
    replans: list = field(default_factory=list)
    #: Armed re-planner the engine consults at boundaries (None = off).
    replanner: "Replanner | None" = field(default=None, repr=False)
    #: Exchange segmentation for scale-out execution (None = shards=1,
    #: the unsharded engine path).  The executor updates the segments'
    #: runtime diagnostics in place, so EXPLAIN footers see them.
    shard_plan: object | None = field(default=None, repr=False)


class Optimizer:
    """Optimizes and binds a logical plan under a configuration."""

    def __init__(self, config: "QueryProcessorConfig") -> None:
        self.config = config

    def optimize(self, plan: L.LogicalPlan) -> tuple[list[P.PhysicalOperator], OptimizationReport]:
        bound, report = self._optimize(plan)
        shards = getattr(self.config, "shards", 1)
        if shards > 1:
            # The sharding pass runs last, over the bound operators, so the
            # exchange segments line up with whatever rewrites and model
            # choices were made above.  shards=1 never reaches this —
            # report.shard_plan stays None and the engine path is untouched.
            from repro.sem.shard import plan_shards

            report.shard_plan = plan_shards(
                bound, shards, getattr(self.config, "partitioner", "hash")
            )
        return bound, report

    def _optimize(self, plan: L.LogicalPlan) -> tuple[list[P.PhysicalOperator], OptimizationReport]:
        L.validate_plan(plan)
        if not plan.is_linear():
            note = (
                "join plans are bound without sampling"
                if self.config.optimize
                else "optimization disabled"
            )
            return self._bind_spine(plan.root, {}), OptimizationReport(
                optimized=False, note=note
            )
        if not self.config.optimize:
            report = OptimizationReport(optimized=False, note="optimization disabled")
            chain = self._maybe_pushdown(plan.operators(), report)
            return self._reuse_and_bind(chain, {}, report), report
        return self._optimize_linear(plan)

    def _maybe_pushdown(
        self, chain: list[L.LogicalOperator], report: OptimizationReport
    ) -> list[L.LogicalOperator]:
        """Compile the structured prefix into a SqlScan when enabled.

        Runs independently of cost-based optimization: pushdown is a
        semantics-preserving rewrite gated only by ``config.pushdown``.
        """
        if not getattr(self.config, "pushdown", True):
            return chain
        chain, sql_scan = push_structured_prefix(chain)
        if sql_scan is not None:
            report.pushdown_ops = len(sql_scan.pushed)
            report.pushdown_sql = sql_scan.sql
            report.final_order = [op.label() for op in chain]
        return chain

    # ------------------------------------------------------------------
    # Linear-plan optimization
    # ------------------------------------------------------------------

    def _optimize_linear(
        self, plan: L.LogicalPlan
    ) -> tuple[list[P.PhysicalOperator], OptimizationReport]:
        config = self.config
        chain = plan.operators()
        scans = [op for op in chain if isinstance(op, L.ScanOp)]
        if len(scans) != 1:
            raise OptimizationError(
                f"linear plan must have exactly one scan, found {len(scans)}"
            )
        source_records = list(scans[0].source.iterate())

        sampler = Sampler(config.llm, SeededRng(config.seed), tag=f"{config.tag}:optimize")
        sample = sampler.sample_records(source_records, config.sample_size)
        candidates = config.candidate_models()

        checkpoint = config.llm.tracker.checkpoint()
        time_before = config.llm.clock.elapsed

        def candidate_models(op: L.LogicalOperator) -> list[str]:
            # Profiling non-champion tiers only pays off if the policy may
            # pick them; with model selection off (or a pinned model) the
            # sampler just measures the champion's selectivity/cost.
            if getattr(op, "model", None) is not None:
                return [op.model]
            if not config.select_models:
                return [config.champion_model]
            return candidates

        tracer = config.llm.tracer
        profiles: dict[int, dict[str, OperatorProfile]] = {}
        with tracer.span(
            "optimize", kind="optimize", sample_size=len(sample)
        ) as optimize_span:
            for op in chain:
                if not isinstance(op, _PROFILED_OPS + (L.PyFilterOp, L.StructFilterOp)):
                    continue
                with tracer.span(f"profile:{op.label()}", kind="profile"):
                    if isinstance(op, L.SemFilterOp):
                        profiles[id(op)] = sampler.profile_filter(
                            op.instruction, sample, candidate_models(op),
                            config.champion_model,
                        )
                    elif isinstance(op, L.SemMapOp):
                        profiles[id(op)] = sampler.profile_map(
                            op.outputs, sample, candidate_models(op),
                            config.champion_model,
                        )
                    elif isinstance(op, L.SemClassifyOp):
                        profiles[id(op)] = sampler.profile_classify(
                            op.instruction, list(op.options), sample,
                            candidate_models(op), config.champion_model,
                        )
                    elif isinstance(op, L.SemGroupByOp):
                        profiles[id(op)] = sampler.profile_classify(
                            op.instruction, list(op.groups), sample,
                            candidate_models(op), config.champion_model,
                        )
                    elif isinstance(op, L.PyFilterOp):
                        profiles[id(op)] = {"python": _python_filter_profile(op, sample)}
                    elif isinstance(op, L.StructFilterOp):
                        profiles[id(op)] = {"sql": _struct_filter_profile(op, sample)}

        sampling_usage = config.llm.tracker.since(checkpoint)
        sampling_time = config.llm.clock.elapsed - time_before
        if tracer.enabled:
            optimize_span.attributes.update(
                sampling_cost_usd=round(sampling_usage.cost_usd, 6),
                sampling_time_s=sampling_time,
            )

        chosen: dict[int, str] = {}
        for op in chain:
            if not isinstance(op, _PROFILED_OPS):
                continue
            if op.model is not None:
                chosen[id(op)] = op.model
            elif config.select_models:
                chosen[id(op)] = config.policy.choose_model(
                    profiles[id(op)], config.champion_model
                )
            else:
                chosen[id(op)] = config.champion_model

        new_chain = push_py_filters(chain)
        if config.reorder_filters:
            new_chain = reorder_filters(
                new_chain, lambda _pos, op: self._rank(op, profiles, chosen)
            )
        new_chain = prune_noop_projects(new_chain)
        new_chain = merge_adjacent_limits(new_chain)
        sql_scan = None
        if getattr(config, "pushdown", True):
            new_chain, sql_scan = push_structured_prefix(new_chain)

        chosen_profiles: dict[int, OperatorProfile] = {}
        for position, op in enumerate(new_chain):
            model = chosen.get(id(op))
            op_profiles = profiles.get(id(op), {})
            profile = op_profiles.get(model) if model else None
            if profile is None and op_profiles:
                profile = next(iter(op_profiles.values()))
            if profile is not None:
                chosen_profiles[position] = profile

        report = OptimizationReport(
            optimized=True,
            chosen_models={op.label(): chosen[id(op)] for op in chain if id(op) in chosen},
            final_order=[op.label() for op in new_chain],
            sampling_cost_usd=sampling_usage.cost_usd,
            sampling_time_s=sampling_time,
            profiles={
                op.label(): profiles[id(op)] for op in chain if id(op) in profiles
            },
            pushdown_ops=len(sql_scan.pushed) if sql_scan is not None else 0,
            pushdown_sql=sql_scan.sql if sql_scan is not None else "",
        )
        return self._reuse_and_bind(
            new_chain,
            chosen,
            report,
            source_records=source_records,
            chosen_profiles=chosen_profiles,
        ), report

    def _rank(
        self,
        op: L.LogicalOperator,
        profiles: dict[int, dict[str, OperatorProfile]],
        chosen: dict[int, str],
    ) -> float:
        op_profiles = profiles.get(id(op))
        if not op_profiles:
            return 0.0
        model = chosen.get(id(op))
        profile = op_profiles.get(model) if model else None
        if profile is None:
            profile = next(iter(op_profiles.values()))
        return filter_rank(profile)

    # ------------------------------------------------------------------
    # Sub-plan reuse (materialization)
    # ------------------------------------------------------------------

    def _annotate_stats(
        self,
        chain: list[L.LogicalOperator],
        chosen: dict[int, str],
        report: OptimizationReport,
        source_records: list | None,
        chosen_profiles: dict[int, OperatorProfile] | None,
    ) -> None:
        """Attach statistics keys and per-position estimates to the report.

        Builds the position-aligned ``stats_plan`` (what ingestion and the
        re-planner key priors with), resolves each position's estimate
        source — learned prior beats sampled profile beats static formula —
        and records per-operator estimated cardinality/cost plus the plan
        total.  With a cold store and ``chosen_profiles`` from sampling
        this reproduces the historical plan estimate exactly.
        """
        config = self.config
        store = getattr(config, "stats_store", None)
        models = [self._resolved_model(op, chosen) for op in chain]
        report.final_chain = list(chain)
        report.resolved_models = models
        scope = getattr(config, "stats_scope", "")
        llm_seed = getattr(config.llm, "seed", 0)
        dataset = ""
        if isinstance(chain[0], (L.ScanOp, L.SqlScanOp)) and chain[0].source is not None:
            dataset = chain[0].source.source_id
        stats_plan: list = []
        for position, op in enumerate(chain):
            key = stats_key(op, models[position], dataset, scope, llm_seed)
            if key is None:
                stats_plan.append(None)
            else:
                stats_plan.append(
                    {
                        "key": key,
                        "kind": type(op).__name__,
                        "model": models[position] or "",
                        "dataset": dataset,
                        "scope": scope,
                        "label": op.label(),
                    }
                )
        report.stats_plan = stats_plan

        est_profiles: dict[int, OperatorProfile] = dict(chosen_profiles or {})
        est_sources = [
            "sampled" if position in est_profiles else "static"
            for position in range(len(chain))
        ]
        if store is not None:
            store.metrics = config.llm.metrics if config.llm.metrics.enabled else None
            if getattr(config, "stats_estimates", True):
                for position, entry in enumerate(stats_plan):
                    if entry is None:
                        continue
                    prior = store.usable_prior(entry["key"])
                    if prior is not None:
                        est_profiles[position] = profile_from_prior(prior)
                        est_sources[position] = "prior"
        report.est_profiles = est_profiles
        report.est_sources = est_sources

        input_cardinality = (
            float(len(source_records)) if source_records is not None else None
        )
        if (
            input_cardinality is None
            and isinstance(chain[0], (L.ScanOp, L.SqlScanOp))
            and chain[0].source is not None
        ):
            size = chain[0].source.cardinality()
            input_cardinality = float(size) if size is not None else None
        total, steps = estimate_chain_steps(
            chain,
            est_profiles,
            input_cardinality=input_cardinality,
            parallelism=config.parallelism,
            pipeline=config.pipeline,
            batch_size=config.resolved_batch_size(),
        )
        report.est_rows = [step.cardinality for step in steps]
        report.est_costs = [step.cost_usd for step in steps]
        report.estimate = total

    def _arm_replanner(
        self, chosen: dict[int, str], report: OptimizationReport
    ) -> None:
        """Attach a re-planner when config + store allow it.

        Reuse-bearing plans are excluded: a replayed prefix breaks the
        position alignment between the logical chain and the physical
        operators the engine runs.
        """
        config = self.config
        if not getattr(config, "replan", False):
            return
        if getattr(config, "stats_store", None) is None:
            return
        if not report.final_chain or report.reused_prefix:
            return
        if getattr(config, "shards", 1) > 1:
            # The sharded executor runs exchange segments, not the engine's
            # section walk, so it never reaches a replan boundary.
            return
        report.replanner = Replanner(self, chosen, report)

    def _reuse_and_bind(
        self,
        chain: list[L.LogicalOperator],
        chosen: dict[int, str],
        report: OptimizationReport,
        source_records: list | None = None,
        chosen_profiles: dict[int, OperatorProfile] | None = None,
    ) -> list[P.PhysicalOperator]:
        """Bind ``chain``, swapping a fingerprint-matched prefix for a replay.

        Enumerates reuse-aware plans longest-prefix first and costs
        "replay prefix (+ run the appended delta through it) + run suffix"
        against full recompute using the store's measured per-entry spend;
        replay wins whenever its estimated cost is no higher.  Also leaves a
        :class:`CapturePlan` on the report so the engine materializes this
        run's own fingerprintable boundaries.
        """
        config = self.config
        self._annotate_stats(chain, chosen, report, source_records, chosen_profiles)
        bound = self._bind_chain(chain, chosen)
        store = getattr(config, "materialization_store", None)
        if store is None or not isinstance(chain[0], (L.ScanOp, L.SqlScanOp)):
            self._arm_replanner(chosen, report)
            return bound
        store.metrics = config.llm.metrics if config.llm.metrics.enabled else None
        if source_records is None:
            source_records = list(chain[0].source.iterate())
        source_uids = tuple(record.uid for record in source_records)
        source_id = chain[0].source.source_id
        content_version = getattr(chain[0].source, "content_version", 0)
        models = [self._resolved_model(op, chosen) for op in chain]
        fingerprints = prefix_fingerprints(
            chain,
            models,
            getattr(config.llm, "seed", 0),
            scope=getattr(config, "materialization_scope", ""),
        )
        capture = CapturePlan(
            store=store,
            source_id=source_id,
            source_uids=source_uids,
            fingerprints=list(fingerprints),
            content_version=content_version,
        )
        report.capture = capture

        if getattr(config, "shards", 1) > 1:
            # Reuse for sharded runs happens inside the sharded executor
            # (whole-boundary replay + per-shard exact/delta probes keyed by
            # shard fingerprints); splicing a PhysMaterializedScan here would
            # desync the exchange segments from the capture fingerprints.
            return bound

        safe = incremental_safe_prefix(chain)
        reuse = None
        for length in range(len(chain), 1, -1):
            fingerprint = fingerprints[length - 1]
            if fingerprint is None:
                continue
            kind, entry = store.match(fingerprint, source_uids, content_version)
            if kind == "exact":
                reuse = (length, kind, entry, [])
                break
            if kind == "delta" and safe[length - 1]:
                delta = source_records[len(entry.source_uids):]
                reuse = (length, kind, entry, delta)
                break
        if reuse is None:
            store.note_miss()
            self._arm_replanner(chosen, report)
            return bound

        length, kind, entry, delta = reuse
        base_cardinality = max(1, len(entry.source_uids))
        recompute_est = entry.cost_usd * (len(source_records) / base_cardinality)
        reuse_est = entry.cost_usd * (len(delta) / base_cardinality)
        if reuse_est > recompute_est:
            store.note_miss()
            self._arm_replanner(chosen, report)
            return bound
        store.note_hit(entry, kind, delta_records=len(delta))

        fingerprint = fingerprints[length - 1]
        materialized = L.MaterializedScanOp(
            child=None,
            source_id=source_id,
            fingerprint=fingerprint,
            base_records=len(entry.records),
            delta_records=len(delta),
        )
        delta_ops: list[P.PhysicalOperator] = []
        if delta:
            if isinstance(chain[0], L.SqlScanOp):
                # Raw delta source records must pass through the pushed
                # structured prefix before the rest of the reused chain
                # (delta reuse is only offered when every pushed op is
                # incremental-safe, so these all bind to per-record ops).
                delta_ops.extend(
                    self._bind_one(op, chain, 0, chosen)
                    for op in chain[0].pushed
                )
            delta_ops.extend(
                self._bind_one(op, chain, position, chosen)
                for position, op in enumerate(chain[1:length], start=1)
            )
        replay = P.PhysMaterializedScan(
            materialized, entry=entry, delta_ops=delta_ops, delta_records=delta
        )
        # The replay boundary keeps the prefix fingerprint: a fault-free run
        # re-puts the (possibly delta-merged) records, carrying the entry's
        # measured cost so the updated entry stays an honest recompute
        # estimate.
        capture.fingerprints = [fingerprint] + fingerprints[length:]
        capture.carried_cost_usd = entry.cost_usd
        capture.carried_time_s = entry.time_s

        report.reused_prefix = length
        report.reuse_kind = kind
        report.reuse_fingerprint = fingerprint
        report.reuse_delta_records = len(delta)
        report.reuse_saved_est_usd = max(0.0, recompute_est - reuse_est)
        report.reuse_store_hits = store.hits
        report.final_order = [materialized.label()] + [
            op.label() for op in chain[length:]
        ]
        tracer = config.llm.tracer
        if tracer.enabled:
            with tracer.span(
                "materialization-reuse",
                kind="reuse",
                fingerprint=fingerprint[:12],
                prefix=length,
                match=kind,
                delta_records=len(delta),
                saved_est_usd=round(report.reuse_saved_est_usd, 6),
            ):
                pass
        return [replay] + bound[length:]

    def _resolved_model(
        self, op: L.LogicalOperator, chosen: dict[int, str]
    ) -> str | None:
        """The model ``_bind_one`` would give ``op`` (None for free ops)."""
        if not isinstance(op, (
            L.SemFilterOp, L.SemMapOp, L.SemClassifyOp, L.SemGroupByOp,
            L.SemAggOp, L.SemTopKOp,
        )):
            return None
        return chosen.get(id(op)) or getattr(op, "model", None) or self.config.champion_model

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def _bind_chain(
        self, chain: list[L.LogicalOperator], chosen: dict[int, str]
    ) -> list[P.PhysicalOperator]:
        bound: list[P.PhysicalOperator] = []
        for position, op in enumerate(chain):
            bound.append(self._bind_one(op, chain, position, chosen))
        return bound

    def _bind_spine(
        self, root: L.LogicalOperator, chosen: dict[int, str]
    ) -> list[P.PhysicalOperator]:
        """Bind the left spine of a (possibly join-bearing) plan.

        Only ``child`` edges are followed; a join's right subtree is bound
        recursively *inside* its :class:`~repro.sem.physical.PhysSemJoin`,
        so the engine's linear walk never feeds left records into it.
        """
        spine: list[L.LogicalOperator] = []
        node: L.LogicalOperator | None = root
        while node is not None:
            spine.append(node)
            node = node.child
        spine.reverse()
        return self._bind_chain(spine, chosen)

    def _bind_one(
        self,
        op: L.LogicalOperator,
        chain: list[L.LogicalOperator],
        position: int,
        chosen: dict[int, str],
    ) -> P.PhysicalOperator:
        model = chosen.get(id(op)) or getattr(op, "model", None) or self.config.champion_model
        if isinstance(op, L.ScanOp):
            return P.PhysScan(op)
        if isinstance(op, L.RetrieveOp):
            source = None
            if position > 0 and isinstance(chain[position - 1], L.ScanOp):
                source = chain[position - 1].source
            return P.PhysRetrieve(op, source=source)
        if isinstance(op, L.SemFilterOp):
            return P.PhysSemFilter(op, model)
        if isinstance(op, L.SemMapOp):
            return P.PhysSemMap(op, model)
        if isinstance(op, L.SemClassifyOp):
            return P.PhysSemClassify(op, model)
        if isinstance(op, L.SemGroupByOp):
            return P.PhysSemGroupBy(op, model)
        if isinstance(op, L.SemJoinOp):
            right_ops = self._bind_spine(op.right, chosen)
            if getattr(self.config, "join_method", "nested") == "blocked":
                return P.PhysSemJoinBlocked(op, right_ops, model)
            return P.PhysSemJoin(op, right_ops, model)
        if isinstance(op, L.SemAggOp):
            return P.PhysSemAgg(op, model)
        if isinstance(op, L.SemTopKOp):
            return P.PhysSemTopK(op, model)
        if isinstance(op, L.PyFilterOp):
            return P.PhysPyFilter(op)
        if isinstance(op, L.PyMapOp):
            return P.PhysPyMap(op)
        if isinstance(op, L.StructFilterOp):
            return P.PhysStructFilter(op)
        if isinstance(op, L.StructAggOp):
            return P.PhysStructAgg(op)
        if isinstance(op, L.SqlScanOp):
            return P.PhysSqlScan(
                op, columnar=getattr(self.config, "columnar", False)
            )
        if isinstance(op, L.ProjectOp):
            return P.PhysProject(op)
        if isinstance(op, L.LimitOp):
            return P.PhysLimit(op)
        raise OptimizationError(f"no physical implementation for {op.label()}")


def _python_filter_profile(op: L.PyFilterOp, sample: list) -> OperatorProfile:
    """Selectivity of a free Python filter, measured by running it.

    Filters that crash on raw source records (they may read fields created
    upstream) fall back to the uninformative default of 0.5.
    """
    passed = 0
    seen = 0
    for record in sample:
        try:
            result = bool(op.fn(record))
        except Exception:
            continue
        seen += 1
        passed += int(result)
    selectivity = passed / seen if seen else 0.5
    return OperatorProfile(
        model="python",
        agreement=1.0,
        selectivity=selectivity,
        cost_per_record=0.0,
        latency_per_record=0.0,
        sample_size=seen,
    )


def _struct_filter_profile(op: L.StructFilterOp, sample: list) -> OperatorProfile:
    """Selectivity of a structured SQL filter, measured by evaluating it.

    Never crashes on raw source records: a referenced-but-missing field
    reads as NULL, which simply fails the predicate.
    """
    from repro.sem.structql import predicate_holds

    passed = sum(
        1 for record in sample if predicate_holds(op.condition, record.fields)
    )
    selectivity = passed / len(sample) if sample else 0.5
    return OperatorProfile(
        model="sql",
        agreement=1.0,
        selectivity=selectivity,
        cost_per_record=0.0,
        latency_per_record=0.0,
        sample_size=len(sample),
    )
