"""EXPLAIN ANALYZE for semantic-operator plans.

Combines the optimizer's report (chosen models, sampled profiles, plan
estimate) with the engine's measured statistics into the side-by-side
rendering database users expect: per operator, estimated vs. actual rows
and cost, so optimizer misestimates are visible at a glance.
"""

from __future__ import annotations

from repro.sem.execution import ExecutionResult, pushdown_footer
from repro.sem.optimizer.optimizer import OptimizationReport
from repro.utils.formatting import format_table


def explain_analyze(result: ExecutionResult, report: OptimizationReport) -> str:
    """Render measured operator stats with the optimizer's expectations.

    The "Est src" column names where each operator's plan estimate came
    from (learned ``prior`` vs ``sampled`` profile vs ``static`` formula)
    and "Drift" is the observed/estimated cardinality ratio — the signal
    the mid-query re-planner keys on.  Both render "-" when the executed
    operators no longer align position-for-position with the planned
    chain (e.g. a replayed materialization prefix).
    """
    aligned = (
        not report.reused_prefix
        and len(report.est_rows) == len(result.operator_stats)
        and len(report.est_sources) == len(result.operator_stats)
    )
    rows = []
    for position, stats in enumerate(result.operator_stats):
        base_label = stats.label.split(" [")[0]
        profile = None
        if base_label in report.profiles:
            model_profiles = report.profiles[base_label]
            chosen = report.chosen_models.get(base_label)
            profile = model_profiles.get(chosen) if chosen else None
            if profile is None and model_profiles:
                profile = next(iter(model_profiles.values()))
        est_out = (
            f"{stats.records_in * profile.selectivity:.0f}"
            if profile is not None and stats.records_in
            else "-"
        )
        est_cost = (
            f"{stats.records_in * profile.cost_per_record:.4f}"
            if profile is not None
            else "-"
        )
        est_source = report.est_sources[position] if aligned else "-"
        drift = "-"
        if aligned:
            est_rows = report.est_rows[position]
            if est_rows > 0:
                drift = f"{stats.records_out / est_rows:.2f}x"
        rows.append(
            [
                stats.label,
                stats.records_in,
                est_out,
                stats.records_out,
                est_cost,
                f"{stats.cost_usd:.4f}",
                f"{stats.time_s:.1f}",
                stats.llm_calls,
                stats.total_tokens,
                f"{stats.cache_hit_ratio * 100:.0f}%",
                stats.retried_calls,
                stats.failed_records,
                "yes" if stats.reused else "-",
                "yes" if stats.sql_pushdown else "-",
                est_source,
                drift,
                stats.shards if stats.shards > 1 else "-",
            ]
        )
    table = format_table(
        [
            "Operator", "In", "Est. out", "Out", "Est. $", "Actual $",
            "Time (s)", "Calls", "Tokens", "Cache", "Retried", "Failed",
            "Reused", "SQL", "Est src", "Drift", "Shards",
        ],
        rows,
        title="EXPLAIN ANALYZE",
    )
    footer = (
        f"\ntotals: ${result.total_cost_usd:.4f} in {result.total_time_s:.1f}s"
        f" (+${report.sampling_cost_usd:.4f} optimizer sampling)"
    )
    if result.retried_calls or result.failed_records:
        footer += (
            f"\nfault tolerance: {result.retried_calls} retried calls, "
            f"{result.failed_records} records degraded under the failure policy"
        )
    if report.estimate is not None:
        footer += (
            f"\nplan estimate: ${report.estimate.cost_usd:.4f}, "
            f"{report.estimate.time_s:.1f}s, "
            f"{report.estimate.cardinality:.0f} rows out"
        )
    footer += pushdown_footer(result.operator_stats)
    if report.pushdown_ops:
        footer += (
            f"\npushdown: {report.pushdown_ops} structured operator(s) "
            f"compiled to SQL: {report.pushdown_sql}"
        )
    if report.reused_prefix:
        footer += (
            f"\nreuse: {report.reused_prefix}-operator prefix served from "
            f"materialization {report.reuse_fingerprint[:12]} "
            f"({report.reuse_kind}"
        )
        if report.reuse_delta_records:
            footer += f", {report.reuse_delta_records} delta records"
        footer += (
            f"); store hits: {report.reuse_store_hits}, "
            f"est. saved ${report.reuse_saved_est_usd:.4f}"
        )
    if report.shard_plan is not None:
        from repro.sem.shard import exchange_footer

        footer += exchange_footer(report.shard_plan)
    for decision in report.replans:
        footer += (
            f"\nreplan: at boundary {decision['boundary']} — {decision['cause']}; "
            f"plan {decision['before_plan'][:12]} -> {decision['after_plan'][:12]} "
            f"(est ${decision['est_cost_before_usd']:.4f} -> "
            f"${decision['est_cost_after_usd']:.4f} for the suffix)"
        )
    if result.truncated:
        footer += "\nNOTE: execution truncated by the spend cap"
    return table + footer
