"""SQL lexer: source text to a token stream."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit join inner left
    outer on as and or not in between like is null true false distinct
    create table insert into values integer int real float text varchar
    boolean bool case when then else end drop if exists update set delete
    """.split()
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "op" | "punct" | "eof"
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize_sql(sql: str) -> list[Token]:
    """Tokenize ``sql``, raising :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == "'":
            end = index + 1
            chunks = []
            while True:
                if end >= length:
                    raise SQLSyntaxError(f"unterminated string literal at {index}")
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            tokens.append(Token("string", "".join(chunks), index))
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token("number", sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, index))
            else:
                tokens.append(Token("ident", word, index))
            index = end
            continue
        if char == '"':
            end = sql.find('"', index + 1)
            if end == -1:
                raise SQLSyntaxError(f"unterminated quoted identifier at {index}")
            tokens.append(Token("ident", sql[index + 1 : end], index))
            index = end + 1
            continue
        matched = False
        for operator in _OPERATORS:
            if sql.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            tokens.append(Token("punct", char, index))
            index += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token("eof", "", length))
    return tokens
