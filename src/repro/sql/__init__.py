"""In-memory SQL engine.

The paper's vision calls for a runtime that can materialize structured
tables from unstructured data and query them with SQL so future queries
reuse earlier work (Section 2.4).  This package implements the substrate:
a small but real SQL engine — lexer, recursive-descent parser, binder, and
executor — supporting SELECT (with joins, grouping, ordering, limits),
CREATE TABLE, and INSERT.

Quick use::

    from repro.sql import Database

    db = Database()
    db.execute("CREATE TABLE emails (sender TEXT, subject TEXT)")
    db.execute("INSERT INTO emails VALUES ('a@x.com', 'hello')")
    result = db.execute("SELECT sender, COUNT(*) AS n FROM emails GROUP BY sender")
    print(result.rows)
"""

from repro.sql.database import Database
from repro.sql.parser import parse_expression, parse_sql
from repro.sql.table import Column, Table

__all__ = ["Column", "Database", "Table", "parse_expression", "parse_sql"]
