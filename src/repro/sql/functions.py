"""Scalar and aggregate functions for the SQL engine."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SQLExecutionError


def _numeric(values: list[Any], func_name: str) -> list[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SQLExecutionError(
                f"{func_name.upper()} expects numeric input, got {value!r}"
            )
        numbers.append(value)
    return numbers


def _agg_count(values: list[Any]) -> int:
    return sum(1 for value in values if value is not None)


def _agg_sum(values: list[Any]) -> Any:
    numbers = _numeric(values, "sum")
    return sum(numbers) if numbers else None


def _agg_avg(values: list[Any]) -> float | None:
    numbers = _numeric(values, "avg")
    return sum(numbers) / len(numbers) if numbers else None


def _agg_min(values: list[Any]) -> Any:
    present = [value for value in values if value is not None]
    return min(present) if present else None


def _agg_max(values: list[Any]) -> Any:
    present = [value for value in values if value is not None]
    return max(present) if present else None


AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}


def _null_guard(func: Callable[..., Any]) -> Callable[..., Any]:
    """Scalar functions return NULL when any argument is NULL."""

    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return func(*args)

    return wrapper


def _scalar_round(value: Any, digits: Any = 0) -> Any:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SQLExecutionError(f"ROUND expects a number, got {value!r}")
    return round(value, int(digits))


def _scalar_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


SCALARS: dict[str, Callable[..., Any]] = {
    "upper": _null_guard(lambda value: str(value).upper()),
    "lower": _null_guard(lambda value: str(value).lower()),
    "length": _null_guard(lambda value: len(str(value))),
    "abs": _null_guard(abs),
    "round": _null_guard(_scalar_round),
    "substr": _null_guard(
        lambda value, start, length=None: (
            str(value)[int(start) - 1 : int(start) - 1 + int(length)]
            if length is not None
            else str(value)[int(start) - 1 :]
        )
    ),
    # COALESCE must see NULLs, so it is not null-guarded.
    "coalesce": _scalar_coalesce,
}


def is_aggregate(name: str) -> bool:
    return name in AGGREGATES
