"""SQL statement execution.

The executor interprets parsed statements against a catalog of tables.
It implements textbook semantics: nested-loop joins, hash grouping,
three-valued NULL handling in predicates (comparisons with NULL yield NULL,
and WHERE keeps only rows where the predicate is exactly TRUE).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import SQLExecutionError, SQLPlanError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    Delete,
    DropTable,
    Expr,
    FuncCall,
    InList,
    InsertInto,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Select,
    Star,
    Statement,
    Subquery,
    UnaryOp,
    Update,
)
from repro.sql.functions import AGGREGATES, SCALARS, is_aggregate
from repro.sql.table import Column, Table

#: An execution row: binding name -> {column -> value}.
Env = dict[str, dict[str, Any]]


@dataclass
class ResultSet:
    """Query output: ordered column names and row tuples."""

    columns: list[str]
    rows: list[tuple[Any, ...]]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result (raises otherwise)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes statements against a table catalog."""

    def __init__(self, catalog: dict[str, Table]) -> None:
        self._catalog = catalog

    # -- statement dispatch ----------------------------------------------

    def execute(self, statement: Statement) -> ResultSet:
        if isinstance(statement, Select):
            return self._execute_select(statement)
        if isinstance(statement, CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, InsertInto):
            return self._execute_insert(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop(statement)
        if isinstance(statement, Update):
            return self._execute_update(statement)
        if isinstance(statement, Delete):
            return self._execute_delete(statement)
        raise SQLPlanError(f"unsupported statement type: {type(statement).__name__}")

    def _execute_update(self, statement: Update) -> ResultSet:
        table = self._table(statement.table)
        positions = {
            column: table.column_position(column)
            for column, _ in statement.assignments
        }
        updated = 0
        new_rows = []
        for row in table.rows:
            env: Env = {statement.table: dict(zip(table.column_names, row))}
            matches = (
                statement.where is None or self._eval(statement.where, env) is True
            )
            if not matches:
                new_rows.append(row)
                continue
            cells = list(row)
            for column, expr in statement.assignments:
                value = self._eval(expr, env)
                cells[positions[column]] = table.columns[positions[column]].coerce(value)
            new_rows.append(tuple(cells))
            updated += 1
        table.rows = new_rows
        return ResultSet(["updated"], [(updated,)])

    def _execute_delete(self, statement: Delete) -> ResultSet:
        table = self._table(statement.table)
        kept = []
        deleted = 0
        for row in table.rows:
            env: Env = {statement.table: dict(zip(table.column_names, row))}
            matches = (
                statement.where is None or self._eval(statement.where, env) is True
            )
            if matches:
                deleted += 1
            else:
                kept.append(row)
        table.rows = kept
        return ResultSet(["deleted"], [(deleted,)])

    def _execute_create(self, statement: CreateTable) -> ResultSet:
        if statement.name in self._catalog:
            if statement.if_not_exists:
                return ResultSet(["status"], [("ok",)])
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        columns = [Column(name, type_name) for name, type_name in statement.columns]
        self._catalog[statement.name] = Table(statement.name, columns)
        return ResultSet(["status"], [("ok",)])

    def _execute_drop(self, statement: DropTable) -> ResultSet:
        if statement.name not in self._catalog:
            if statement.if_exists:
                return ResultSet(["status"], [("ok",)])
            raise SQLExecutionError(f"no table named {statement.name!r}")
        del self._catalog[statement.name]
        return ResultSet(["status"], [("ok",)])

    def _execute_insert(self, statement: InsertInto) -> ResultSet:
        table = self._table(statement.table)
        for row_exprs in statement.rows:
            values = [self._eval(expr, {}) for expr in row_exprs]
            table.insert_row(values, statement.columns)
        return ResultSet(["inserted"], [(len(statement.rows),)])

    def _table(self, name: str) -> Table:
        try:
            return self._catalog[name]
        except KeyError:
            known = ", ".join(sorted(self._catalog)) or "(none)"
            raise SQLExecutionError(
                f"no table named {name!r}; known tables: {known}"
            ) from None

    # -- SELECT ------------------------------------------------------------

    def _execute_select(self, statement: Select) -> ResultSet:
        envs = self._row_stream(statement)
        if statement.where is not None:
            envs = [env for env in envs if self._eval(statement.where, env) is True]

        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in statement.items
        ) or (statement.having is not None) or bool(statement.group_by)

        if has_aggregates:
            columns, out_rows, order_envs = self._aggregate_rows(statement, envs)
        else:
            columns = self._output_columns(statement)
            out_rows = [self._project(statement, env) for env in envs]
            order_envs = envs

        if statement.distinct:
            seen: set = set()
            deduped = []
            kept_envs = []
            for row, env in zip(out_rows, order_envs):
                key = tuple(_hashable(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
                    kept_envs.append(env)
            out_rows, order_envs = deduped, kept_envs

        if statement.order_by:
            out_rows = self._order_rows(statement, columns, out_rows, order_envs)

        if statement.limit is not None:
            out_rows = out_rows[: statement.limit]

        return ResultSet(columns, out_rows)

    def _row_stream(self, statement: Select) -> list[Env]:
        if statement.table is None:
            return [{}]
        base = self._table(statement.table.name)
        envs: list[Env] = [
            {statement.table.binding: dict(zip(base.column_names, row))}
            for row in base.rows
        ]
        for join in statement.joins:
            right = self._table(join.table.name)
            binding = join.table.binding
            null_right = {name: None for name in right.column_names}
            joined: list[Env] = []
            for env in envs:
                if binding in env:
                    raise SQLPlanError(f"duplicate table binding {binding!r} in FROM")
                matched = False
                for row in right.rows:
                    candidate = dict(env)
                    candidate[binding] = dict(zip(right.column_names, row))
                    if self._eval(join.condition, candidate) is True:
                        joined.append(candidate)
                        matched = True
                if join.kind == "left" and not matched:
                    candidate = dict(env)
                    candidate[binding] = dict(null_right)
                    joined.append(candidate)
            envs = joined
        return envs

    # -- projection ---------------------------------------------------------

    def _expand_items(self, statement: Select) -> list[tuple[str, Expr]]:
        """Expand stars into concrete (name, expr) output pairs."""
        pairs: list[tuple[str, Expr]] = []
        bindings = self._from_bindings(statement)
        for index, item in enumerate(statement.items):
            if isinstance(item.expr, Star):
                targets = (
                    [item.expr.table] if item.expr.table is not None else list(bindings)
                )
                for binding in targets:
                    if binding not in bindings:
                        raise SQLPlanError(f"unknown table {binding!r} in star select")
                    for column_name in bindings[binding]:
                        pairs.append((column_name, ColumnRef(column_name, table=binding)))
                continue
            pairs.append((self._item_name(item, index), item.expr))
        return pairs

    def _from_bindings(self, statement: Select) -> dict[str, list[str]]:
        bindings: dict[str, list[str]] = {}
        if statement.table is not None:
            bindings[statement.table.binding] = self._table(
                statement.table.name
            ).column_names
            for join in statement.joins:
                bindings[join.table.binding] = self._table(join.table.name).column_names
        return bindings

    @staticmethod
    def _item_name(item, index: int) -> str:
        if item.alias:
            return item.alias
        expr = item.expr
        if isinstance(expr, ColumnRef):
            return expr.name
        if isinstance(expr, FuncCall):
            return expr.name
        return f"expr_{index}"

    def _output_columns(self, statement: Select) -> list[str]:
        return [name for name, _ in self._expand_items(statement)]

    def _project(self, statement: Select, env: Env) -> tuple[Any, ...]:
        return tuple(self._eval(expr, env) for _, expr in self._expand_items(statement))

    # -- aggregation -------------------------------------------------------

    def _aggregate_rows(
        self, statement: Select, envs: list[Env]
    ) -> tuple[list[str], list[tuple[Any, ...]], list[Env]]:
        pairs = self._expand_items(statement)
        columns = [name for name, _ in pairs]

        groups: dict[tuple, list[Env]] = {}
        if statement.group_by:
            for env in envs:
                key = tuple(
                    _hashable(self._eval(expr, env)) for expr in statement.group_by
                )
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = list(envs)

        out_rows: list[tuple[Any, ...]] = []
        out_envs: list[Env] = []
        for group_envs in groups.values():
            representative = group_envs[0] if group_envs else {}
            if statement.having is not None:
                if self._eval_aggregated(statement.having, group_envs, representative) is not True:
                    continue
            row = tuple(
                self._eval_aggregated(expr, group_envs, representative)
                for _, expr in pairs
            )
            out_rows.append(row)
            out_envs.append(representative)
        return columns, out_rows, out_envs

    def _eval_aggregated(self, expr: Expr, group_envs: list[Env], representative: Env) -> Any:
        """Evaluate ``expr`` in aggregate context.

        Aggregate calls consume the whole group; everything else is
        evaluated against the group's representative row (valid for
        grouping expressions, which are constant within a group).
        """
        if isinstance(expr, FuncCall) and is_aggregate(expr.name):
            if expr.star:
                values: list[Any] = [1] * len(group_envs)
            else:
                if len(expr.args) != 1:
                    raise SQLPlanError(
                        f"aggregate {expr.name.upper()} takes exactly one argument"
                    )
                values = [self._eval(expr.args[0], env) for env in group_envs]
            if expr.distinct:
                seen: set = set()
                unique = []
                for value in values:
                    key = _hashable(value)
                    if key not in seen:
                        seen.add(key)
                        unique.append(value)
                values = unique
            return AGGREGATES[expr.name](values)
        if isinstance(expr, BinaryOp):
            return self._apply_binary(
                expr.op,
                self._eval_aggregated(expr.left, group_envs, representative),
                self._eval_aggregated(expr.right, group_envs, representative),
            )
        if isinstance(expr, UnaryOp):
            return self._apply_unary(
                expr.op, self._eval_aggregated(expr.operand, group_envs, representative)
            )
        if isinstance(expr, FuncCall):
            args = [
                self._eval_aggregated(arg, group_envs, representative)
                for arg in expr.args
            ]
            return self._apply_scalar(expr, args)
        return self._eval(expr, representative)

    def _contains_aggregate(self, expr: Expr) -> bool:
        if isinstance(expr, FuncCall):
            if is_aggregate(expr.name):
                return True
            return any(self._contains_aggregate(arg) for arg in expr.args)
        if isinstance(expr, BinaryOp):
            return self._contains_aggregate(expr.left) or self._contains_aggregate(expr.right)
        if isinstance(expr, UnaryOp):
            return self._contains_aggregate(expr.operand)
        if isinstance(expr, CaseWhen):
            parts = [cond for cond, _ in expr.whens] + [value for _, value in expr.whens]
            if expr.otherwise is not None:
                parts.append(expr.otherwise)
            return any(self._contains_aggregate(part) for part in parts)
        return False

    # -- ordering ------------------------------------------------------------

    def _order_rows(
        self,
        statement: Select,
        columns: list[str],
        out_rows: list[tuple[Any, ...]],
        order_envs: list[Env],
    ) -> list[tuple[Any, ...]]:
        column_index = {name: position for position, name in enumerate(columns)}

        def sort_key(pair: tuple[tuple[Any, ...], Env]) -> tuple:
            row, env = pair
            keys = []
            for expr, desc in statement.order_by:
                if isinstance(expr, ColumnRef) and expr.table is None and expr.name in column_index:
                    value = row[column_index[expr.name]]
                else:
                    value = self._eval(expr, env)
                keys.append(_SortValue(value, desc))
            return tuple(keys)

        paired = sorted(zip(out_rows, order_envs), key=sort_key)
        return [row for row, _ in paired]

    # -- expression evaluation ------------------------------------------------

    def _eval(self, expr: Expr, env: Env) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr, env)
        if isinstance(expr, BinaryOp):
            return self._apply_binary(
                expr.op, self._eval(expr.left, env), self._eval(expr.right, env)
            )
        if isinstance(expr, UnaryOp):
            return self._apply_unary(expr.op, self._eval(expr.operand, env))
        if isinstance(expr, FuncCall):
            if is_aggregate(expr.name):
                raise SQLPlanError(
                    f"aggregate {expr.name.upper()} is not allowed in this context"
                )
            args = [self._eval(arg, env) for arg in expr.args]
            return self._apply_scalar(expr, args)
        if isinstance(expr, Subquery):
            # Uncorrelated scalar subquery: no references to the outer row.
            result = self._execute_select(expr.select)
            if len(result.columns) != 1:
                raise SQLPlanError("scalar subquery must return exactly one column")
            if len(result.rows) == 0:
                return None
            if len(result.rows) > 1:
                raise SQLExecutionError(
                    f"scalar subquery returned {len(result.rows)} rows"
                )
            return result.rows[0][0]
        if isinstance(expr, InSubquery):
            value = self._eval(expr.operand, env)
            if value is None:
                return None
            result = self._execute_select(expr.select)
            if len(result.columns) != 1:
                raise SQLPlanError("IN subquery must return exactly one column")
            found = any(
                _sql_equal(value, row[0]) is True for row in result.rows
            )
            return (not found) if expr.negated else found
        if isinstance(expr, InList):
            value = self._eval(expr.operand, env)
            if value is None:
                return None
            found = any(
                _sql_equal(value, self._eval(option, env)) is True
                for option in expr.options
            )
            return (not found) if expr.negated else found
        if isinstance(expr, Between):
            value = self._eval(expr.operand, env)
            low = self._eval(expr.low, env)
            high = self._eval(expr.high, env)
            if value is None or low is None or high is None:
                return None
            result = (_sql_lte(low, value) is True) and (_sql_lte(value, high) is True)
            return (not result) if expr.negated else result
        if isinstance(expr, Like):
            value = self._eval(expr.operand, env)
            pattern = self._eval(expr.pattern, env)
            if value is None or pattern is None:
                return None
            matched = _like_match(str(value), str(pattern))
            return (not matched) if expr.negated else matched
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, env)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, CaseWhen):
            for condition, result in expr.whens:
                if self._eval(condition, env) is True:
                    return self._eval(result, env)
            return self._eval(expr.otherwise, env) if expr.otherwise is not None else None
        if isinstance(expr, Star):
            raise SQLPlanError("* is only allowed at the top level of a select list")
        raise SQLPlanError(f"cannot evaluate expression node {type(expr).__name__}")

    def _resolve_column(self, ref: ColumnRef, env: Env) -> Any:
        if ref.table is not None:
            if ref.table not in env:
                raise SQLExecutionError(
                    f"unknown table {ref.table!r} for column {ref.display()!r}"
                )
            scope = env[ref.table]
            if ref.name not in scope:
                raise SQLExecutionError(f"no column {ref.display()!r}")
            return scope[ref.name]
        matches = [binding for binding, scope in env.items() if ref.name in scope]
        if not matches:
            raise SQLExecutionError(f"no column named {ref.name!r} in scope")
        if len(matches) > 1:
            raise SQLExecutionError(
                f"ambiguous column {ref.name!r}: present in {sorted(matches)}"
            )
        return env[matches[0]][ref.name]

    def _apply_scalar(self, expr: FuncCall, args: list[Any]) -> Any:
        if expr.name not in SCALARS:
            known = ", ".join(sorted(SCALARS) + sorted(AGGREGATES))
            raise SQLPlanError(f"unknown function {expr.name!r}; known: {known}")
        try:
            return SCALARS[expr.name](*args)
        except TypeError as exc:
            raise SQLExecutionError(f"bad arguments to {expr.name.upper()}: {exc}") from exc

    @staticmethod
    def _apply_unary(op: str, value: Any) -> Any:
        if op == "-":
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SQLExecutionError(f"cannot negate {value!r}")
            return -value
        if op == "not":
            if value is None:
                return None
            return not _truthy(value)
        raise SQLPlanError(f"unknown unary operator {op!r}")

    @staticmethod
    def _apply_binary(op: str, left: Any, right: Any) -> Any:
        if op == "and":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return _truthy(left) and _truthy(right)
        if op == "or":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return _truthy(left) or _truthy(right)
        if op in ("=", "<>", "!="):
            equal = _sql_equal(left, right)
            if equal is None:
                return None
            return equal if op == "=" else not equal
        if op in ("<", "<=", ">", ">="):
            if left is None or right is None:
                return None
            if op == "<":
                return _sql_less(left, right)
            if op == "<=":
                return _sql_lte(left, right)
            if op == ">":
                return _sql_less(right, left)
            return _sql_lte(right, left)
        if op in ("+", "-", "*", "/", "%"):
            if left is None or right is None:
                return None
            if op == "+" and isinstance(left, str) and isinstance(right, str):
                return left + right
            for operand in (left, right):
                if isinstance(operand, bool) or not isinstance(operand, (int, float)):
                    raise SQLExecutionError(
                        f"arithmetic {op!r} requires numbers, got {operand!r}"
                    )
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise SQLExecutionError("division by zero")
                return left / right
            if right == 0:
                raise SQLExecutionError("modulo by zero")
            return left % right
        raise SQLPlanError(f"unknown binary operator {op!r}")


# ---------------------------------------------------------------------------
# Value semantics helpers
# ---------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise SQLExecutionError(f"expected a boolean, got {value!r}")


def _sql_equal(left: Any, right: Any) -> bool | None:
    if left is None or right is None:
        return None
    if _comparable(left, right):
        return left == right
    return False


def _sql_less(left: Any, right: Any) -> bool:
    _require_comparable(left, right, "<")
    return left < right


def _sql_lte(left: Any, right: Any) -> bool:
    _require_comparable(left, right, "<=")
    return left <= right


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)


def _require_comparable(left: Any, right: Any, op: str) -> None:
    if not _comparable(left, right):
        raise SQLExecutionError(
            f"cannot compare {left!r} {op} {right!r} (mismatched types)"
        )


def _like_match(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict)):
        return repr(value)
    return value


class _SortValue:
    """Total-orders mixed values.

    NULLs sort last regardless of direction; non-NULL values group by type
    (numbers, then strings) and respect the requested direction.
    """

    __slots__ = ("value", "desc")

    def __init__(self, value: Any, desc: bool) -> None:
        self.value = value
        self.desc = desc

    def _rank(self) -> tuple:
        value = self.value
        if isinstance(value, bool):
            return (0, int(value))
        if isinstance(value, (int, float)):
            return (0, value)
        return (1, str(value))

    def __lt__(self, other: "_SortValue") -> bool:
        if (self.value is None) != (other.value is None):
            return other.value is None  # non-NULL sorts before NULL
        if self.value is None:
            return False
        if self.desc:
            return other._rank() < self._rank()
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortValue):
            return NotImplemented
        if self.value is None or other.value is None:
            return (self.value is None) and (other.value is None)
        return self._rank() == other._rank()
