"""AST node definitions for the SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: str | None = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: str | None = None


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lowercased
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" | "not"
    operand: Expr


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Subquery(Expr):
    """A parenthesized SELECT used as a scalar expression."""

    select: "Select"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expr
    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class CaseWhen(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    otherwise: Expr | None = None


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    kind: str  # "inner" | "left"
    table: TableRef
    condition: Expr


@dataclass
class Select:
    items: list[SelectItem]
    table: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)  # (expr, desc)
    limit: int | None = None
    distinct: bool = False


@dataclass
class CreateTable:
    name: str
    columns: list[tuple[str, str]]  # (name, type keyword)
    if_not_exists: bool = False


@dataclass
class InsertInto:
    table: str
    columns: list[str] | None
    rows: list[list[Expr]]


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Expr | None = None


@dataclass
class Delete:
    table: str
    where: Expr | None = None


Statement = Select | CreateTable | InsertInto | DropTable | Update | Delete
