"""Database facade: catalog management plus convenience loaders."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import SQLExecutionError
from repro.sql.executor import Executor, ResultSet
from repro.sql.parser import parse_sql
from repro.sql.table import Column, Table


class Database:
    """An in-memory SQL database.

    This is the structured-storage half of the paper's vision: semantic
    operators and agents materialize structured tables here, and later
    queries hit SQL instead of re-invoking LLMs over raw documents.
    """

    def __init__(self) -> None:
        self._catalog: dict[str, Table] = {}
        self._executor = Executor(self._catalog)

    def execute(self, sql: str) -> ResultSet:
        """Parse and execute one SQL statement."""
        return self._executor.execute(parse_sql(sql))

    def query(self, sql: str) -> list[dict[str, Any]]:
        """Execute a SELECT and return rows as dictionaries."""
        return self.execute(sql).to_dicts()

    def table_names(self) -> list[str]:
        return sorted(self._catalog)

    def table(self, name: str) -> Table:
        try:
            return self._catalog[name]
        except KeyError:
            known = ", ".join(sorted(self._catalog)) or "(none)"
            raise SQLExecutionError(
                f"no table named {name!r}; known tables: {known}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._catalog

    def create_table_from_rows(
        self,
        name: str,
        rows: Iterable[dict[str, Any]],
        replace: bool = False,
    ) -> Table:
        """Create (or replace) a table inferred from dictionaries.

        Column types are inferred from the first non-NULL value of each
        column; columns that never see a value default to TEXT.  This is the
        path used to materialize structured tables out of semantic-operator
        results.
        """
        rows = list(rows)
        if not rows:
            raise SQLExecutionError(f"cannot infer a schema for {name!r} from zero rows")
        if name in self._catalog:
            if not replace:
                raise SQLExecutionError(f"table {name!r} already exists")
            del self._catalog[name]

        column_order: list[str] = []
        for row in rows:
            for key in row:
                if key not in column_order:
                    column_order.append(key)
        columns = [
            Column(column_name, _infer_type(rows, column_name))
            for column_name in column_order
        ]
        table = Table(name, columns)
        for row in rows:
            table.insert_row([row.get(column_name) for column_name in column_order])
        self._catalog[name] = table
        return table


def _infer_type(rows: list[dict[str, Any]], column: str) -> str:
    """Widest type consistent with *every* non-NULL value in the column.

    Mixed columns (e.g. a period column holding years and "2020-01"
    strings) degrade to TEXT rather than failing on insert.
    """
    saw_bool = saw_int = saw_float = False
    for row in rows:
        value = row.get(column)
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            return "text"
    if saw_bool and not (saw_int or saw_float):
        return "boolean"
    if saw_bool:
        return "text"
    if saw_float:
        return "real"
    if saw_int:
        return "integer"
    return "text"
