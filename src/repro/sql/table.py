"""Tables: the storage layer of the SQL engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import SQLExecutionError

_TYPE_MAP: dict[str, type] = {
    "integer": int,
    "int": int,
    "real": float,
    "float": float,
    "text": str,
    "varchar": str,
    "boolean": bool,
    "bool": bool,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type_name: str = "text"

    @property
    def python_type(self) -> type:
        return _TYPE_MAP[self.type_name]

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to the column type; NULL passes through.

        Integers are accepted into REAL columns and promoted; everything
        else must match or be losslessly convertible, otherwise the insert
        fails loudly (silent data corruption is worse than an error).
        """
        if value is None:
            return None
        target = self.python_type
        if isinstance(value, target) and not (target is int and isinstance(value, bool)):
            return value
        if target is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if target is int and isinstance(value, float) and value.is_integer():
            return int(value)
        if target is str:
            return str(value)
        raise SQLExecutionError(
            f"cannot store {value!r} ({type(value).__name__}) in "
            f"{self.type_name.upper()} column {self.name!r}"
        )


class Table:
    """An in-memory table: a list of columns and a list of row tuples."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        names = [column.name for column in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SQLExecutionError(
                f"duplicate column names in table {name!r}: {sorted(duplicates)}"
            )
        self.name = name
        self.columns = list(columns)
        self.rows: list[tuple[Any, ...]] = []
        self._index = {column.name: position for position, column in enumerate(columns)}

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column_position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SQLExecutionError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns: {self.column_names}"
            ) from None

    def insert_row(self, values: Iterable[Any], columns: list[str] | None = None) -> None:
        """Insert one row, coercing values to column types.

        When ``columns`` is given, unnamed columns receive NULL.
        """
        values = list(values)
        if columns is None:
            if len(values) != len(self.columns):
                raise SQLExecutionError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(values)}"
                )
            row = tuple(
                column.coerce(value) for column, value in zip(self.columns, values)
            )
        else:
            if len(values) != len(columns):
                raise SQLExecutionError(
                    f"INSERT names {len(columns)} columns but supplies {len(values)} values"
                )
            by_name = dict(zip(columns, values))
            unknown = set(by_name) - set(self._index)
            if unknown:
                raise SQLExecutionError(
                    f"table {self.name!r} has no columns {sorted(unknown)}"
                )
            row = tuple(
                column.coerce(by_name.get(column.name)) for column in self.columns
            )
        self.rows.append(row)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={self.column_names}, rows={len(self.rows)})"
