"""Recursive-descent SQL parser."""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    Delete,
    DropTable,
    Expr,
    FuncCall,
    InList,
    InsertInto,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    TableRef,
    UnaryOp,
    Update,
)
from repro.sql.lexer import Token, tokenize_sql

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_TYPE_KEYWORDS = ("integer", "int", "real", "float", "text", "varchar", "boolean", "bool")


class Parser:
    """Parses one SQL statement from a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SQLSyntaxError(
                f"expected {word.upper()} but found {self._peek().value!r} "
                f"at position {self._peek().position}"
            )

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.kind == "punct" and token.value == char:
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            raise SQLSyntaxError(
                f"expected {char!r} but found {self._peek().value!r} "
                f"at position {self._peek().position}"
            )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise SQLSyntaxError(
                f"expected identifier but found {token.value!r} at position {token.position}"
            )
        self._advance()
        return token.value

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._check_keyword("select"):
            statement: Statement = self._parse_select()
        elif self._check_keyword("create"):
            statement = self._parse_create()
        elif self._check_keyword("insert"):
            statement = self._parse_insert()
        elif self._check_keyword("drop"):
            statement = self._parse_drop()
        elif self._check_keyword("update"):
            statement = self._parse_update()
        elif self._check_keyword("delete"):
            statement = self._parse_delete()
        else:
            token = self._peek()
            raise SQLSyntaxError(
                f"expected a statement but found {token.value!r} at position {token.position}"
            )
        self._accept_punct(";")
        if self._peek().kind != "eof":
            token = self._peek()
            raise SQLSyntaxError(
                f"unexpected trailing input {token.value!r} at position {token.position}"
            )
        return statement

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        table = None
        joins: list[Join] = []
        if self._accept_keyword("from"):
            table = self._parse_table_ref()
            while True:
                if self._accept_keyword("join") or (
                    self._accept_keyword("inner") and self._expect_keyword("join") is None
                ):
                    kind = "inner"
                elif self._check_keyword("left"):
                    self._advance()
                    self._accept_keyword("outer")
                    self._expect_keyword("join")
                    kind = "left"
                else:
                    break
                join_table = self._parse_table_ref()
                self._expect_keyword("on")
                condition = self._parse_expr()
                joins.append(Join(kind, join_table, condition))

        where = self._parse_expr() if self._accept_keyword("where") else None

        group_by: list[Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())

        having = self._parse_expr() if self._accept_keyword("having") else None

        order_by: list[tuple[Expr, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.kind != "number" or "." in token.value:
                raise SQLSyntaxError(f"LIMIT expects an integer, found {token.value!r}")
            self._advance()
            limit = int(token.value)

        return Select(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_order_item(self) -> tuple[Expr, bool]:
        expr = self._parse_expr()
        desc = False
        if self._accept_keyword("desc"):
            desc = True
        else:
            self._accept_keyword("asc")
        return expr, desc

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.kind == "op" and token.value == "*":
            self._advance()
            return SelectItem(Star())
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return TableRef(name, alias)

    def _parse_create(self) -> CreateTable:
        self._expect_keyword("create")
        self._expect_keyword("table")
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        name = self._expect_ident()
        self._expect_punct("(")
        columns: list[tuple[str, str]] = []
        while True:
            column_name = self._expect_ident()
            type_token = self._peek()
            if not (type_token.kind == "keyword" and type_token.value in _TYPE_KEYWORDS):
                raise SQLSyntaxError(
                    f"expected a column type, found {type_token.value!r} "
                    f"at position {type_token.position}"
                )
            self._advance()
            columns.append((column_name, type_token.value))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTable(name, columns, if_not_exists)

    def _parse_insert(self) -> InsertInto:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns = None
        if self._accept_punct("("):
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: list[list[Expr]] = []
        while True:
            self._expect_punct("(")
            row = [self._parse_expr()]
            while self._accept_punct(","):
                row.append(self._parse_expr())
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        return InsertInto(table, columns, rows)

    def _parse_update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments: list[tuple[str, Expr]] = []
        while True:
            column = self._expect_ident()
            token = self._peek()
            if not (token.kind == "op" and token.value == "="):
                raise SQLSyntaxError(
                    f"expected '=' in SET clause, found {token.value!r} "
                    f"at position {token.position}"
                )
            self._advance()
            assignments.append((column, self._parse_expr()))
            if not self._accept_punct(","):
                break
        where = self._parse_expr() if self._accept_keyword("where") else None
        return Update(table, assignments, where)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = self._parse_expr() if self._accept_keyword("where") else None
        return Delete(table, where)

    def _parse_drop(self) -> DropTable:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        return DropTable(self._expect_ident(), if_exists)

    # -- expressions -----------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISON_OPS:
            self._advance()
            return BinaryOp(token.value, left, self._parse_additive())
        if self._accept_keyword("is"):
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated)
        negated = self._accept_keyword("not")
        if self._accept_keyword("in"):
            self._expect_punct("(")
            if self._check_keyword("select"):
                subselect = self._parse_select()
                self._expect_punct(")")
                return InSubquery(left, subselect, negated)
            options = [self._parse_expr()]
            while self._accept_punct(","):
                options.append(self._parse_expr())
            self._expect_punct(")")
            return InList(left, tuple(options), negated)
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self._accept_keyword("like"):
            return Like(left, self._parse_additive(), negated)
        if negated:
            raise SQLSyntaxError(
                f"expected IN, BETWEEN, or LIKE after NOT at position {self._peek().position}"
            )
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.kind == "punct" and token.value == "(":
            self._advance()
            if self._check_keyword("select"):
                subselect = self._parse_select()
                self._expect_punct(")")
                return Subquery(subselect)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.kind == "ident":
            return self._parse_ident_expr()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _parse_case(self) -> Expr:
        self._expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expr()
            self._expect_keyword("then")
            whens.append((condition, self._parse_expr()))
        if not whens:
            raise SQLSyntaxError("CASE requires at least one WHEN clause")
        otherwise = self._parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return CaseWhen(tuple(whens), otherwise)

    def _parse_ident_expr(self) -> Expr:
        name = self._expect_ident()
        if self._accept_punct("("):
            distinct = self._accept_keyword("distinct")
            star = False
            args: list[Expr] = []
            token = self._peek()
            if token.kind == "op" and token.value == "*":
                self._advance()
                star = True
            elif not (token.kind == "punct" and token.value == ")"):
                args.append(self._parse_expr())
                while self._accept_punct(","):
                    args.append(self._parse_expr())
            self._expect_punct(")")
            return FuncCall(name.lower(), tuple(args), distinct, star)
        if self._accept_punct("."):
            token = self._peek()
            if token.kind == "op" and token.value == "*":
                self._advance()
                return Star(table=name)
            column = self._expect_ident()
            return ColumnRef(column, table=name)
        return ColumnRef(name)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement."""
    return Parser(tokenize_sql(sql)).parse_statement()


def parse_expression(text: str) -> Expr:
    """Parse one standalone scalar/boolean expression.

    This is the entry point the semantic layer's structured predicates use
    (``Dataset.where``): the expression grammar is exactly the one accepted
    inside WHERE, so pushed-down and row-mode evaluation share a single
    parse.
    """
    parser = Parser(tokenize_sql(text))
    expr = parser._parse_expr()
    if parser._peek().kind != "eof":
        token = parser._peek()
        raise SQLSyntaxError(
            f"unexpected trailing input {token.value!r} at position {token.position} "
            f"in expression {text!r}"
        )
    return expr
