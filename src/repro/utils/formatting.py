"""Plain-text table rendering for benchmark reports.

Benchmarks print tables shaped like the paper's Tables 1 and 2; this module
renders them with aligned columns so paper-vs-measured comparisons are easy
to eyeball and to diff.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_money(dollars: float) -> str:
    """Format a dollar amount the way the paper's tables do."""
    return f"{dollars:.2f}"


def format_percent(fraction: float, decimals: int = 2) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{fraction * 100:.{decimals}f}%"
