"""Deterministic seed derivation and a thin seeded RNG wrapper.

Every stochastic choice in the library flows from a root seed through
:func:`derive_seed`, which namespaces seeds by string paths.  This guarantees
that adding randomness to one subsystem never perturbs another subsystem's
random stream (unlike sharing a single ``random.Random``).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.utils.hashing import stable_hash


def derive_seed(root: int, *path: object) -> int:
    """Derive a child seed from ``root`` namespaced by ``path``.

    >>> derive_seed(42, "enron", "trial", 0) != derive_seed(42, "enron", "trial", 1)
    True
    """
    return stable_hash(root, *path) % (2**63)


class SeededRng:
    """A :class:`random.Random` with namespaced child-stream derivation."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def child(self, *path: object) -> "SeededRng":
        """Return an independent RNG for the namespace ``path``."""
        return SeededRng(derive_seed(self.seed, *path))

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        return self._rng.sample(list(seq), k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability
