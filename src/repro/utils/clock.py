"""Virtual time accounting.

The paper reports runtimes dominated by LLM API latency.  Rather than sleep,
every simulated LLM call charges seconds to a :class:`VirtualClock`.  The
clock supports two overlap models:

- *Parallel sections*: semantic operators that issue batched calls with
  ``parallelism=k`` charge ``ceil(n / k)`` waves of the per-call latency,
  mirroring how a real executor overlaps API calls.
- *Pipeline sections*: a streaming executor pushes record batches through a
  chain of operator stages; batch *b* can occupy stage *s* while batch
  *b+1* is still in stage *s-1*.  The charged time is the critical-path
  makespan of the (batch, stage) grid — not the per-stage sum — computed by
  :func:`pipeline_makespan` / :class:`PipelineSchedule` under the classic
  recurrence ``finish[b][s] = max(finish[b][s-1], finish[b-1][s]) + t[b][s]``
  (a stage processes one batch at a time, a batch visits stages in order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class VirtualClock:
    """Accumulates simulated elapsed seconds."""

    elapsed: float = 0.0
    _marks: dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` (sequential work)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self.elapsed += seconds

    def advance_parallel(self, per_item_seconds: list[float], parallelism: int) -> float:
        """Advance by the makespan of items executed with bounded parallelism.

        Items are processed in waves of size ``parallelism``; each wave costs
        its slowest item.  Returns the total seconds charged.
        """
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        total = 0.0
        for start in range(0, len(per_item_seconds), parallelism):
            wave = per_item_seconds[start : start + parallelism]
            total += max(wave)
        self.advance(total)
        return total

    def advance_pipeline(self, cells: list[list[float]]) -> float:
        """Advance by the pipelined makespan of a batch-major duration grid.

        ``cells[b][s]`` is the seconds batch ``b`` spends in stage ``s``.
        Rows may be ragged (a batch that died at a filter, or early exit,
        simply has fewer cells).  Returns the seconds charged.
        """
        makespan = pipeline_makespan(cells)
        self.advance(makespan)
        return makespan

    def mark(self, name: str) -> None:
        """Record the current time under ``name`` for later interval reads."""
        self._marks[name] = self.elapsed

    def since(self, name: str) -> float:
        """Return seconds elapsed since :meth:`mark` was called with ``name``."""
        if name not in self._marks:
            raise KeyError(f"no clock mark named {name!r}")
        return self.elapsed - self._marks[name]

    def reset(self) -> None:
        self.elapsed = 0.0
        self._marks.clear()


def waves(n_items: int, parallelism: int) -> int:
    """Number of sequential waves needed to process ``n_items`` items."""
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    return math.ceil(n_items / parallelism)


class PipelineSchedule:
    """Online pipelined-makespan accounting for one streaming section.

    The executor measures each (batch, stage) cell as it runs and feeds it
    in with :meth:`record`; :attr:`makespan` is always the critical-path
    finish time of everything recorded so far.  Cells must arrive
    batch-major (all of batch *b*'s stages, in stage order, before batch
    *b+1*) — exactly the order a depth-first streaming executor produces.
    Recording the same stage twice within a batch extends that cell (used
    for wave retries).
    """

    def __init__(self) -> None:
        #: When each stage finishes its most recent batch.
        self._stage_free: list[float] = []
        #: When the current batch left its most recent stage.
        self._batch_ready: float = 0.0
        self.makespan: float = 0.0
        #: Scheduled (start, end) of the most recently recorded cell —
        #: section-relative seconds, read by the tracer to place cell spans.
        self.last_cell: tuple[float, float] = (0.0, 0.0)

    def start_batch(self) -> None:
        """Begin a new batch; it is available to stage 0 immediately."""
        self._batch_ready = 0.0

    def record(self, stage: int, seconds: float) -> float:
        """Schedule ``seconds`` of stage work for the current batch.

        Returns the updated section makespan.
        """
        if seconds < 0:
            raise ValueError(f"cell duration must be >= 0, got {seconds}")
        if stage < 0:
            raise ValueError(f"stage index must be >= 0, got {stage}")
        while len(self._stage_free) <= stage:
            self._stage_free.append(0.0)
        start = max(self._batch_ready, self._stage_free[stage])
        end = start + seconds
        self._stage_free[stage] = end
        self._batch_ready = end
        self.makespan = max(self.makespan, end)
        self.last_cell = (start, end)
        return self.makespan


def pipeline_makespan(cells: list[list[float]]) -> float:
    """Critical-path makespan of a batch-major (batch, stage) duration grid.

    Equivalent to replaying ``cells`` through a :class:`PipelineSchedule`.
    An empty grid (or one of empty rows) has makespan 0.
    """
    schedule = PipelineSchedule()
    for row in cells:
        schedule.start_batch()
        for stage, seconds in enumerate(row):
            schedule.record(stage, seconds)
    return schedule.makespan
