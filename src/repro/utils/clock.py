"""Virtual time accounting.

The paper reports runtimes dominated by LLM API latency.  Rather than sleep,
every simulated LLM call charges seconds to a :class:`VirtualClock`.  The
clock supports *parallel sections*: semantic operators that issue batched
calls with ``parallelism=k`` charge ``ceil(n / k)`` waves of the per-call
latency, mirroring how a real executor overlaps API calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class VirtualClock:
    """Accumulates simulated elapsed seconds."""

    elapsed: float = 0.0
    _marks: dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` (sequential work)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self.elapsed += seconds

    def advance_parallel(self, per_item_seconds: list[float], parallelism: int) -> float:
        """Advance by the makespan of items executed with bounded parallelism.

        Items are processed in waves of size ``parallelism``; each wave costs
        its slowest item.  Returns the total seconds charged.
        """
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        total = 0.0
        for start in range(0, len(per_item_seconds), parallelism):
            wave = per_item_seconds[start : start + parallelism]
            total += max(wave)
        self.advance(total)
        return total

    def mark(self, name: str) -> None:
        """Record the current time under ``name`` for later interval reads."""
        self._marks[name] = self.elapsed

    def since(self, name: str) -> float:
        """Return seconds elapsed since :meth:`mark` was called with ``name``."""
        if name not in self._marks:
            raise KeyError(f"no clock mark named {name!r}")
        return self.elapsed - self._marks[name]

    def reset(self) -> None:
        self.elapsed = 0.0
        self._marks.clear()


def waves(n_items: int, parallelism: int) -> int:
    """Number of sequential waves needed to process ``n_items`` items."""
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    return math.ceil(n_items / parallelism)
