"""Stable hashing helpers.

Python's built-in :func:`hash` is salted per process, so anything that must
be reproducible across runs (simulated LLM noise, embeddings, trial seeds)
goes through the SHA-256-based helpers in this module instead.
"""

from __future__ import annotations

import hashlib
from typing import Any

_MAX_64 = 2**64


def stable_hash(*parts: Any) -> int:
    """Return a process-independent 64-bit hash of ``parts``.

    Parts are converted with :func:`repr` and joined with an unlikely
    separator, so ``stable_hash("ab", "c") != stable_hash("a", "bc")``.
    """
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def stable_uniform(*parts: Any) -> float:
    """Return a deterministic pseudo-uniform float in ``[0, 1)`` for ``parts``.

    Used to make simulated model errors a *fixed property* of a
    (model, task, record) triple: the same cheap model is consistently wrong
    on the same hard records, as real model cascades are.
    """
    return stable_hash(*parts) / _MAX_64


def stable_digest(*parts: Any) -> str:
    """Return a short hex digest of ``parts`` for use in cache keys and ids."""
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]
