"""Shared utilities: deterministic seeding, virtual time, text, hashing."""

from repro.utils.clock import VirtualClock
from repro.utils.hashing import stable_hash, stable_uniform
from repro.utils.seeding import SeededRng, derive_seed
from repro.utils.text import (
    approx_token_count,
    extract_keywords,
    normalize_text,
    snippet,
    tokenize,
)

__all__ = [
    "SeededRng",
    "VirtualClock",
    "approx_token_count",
    "derive_seed",
    "extract_keywords",
    "normalize_text",
    "snippet",
    "stable_hash",
    "stable_uniform",
    "tokenize",
]
