"""Text utilities: tokenization, normalization, token estimation, keywords.

These back both the simulated LLM (token-based pricing and latency) and the
deterministic embedding model (bag-of-token feature hashing).
"""

from __future__ import annotations

import re
from collections import Counter

_WORD_RE = re.compile(r"[A-Za-z0-9_']+")

# Small stopword list: enough to make keyword extraction and embeddings
# discriminative without shipping a full NLP stack.
STOPWORDS = frozenset(
    """
    a an and are as at be been but by for from had has have he her his i if in
    is it its me my not of on or our she so that the their them they this to
    was we were what when which who will with you your
    """.split()
)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens."""
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def normalize_text(text: str) -> str:
    """Lowercase and collapse whitespace; used for cache keys and matching."""
    return " ".join(text.lower().split())


def approx_token_count(text: str) -> int:
    """Estimate LLM token count for ``text``.

    Uses the standard ~4 characters/token heuristic with a floor of one token
    per word, which tracks real BPE tokenizers closely enough for pricing.
    """
    if not text:
        return 0
    by_chars = max(1, round(len(text) / 4))
    by_words = len(text.split())
    return max(by_chars, by_words)


def extract_keywords(text: str, limit: int = 12) -> list[str]:
    """Return up to ``limit`` informative tokens from ``text``.

    Stopwords are removed and remaining tokens ranked by frequency then by
    first appearance (stable, deterministic ordering).
    """
    tokens = [tok for tok in tokenize(text) if tok not in STOPWORDS and len(tok) > 1]
    counts = Counter(tokens)
    first_pos = {}
    for pos, tok in enumerate(tokens):
        first_pos.setdefault(tok, pos)
    ranked = sorted(counts, key=lambda tok: (-counts[tok], first_pos[tok]))
    return ranked[:limit]


def snippet(text: str, max_chars: int = 200) -> str:
    """Return a single-line preview of ``text`` capped at ``max_chars``."""
    flat = " ".join(text.split())
    if len(flat) <= max_chars:
        return flat
    return flat[: max_chars - 3] + "..."


def jaccard_similarity(text_a: str, text_b: str) -> float:
    """Jaccard similarity of the token sets of two strings (0.0 .. 1.0)."""
    set_a = set(tokenize(text_a)) - STOPWORDS
    set_b = set(tokenize(text_b)) - STOPWORDS
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)
