"""Scripted policies for the compute and search operator agents.

These are the "LLM planning" stand-ins for the paper's new operators (see
``repro.agents.policies.base`` for the substitution argument).  The compute
policy recognizes the task shapes the paper's evaluation exercises and
plans accordingly:

- **ratio tasks** ("compute the ratio between the number of X in the year
  A and ... year B"): run one optimized semantic program per year, then
  write Python to cross-check candidate files and prefer the source with
  the widest year coverage — the Figure 1 (left) behaviour.
- **filter tasks** ("return all <records> which ..."): delegate the whole
  task to one optimized semantic program — the Figure 1 (right) behaviour.
- **generic tasks**: vector-search the Context, read the top items, and
  answer from what was found.
"""

from __future__ import annotations

import json
import re

from repro.agents.policies.base import AgentPolicy
from repro.agents.tools import ToolRegistry
from repro.agents.trace import AgentTrace
from repro.utils.text import snippet


class ComputeAgentPolicy(AgentPolicy):
    """Planner for the compute operator's CodeAgent."""

    RATIO_RE = re.compile(
        r"ratio between the number of (?P<entity>.+?) in the year "
        r"(?P<first>\d{4}) and the number of .+? in the year (?P<second>\d{4})",
        re.IGNORECASE,
    )
    ARGMAX_RE = re.compile(
        r"which state had the (?:most|highest)(?: number of)? (?P<entity>.+?) "
        r"in the year (?P<year>\d{4})",
        re.IGNORECASE,
    )
    FILTER_RE = re.compile(r"\b(?:return|find|list)\s+all\b", re.IGNORECASE)

    def reset(self, task, rng):
        super().reset(task, rng)
        self._step = 0
        ratio_match = self.RATIO_RE.search(task)
        argmax_match = self.ARGMAX_RE.search(task)
        if ratio_match:
            self.flow = "ratio"
            self.entity = ratio_match.group("entity").strip()
            self.first_year = ratio_match.group("first")
            self.second_year = ratio_match.group("second")
        elif argmax_match:
            self.flow = "argmax"
            self.entity = argmax_match.group("entity").strip()
            self.year = argmax_match.group("year")
        elif self.FILTER_RE.search(task):
            self.flow = "filter"
        else:
            self.flow = "generic"

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        method = getattr(self, f"_{self.flow}_{self._step}", None)
        self._step += 1
        if method is None:
            return None
        return method(task, trace)

    # ------------------------------------------------------------------
    # Ratio flow
    # ------------------------------------------------------------------

    def _program_instruction(self, year: str) -> str:
        filter_entity = re.sub(r"\s+reports?$", "", self.entity)
        return (
            f"Find the files which report national {filter_entity} "
            f"statistics for the year {year} and extract the number of "
            f"{self.entity} in the year {year}."
        )

    def _ratio_0(self, task: str, trace: AgentTrace) -> str:
        return (
            "items = list_items()\n"
            "print(len(items), 'items in context')\n"
            f"hits = vector_search({self.entity + ' ' + self.first_year!r}, 5)\n"
            "print('top matches:', hits)\n"
        )

    def _ratio_1(self, task: str, trace: AgentTrace) -> str:
        return (
            f"res_first = run_semantic_program({self._program_instruction(self.first_year)!r})\n"
            f"res_second = run_semantic_program({self._program_instruction(self.second_year)!r})\n"
            "print(len(res_first), 'candidates for "
            f"{self.first_year};', len(res_second), 'for {self.second_year}')\n"
        )

    def _ratio_2(self, task: str, trace: AgentTrace) -> str:
        # Cross-check in plain Python (the Figure-1-left behaviour): prefer
        # a single source file covering both years, ranking candidates by
        # (a) how many *other* files corroborate its extracted values and
        # (b) how many year-keyed rows it contains.
        return (
            "import re\n"
            "def num(v):\n"
            "    try:\n"
            "        return float(str(v).replace(',', ''))\n"
            "    except ValueError:\n"
            "        return None\n"
            "vals_first = {r[list(r)[0]]: num(r.get('value')) for r in res_first}\n"
            "vals_first = {k: v for k, v in vals_first.items() if v}\n"
            "vals_second = {r[list(r)[0]]: num(r.get('value')) for r in res_second}\n"
            "vals_second = {k: v for k, v in vals_second.items() if v}\n"
            "both = sorted(k for k in vals_first if k in vals_second)\n"
            "def corroboration(k):\n"
            "    support = 0\n"
            "    for vals in (vals_first, vals_second):\n"
            "        support += sum(1 for other, v in vals.items()\n"
            "                       if other != k and v == vals[k])\n"
            "    return support\n"
            "def year_rows(k):\n"
            "    text = get_item(k)\n"
            "    rows = re.findall(r'(?m)^[^\\d\\n]{0,10}((?:19|20)\\d{2})\\b', text)\n"
            "    return len(set(rows))\n"
            "if both:\n"
            "    k = max(both, key=lambda k: (corroboration(k), year_rows(k)))\n"
            "    final_answer({'ratio': vals_first[k] / vals_second[k], 'source': k})\n"
            "elif vals_first and vals_second:\n"
            "    k1 = max(vals_first, key=lambda k: vals_first[k])\n"
            "    k2 = max(vals_second, key=lambda k: vals_second[k])\n"
            "    final_answer({'ratio': vals_first[k1] / vals_second[k2],\n"
            "                  'source': k1 + ' & ' + k2})\n"
            "else:\n"
            "    final_answer(None)\n"
        )

    # ------------------------------------------------------------------
    # Argmax flow ("which state had the most X in YEAR?")
    # ------------------------------------------------------------------

    def _argmax_0(self, task: str, trace: AgentTrace) -> str:
        return (
            "items = list_items()\n"
            "print(len(items), 'items in context')\n"
            f"hits = vector_search({'state ' + self.entity + ' ' + self.year!r}, 5)\n"
            "print('top matches:', hits)\n"
        )

    def _argmax_1(self, task: str, trace: AgentTrace) -> str:
        filter_entity = re.sub(r"\s+reports?$", "", self.entity)
        instruction = (
            f"Find the files which report state level {filter_entity} "
            f"statistics and extract the number of {self.entity} in the "
            f"year {self.year}."
        )
        return (
            f"res_states = run_semantic_program({instruction!r})\n"
            "print(len(res_states), 'state files found')\n"
        )

    def _argmax_2(self, task: str, trace: AgentTrace) -> str:
        # Derive the state name from the filename and take the argmax in
        # plain Python.  Extraction outliers happen (a cheap model can
        # misread a number), so the top candidates are verified against
        # their source file before one is accepted — the paper's
        # "write Python code to identify the correct statistics" loop.
        return (
            "import re\n"
            "def num(v):\n"
            "    try:\n"
            "        return float(str(v).replace(',', ''))\n"
            "    except ValueError:\n"
            "        return None\n"
            "scored = []\n"
            "for r in res_states:\n"
            "    key = r[list(r)[0]]\n"
            "    value = num(r.get('value'))\n"
            "    if value is None:\n"
            "        continue\n"
            "    m = re.search(r'reports_([a-z_]+?)_\\d{4}', key)\n"
            "    state = m.group(1) if m else key\n"
            "    scored.append((value, state, key))\n"
            "scored.sort(reverse=True)\n"
            "for value, state, key in scored[:5]:\n"
            "    text = get_item(key).replace(',', '')\n"
            "    if str(int(value)) in text:\n"
            "        final_answer({'state': state, 'reports': value, 'source': key})\n"
            "if scored:\n"
            "    value, state, key = scored[0]\n"
            "    final_answer({'state': state, 'reports': value, 'source': key,\n"
            "                  'verified': False})\n"
            "final_answer(None)\n"
        )

    # ------------------------------------------------------------------
    # Filter flow
    # ------------------------------------------------------------------

    def _filter_0(self, task: str, trace: AgentTrace) -> str:
        return (
            "items = list_items()\n"
            "print(len(items), 'items in context')\n"
            "print(get_item(items[0])[:400])\n"
        )

    def _filter_1(self, task: str, trace: AgentTrace) -> str:
        return (
            f"results = run_semantic_program({task!r})\n"
            "print(len(results), 'matching records')\n"
        )

    def _filter_2(self, task: str, trace: AgentTrace) -> str:
        return "final_answer(results)\n"

    # ------------------------------------------------------------------
    # Generic flow
    # ------------------------------------------------------------------

    def _generic_0(self, task: str, trace: AgentTrace) -> str:
        return (
            f"hits = vector_search({task!r}, 8)\n"
            "import json\n"
            "print(json.dumps(hits))\n"
        )

    def _generic_1(self, task: str, trace: AgentTrace) -> str:
        try:
            hits = json.loads(trace.last_observation())
        except (ValueError, TypeError):
            hits = []
        keys = [hit["key"] for hit in hits[:3] if isinstance(hit, dict)]
        return (
            f"for k in {json.dumps(keys)}:\n"
            "    print('----', k)\n"
            "    print(get_item(k)[:600])\n"
        )

    def _generic_2(self, task: str, trace: AgentTrace) -> str:
        notes = snippet(trace.last_observation(), 600)
        return f"final_answer({{'notes': {notes!r}}})\n"


class DescGuidedComputePolicy(AgentPolicy):
    """Compute policy used on the dynamic-recovery path (paper §3).

    After a failed compute, the optimizer inserts a ``search`` whose
    findings land in the derived Context's description ("Relevant items:
    ...").  This policy plans directly from that enriched description: it
    reads the listed items and extracts the values the task asks about.
    """

    RELEVANT_RE = re.compile(r"Relevant items:\s*([^\n]+)")

    def __init__(self, context_desc: str) -> None:
        self.context_desc = context_desc

    def reset(self, task, rng):
        super().reset(task, rng)
        self._step = 0
        matches = self.RELEVANT_RE.findall(self.context_desc)
        keys: list[str] = []
        if matches:
            keys = [key.strip() for key in matches[-1].split(",") if key.strip()]
        self.keys = [key for key in keys if key != "(none found)"][:5]

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        step = self._step
        self._step += 1
        if step == 0:
            if not self.keys:
                return "final_answer(None)\n"
            return (
                f"for k in {json.dumps(self.keys)}:\n"
                "    print('<<<FILE>>>', k)\n"
                "    print(get_item(k)[:3000])\n"
            )
        if step == 1:
            return self._analyze(task, trace)
        return None

    def _analyze(self, task: str, trace: AgentTrace) -> str:
        from repro.agents.policies.deep_research import (
            find_year_value,
            split_file_sections,
        )

        years = sorted(set(re.findall(r"\b(?:19|20)\d{2}\b", task)))
        sections = split_file_sections(trace.last_observation())
        if len(years) >= 2:
            early, late = years[0], years[-1]
            for key, text in sections.items():
                value_early = find_year_value(text, int(early))
                value_late = find_year_value(text, int(late))
                if value_early and value_late:
                    return (
                        f"final_answer({{'ratio': {value_late!r} / {value_early!r}, "
                        f"'source': {key!r}}})\n"
                    )
        if len(years) == 1:
            for key, text in sections.items():
                value = find_year_value(text, int(years[0]))
                if value:
                    return (
                        f"final_answer({{'value': {value!r}, 'source': {key!r}}})\n"
                    )
        notes = snippet(trace.last_observation(), 400)
        return f"final_answer({{'notes': {notes!r}}})\n"


class SearchAgentPolicy(AgentPolicy):
    """Planner for the search operator's CodeAgent.

    Searches the Context (vector search first, then reads top hits) and
    finishes with a findings dict; the search operator folds these
    findings into the derived Context's description.
    """

    def __init__(self, k: int = 8, read_top: int = 3) -> None:
        self.k = k
        self.read_top = read_top

    def reset(self, task, rng):
        super().reset(task, rng)
        self._step = 0

    def next_code(self, task: str, trace: AgentTrace, tools: ToolRegistry) -> str | None:
        step = self._step
        self._step += 1
        if step == 0:
            return (
                "import json\n"
                f"hits = vector_search({task!r}, {self.k})\n"
                "print(json.dumps(hits))\n"
            )
        if step == 1:
            try:
                hits = json.loads(trace.last_observation())
            except (ValueError, TypeError):
                hits = []
            keys = [hit["key"] for hit in hits[: self.read_top] if isinstance(hit, dict)]
            self._top_keys = keys
            return (
                f"for k in {json.dumps(keys)}:\n"
                "    print('<<<ITEM>>>', k)\n"
                "    print(get_item(k)[:800])\n"
            )
        if step == 2:
            keys = getattr(self, "_top_keys", [])
            notes = snippet(trace.last_observation().replace("\n", " "), 700)
            return (
                f"final_answer({{'relevant_items': {json.dumps(keys)}, "
                f"'notes': {notes!r}}})\n"
            )
        return None
