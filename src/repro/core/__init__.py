"""The paper's contribution: Context, search/compute, ContextManager.

This package extends the semantic-operator substrate (:mod:`repro.sem`)
with the three mechanisms the paper proposes:

1. :class:`~repro.core.context.Context` — a Dataset with dynamic access
   methods (point lookups, vector search), custom tools, and a natural-
   language description.
2. :func:`~repro.core.operators.search` and
   :func:`~repro.core.operators.compute` — semantic operators physically
   implemented with CodeAgents that hold a tool for writing and executing
   *optimized* semantic-operator programs.
3. :class:`~repro.core.context_manager.ContextManager` — an embedding
   index over materialized Contexts enabling materialized-view-style reuse
   across queries.

The :class:`~repro.core.runtime.AnalyticsRuntime` facade wires everything
together (including the SQL engine for structured materialization).
"""

from repro.core.context import Context, KeyIndex, VectorIndex
from repro.core.context_manager import ContextManager
from repro.core.operators import ComputeResult, SearchResult, compute, search
from repro.core.runtime import AnalyticsRuntime
from repro.core.synthesis import ProgramSpec, synthesize_program

__all__ = [
    "AnalyticsRuntime",
    "ComputeResult",
    "Context",
    "ContextManager",
    "KeyIndex",
    "ProgramSpec",
    "SearchResult",
    "VectorIndex",
    "compute",
    "search",
    "synthesize_program",
]
