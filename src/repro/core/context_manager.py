"""Context management & maintenance (paper Section 2.4).

The ContextManager embeds and caches the descriptions of materialized
Contexts.  When a new ``compute``/``search`` instruction arrives, the
optimizer asks for a previously materialized Context whose description is
similar to the instruction — the materialized-view reuse the paper frames
as its (experimental) physical optimization.

Description embeddings are computed lazily: ``register`` only indexes the
Context, and the first ``find_similar`` call embeds every pending entry
with a single batched request.  Registration is therefore free, and a
burst of materializations costs one embedding round-trip instead of one
per Context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.context import Context
from repro.llm.simulated import SimulatedLLM

if TYPE_CHECKING:
    from repro.sem.materialize import MaterializationStore


@dataclass
class CachedContext:
    """One materialized Context plus its description embedding."""

    context: Context
    #: The instruction whose execution materialized this Context.
    instruction: str
    #: Lazily batch-computed on the first ``find_similar`` call.
    embedding: np.ndarray | None = None
    #: How many times reuse served this entry.
    hits: int = 0

    def text(self) -> str:
        """The text that is embedded for similarity matching."""
        return f"{self.instruction}\n{self.context.desc}"


class ContextManager:
    """Embeds and indexes materialized Contexts for cross-query reuse."""

    #: Cosine similarity a cached description must reach to be reused.
    DEFAULT_THRESHOLD = 0.60

    def __init__(self, llm: SimulatedLLM, threshold: float = DEFAULT_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.llm = llm
        self.threshold = threshold
        self._entries: list[CachedContext] = []
        #: Optional sub-plan materialization store; ``invalidate`` cascades
        #: into it so plan prefixes built on a refreshed Context are dropped
        #: together with the cached Contexts themselves.
        self.materialization_store: "MaterializationStore | None" = None

    def register(self, context: Context, instruction: str) -> CachedContext:
        """Index a freshly materialized Context under its instruction.

        No embedding call happens here; the entry is embedded together with
        all other pending entries on the next :meth:`find_similar`.
        """
        entry = CachedContext(context=context, instruction=instruction)
        self._entries.append(entry)
        return entry

    def _ensure_embeddings(self) -> None:
        """Batch-embed every entry registered since the last lookup."""
        pending = [entry for entry in self._entries if entry.embedding is None]
        if not pending:
            return
        vectors = self.llm.embed_batch(
            [entry.text() for entry in pending], tag="context-manager"
        )
        for entry, vector in zip(pending, vectors):
            entry.embedding = vector

    def find_similar(
        self, instruction: str, threshold: float | None = None
    ) -> tuple[CachedContext | None, float]:
        """Best cached Context for ``instruction`` (None below threshold)."""
        if not self._entries:
            return None, 0.0
        floor = self.threshold if threshold is None else threshold
        self._ensure_embeddings()
        query = self.llm.embed(instruction, tag="context-manager")
        matrix = np.stack([entry.embedding for entry in self._entries])
        norms = np.linalg.norm(matrix, axis=1)
        query_norm = float(np.linalg.norm(query))
        if query_norm == 0.0:
            return None, 0.0
        safe_norms = np.where(norms == 0.0, 1.0, norms)
        scores = (matrix @ query) / (safe_norms * query_norm)
        scores = np.where(norms == 0.0, 0.0, scores)
        index = int(np.argmax(scores))
        best, best_score = self._entries[index], float(scores[index])
        if best_score >= floor:
            best.hits += 1
            return best, best_score
        return None, max(0.0, best_score)

    def entries(self) -> list[CachedContext]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def invalidate(self, base: Context | str) -> int:
        """Drop cached Contexts derived from ``base`` (maintenance, §2.4).

        When the records behind a Context change, every materialized view
        built on top of it is stale; callers pass the refreshed Context (or
        its name) and all entries whose lineage includes it are evicted.
        The eviction cascades into the attached
        :class:`~repro.sem.materialize.MaterializationStore` (when one is
        wired up): sub-plan prefixes materialized from the base Context or
        from any evicted derived Context are dropped too.  Returns the
        number of evicted ContextManager entries.
        """
        base_name = base if isinstance(base, str) else base.name
        stale_sources = {base_name}
        kept = []
        evicted = 0
        for entry in self._entries:
            lineage_names = [ancestor.name for ancestor in entry.context.lineage()]
            if base_name in lineage_names:
                evicted += 1
                # Everything from the derived Context down to the base is
                # now stale as a materialization source.
                for name in lineage_names:
                    stale_sources.add(name)
                    if name == base_name:
                        break
            else:
                kept.append(entry)
        self._entries = kept
        if self.materialization_store is not None:
            self.materialization_store.invalidate_sources(stale_sources)
        return evicted
