"""Context management & maintenance (paper Section 2.4).

The ContextManager embeds and caches the descriptions of materialized
Contexts.  When a new ``compute``/``search`` instruction arrives, the
optimizer asks for a previously materialized Context whose description is
similar to the instruction — the materialized-view reuse the paper frames
as its (experimental) physical optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import Context
from repro.llm.embeddings import cosine_similarity
from repro.llm.simulated import SimulatedLLM


@dataclass
class CachedContext:
    """One materialized Context plus its description embedding."""

    context: Context
    #: The instruction whose execution materialized this Context.
    instruction: str
    embedding: np.ndarray
    #: How many times reuse served this entry.
    hits: int = 0


class ContextManager:
    """Embeds and indexes materialized Contexts for cross-query reuse."""

    #: Cosine similarity a cached description must reach to be reused.
    DEFAULT_THRESHOLD = 0.60

    def __init__(self, llm: SimulatedLLM, threshold: float = DEFAULT_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.llm = llm
        self.threshold = threshold
        self._entries: list[CachedContext] = []

    def register(self, context: Context, instruction: str) -> CachedContext:
        """Index a freshly materialized Context under its instruction."""
        text = f"{instruction}\n{context.desc}"
        entry = CachedContext(
            context=context,
            instruction=instruction,
            embedding=self.llm.embed(text, tag="context-manager"),
        )
        self._entries.append(entry)
        return entry

    def find_similar(
        self, instruction: str, threshold: float | None = None
    ) -> tuple[CachedContext | None, float]:
        """Best cached Context for ``instruction`` (None below threshold)."""
        if not self._entries:
            return None, 0.0
        floor = self.threshold if threshold is None else threshold
        query = self.llm.embed(instruction, tag="context-manager")
        best: CachedContext | None = None
        best_score = -1.0
        for entry in self._entries:
            score = cosine_similarity(query, entry.embedding)
            if score > best_score:
                best, best_score = entry, score
        if best is not None and best_score >= floor:
            best.hits += 1
            return best, best_score
        return None, max(0.0, best_score)

    def entries(self) -> list[CachedContext]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def invalidate(self, base: Context | str) -> int:
        """Drop cached Contexts derived from ``base`` (maintenance, §2.4).

        When the records behind a Context change, every materialized view
        built on top of it is stale; callers pass the refreshed Context (or
        its name) and all entries whose lineage includes it are evicted.
        Returns the number of evicted entries.
        """
        base_name = base if isinstance(base, str) else base.name
        kept = []
        evicted = 0
        for entry in self._entries:
            lineage_names = {ancestor.name for ancestor in entry.context.lineage()}
            if base_name in lineage_names:
                evicted += 1
            else:
                kept.append(entry)
        self._entries = kept
        return evicted
