"""Natural-language → semantic-operator program synthesis.

The compute/search agents hold a tool that "can execute a natural language
instruction with an optimized semantic operator program" (paper §1).  This
module is the deterministic synthesizer behind that tool: it decomposes an
instruction into filter predicates and extraction fields using a small set
of linguistic patterns, then the program tool compiles the result into a
:class:`~repro.sem.dataset.Dataset` plan and hands it to the optimizer.

The patterns cover the instruction shapes the paper's two workloads (and
our examples) produce; anything unmatched degrades gracefully to a single
semantic filter with the whole instruction as its predicate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class ProgramSpec:
    """A synthesized program: filters, then per-record extractions."""

    filters: list[str] = field(default_factory=list)
    #: (output field name, extraction instruction) pairs.
    extracts: list[tuple[str, str]] = field(default_factory=list)
    #: Optional top-k retrieval to narrow the scan before filtering.
    retrieve_query: str | None = None
    retrieve_k: int = 0

    def describe(self) -> str:
        parts = []
        if self.retrieve_query:
            parts.append(f"retrieve(k={self.retrieve_k}, {self.retrieve_query!r})")
        parts.extend(f"sem_filter({instr!r})" for instr in self.filters)
        parts.extend(f"sem_map({name}={instr!r})" for name, instr in self.extracts)
        return " -> ".join(parts) if parts else "(empty program)"


_EXTRACT_SPLIT_RE = re.compile(r",?\s+and extract\s+", re.IGNORECASE)
_LEADING_VERB_RE = re.compile(
    r"^(?:find|return|list|get|select)\s+(?:all\s+)?(?:the\s+)?"
    r"(?P<noun>[a-z]+)\s+(?:which|that)\s+",
    re.IGNORECASE,
)
_FIELD_WORD_RE = re.compile(r"[a-z][a-z_]+", re.IGNORECASE)

#: Words in an extraction clause that are not field names.
_EXTRACT_NOISE = frozenset(
    "the a an of each every and or for from all their its with to".split()
)


def synthesize_program(instruction: str) -> ProgramSpec:
    """Decompose ``instruction`` into a :class:`ProgramSpec`.

    Recognized shapes (case-insensitive):

    - ``"<filter clause>, and extract <f1>, <f2>, and <f3> of each ..."``
      → one filter plus one extraction per field word.
    - ``"Find/Return/List all <noun> which/that <predicate>"``
      → filter ``"The <noun-singular> <predicate>."``
    - ``"Extract <what> from ..."`` → a single extraction named ``value``.
    - anything else → one filter with the whole instruction.
    """
    instruction = instruction.strip().rstrip(".") + "."
    spec = ProgramSpec()

    head, *extract_parts = _EXTRACT_SPLIT_RE.split(instruction)
    head = head.strip().rstrip(".,")

    if re.match(r"^extract\s+", head, re.IGNORECASE) and not extract_parts:
        spec.extracts.append(("value", head + "."))
        return spec

    match = _LEADING_VERB_RE.match(head)
    if match:
        noun = match.group("noun").lower()
        predicate = head[match.end():].strip()
        singular = noun[:-1] if noun.endswith("s") else noun
        spec.filters.append(f"The {singular} {_conjugate(predicate)}.")
    elif head:
        spec.filters.append(head if head.endswith(".") else head + ".")

    for part in extract_parts:
        part = part.strip().rstrip(".")
        if " of each " in part:
            # "the sender, subject, and a summary of each email"
            # → one extraction per listed field.
            noun = part.rsplit(" of each ", 1)[1].strip()
            for name in _extract_field_names(part.rsplit(" of each ", 1)[0]):
                article = "a" if name == "summary" else "the"
                spec.extracts.append(
                    (name, f"Extract {article} {name} of the {noun}.")
                )
        else:
            # "the number of identity theft reports in the year 2024"
            # → one quantity extraction with the clause kept intact.
            spec.extracts.append(("value", f"Extract {part}."))
    return spec


def _extract_field_names(clause: str) -> list[str]:
    """Field names from "the sender, subject, and a summary"."""
    names = []
    for word in _FIELD_WORD_RE.findall(clause.lower()):
        if word not in _EXTRACT_NOISE and word not in names:
            names.append(word)
    return names


def _conjugate(predicate: str) -> str:
    """Third-person-singular the leading verb of a plural-form predicate.

    "contain firsthand discussion" → "contains firsthand discussion", so
    the synthesized filter reads naturally against a single record.
    """
    words = predicate.split()
    if not words:
        return predicate
    verb = words[0].lower()
    if not verb.endswith("s"):
        verb = verb + "s"
    return " ".join([verb] + words[1:])
