"""The AnalyticsRuntime facade.

Wires together everything a user needs for AI-driven analytics over a data
lake: the (simulated) LLM service, Contexts, the compute/search operators,
the ContextManager, the semantic-operator optimizer configuration, and the
SQL engine for structured materialization.

Typical use::

    runtime = AnalyticsRuntime.for_bundle(bundle, seed=7)
    ctx = runtime.make_context(bundle)
    found = runtime.search(ctx, "information on identity thefts")
    result = runtime.compute(found.output_context, QUERY_RATIO)
    runtime.materialize_rows("answers", [{"ratio": result.answer["ratio"]}])
    runtime.sql("SELECT * FROM answers")
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

from repro.core.context import Context
from repro.core.context_manager import ContextManager
from repro.core.operators import ComputeResult, SearchResult, compute, search
from repro.data.datasets.base import DatasetBundle
from repro.data.records import DataRecord
from repro.data.schemas import Schema
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.models import DEFAULT_MODEL, completion_models_by_cost
from repro.llm.oracle import IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.llm.usage import Usage
from repro.obs.stats import StatisticsStore
from repro.sem.config import QueryProcessorConfig
from repro.sem.materialize import MaterializationStore
from repro.sem.optimizer.policies import Balanced, OptimizationPolicy
from repro.sql.database import Database
from repro.sql.executor import ResultSet


class AnswerCache:
    """LRU-bounded whole-query answer cache with eviction accounting.

    Entries are ``(root context name, query embedding, ComputeResult)``;
    lookup is similarity-based (a linear scan in recency order, bounded by
    ``max_entries``), so keys are opaque insertion ids rather than content
    digests.  Counters mirror into an attached
    :class:`~repro.obs.metrics.MetricsRegistry` as ``answers.*``, matching
    the :class:`~repro.llm.cache.GenerationCache` /
    :class:`~repro.sem.materialize.MaterializationStore` accounting idiom.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, tuple[str, Any, ComputeResult]]" = OrderedDict()
        self._next_id = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self.clears = 0
        self.cleared_entries = 0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.
        self.metrics = None

    def lookup(
        self, root_name: str, query_vec: Any, similarity_floor: float
    ) -> "ComputeResult | None":
        from repro.llm.embeddings import cosine_similarity

        for key, (cached_root, cached_vec, cached_result) in self._entries.items():
            if cached_root != root_name:
                continue
            if cosine_similarity(query_vec, cached_vec) >= similarity_floor:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("answers.hits")
                return cached_result
        self.misses += 1
        self._count("answers.misses")
        return None

    def put(self, root_name: str, query_vec: Any, result: "ComputeResult") -> None:
        self._entries[self._next_id] = (root_name, query_vec, result)
        self._next_id += 1
        self.stores += 1
        self._count("answers.stores")
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("answers.evictions")

    def clear(self) -> None:
        self.clears += 1
        self.cleared_entries += len(self._entries)
        self._count("answers.clears")
        self._count("answers.cleared_entries", len(self._entries))
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "clears": self.clears,
            "cleared_entries": self.cleared_entries,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)


class AnalyticsRuntime:
    """One user-facing runtime instance (paper's envisioned system)."""

    def __init__(
        self,
        llm: SimulatedLLM | None = None,
        registry: IntentRegistry | None = None,
        seed: int = 0,
        policy: OptimizationPolicy | None = None,
        sample_size: int = 16,
        parallelism: int = 1,
        champion_model: str = DEFAULT_MODEL,
        reuse_contexts: bool = False,
        context_threshold: float = ContextManager.DEFAULT_THRESHOLD,
        fault_config: FaultConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        on_failure: str = "skip",
        fallback_model: str | None = None,
        pipeline: bool = True,
        batch_size: int | None = None,
        embed_batch_size: int | None = None,
        adaptive_parallelism: bool = True,
        tracer: Any = None,
        metrics: Any = None,
        answer_cache_size: int = 128,
        stats_store: "StatisticsStore | None" = None,
        replan: bool = False,
        replan_threshold: float = 1.5,
        shards: int = 1,
        partitioner: str = "hash",
    ) -> None:
        if llm is None:
            self.llm = SimulatedLLM(
                oracle=SemanticOracle(registry or IntentRegistry()),
                seed=seed,
                faults=FaultInjector(fault_config, seed=seed) if fault_config else None,
                retry=retry_policy,
                tracer=tracer,
                metrics=metrics,
            )
        else:
            self.llm = llm
            _wire_explicit_llm(llm, fault_config, retry_policy, tracer, metrics)
        self.seed = seed
        self.on_failure = on_failure
        self.fallback_model = fallback_model
        self.pipeline = pipeline
        self.batch_size = batch_size
        self.embed_batch_size = embed_batch_size
        self.adaptive_parallelism = adaptive_parallelism
        self.policy = policy or Balanced(quality_floor=0.95)
        self.sample_size = sample_size
        self.parallelism = parallelism
        self.champion_model = champion_model
        self.reuse_contexts = reuse_contexts
        self.context_manager = ContextManager(self.llm, threshold=context_threshold)
        #: Runtime-wide sub-plan materialization store.  Semantic programs
        #: launched by compute/search agents share it (when
        #: ``reuse_contexts`` is on), so fingerprint-matched plan prefixes
        #: replay across queries; ContextManager.invalidate cascades into it.
        self.materialization_store = MaterializationStore()
        self.context_manager.materialization_store = self.materialization_store
        #: Runtime-wide learned-statistics store: every finished semantic
        #: program feeds per-operator priors into it, and later programs'
        #: estimates (and, with ``replan=True``, mid-query re-planning)
        #: consult them.  Pass an existing store to share priors across
        #: runtimes or warm from a saved JSON file.
        self.stats_store = stats_store if stats_store is not None else StatisticsStore()
        self.replan = replan
        self.replan_threshold = replan_threshold
        #: Simulated scale-out workers for semantic programs (1 = the
        #: unsharded engine; see :mod:`repro.sem.shard`).
        self.shards = shards
        self.partitioner = partitioner
        self.db = Database()
        #: Execution result of the most recent optimized program (debugging).
        self.last_program_result = None
        #: Whole-query answer cache (LRU-bounded; see :class:`AnswerCache`).
        self.answers = AnswerCache(max_entries=answer_cache_size)
        if self.llm.metrics.enabled:
            self.answers.metrics = self.llm.metrics
            self.stats_store.metrics = self.llm.metrics

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_bundle(cls, bundle: DatasetBundle, **kwargs: Any) -> "AnalyticsRuntime":
        """Runtime whose oracle understands ``bundle``'s intents."""
        return cls(registry=bundle.registry, **kwargs)

    def make_context(
        self,
        bundle_or_records: DatasetBundle | Sequence[DataRecord],
        schema: Schema | None = None,
        desc: str | None = None,
        name: str | None = None,
        build_index: bool = False,
    ) -> Context:
        """Create a Context from a dataset bundle or a record list."""
        if isinstance(bundle_or_records, DatasetBundle):
            bundle = bundle_or_records
            context = Context(
                records=bundle.records(),
                schema=bundle.schema,
                desc=desc or bundle.description,
                name=name or bundle.name,
            )
        else:
            if schema is None or desc is None:
                raise ValueError("records-based contexts require schema and desc")
            context = Context(
                records=list(bundle_or_records), schema=schema, desc=desc, name=name
            )
        if build_index:
            context.index(llm=self.llm)
        return context

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def compute(self, context: Context, instruction: str, **kwargs: Any) -> ComputeResult:
        return compute(context, instruction, self, **kwargs)

    def search(self, context: Context, instruction: str, **kwargs: Any) -> SearchResult:
        return search(context, instruction, self, **kwargs)

    def answer(
        self,
        context: Context,
        instruction: str,
        similarity_floor: float = 0.92,
        **kwargs: Any,
    ) -> ComputeResult:
        """Compute with whole-query answer caching.

        If a near-identical instruction (embedding similarity >=
        ``similarity_floor``) was already answered against the same base
        Context, the cached result is returned at zero marginal LLM cost —
        the coarsest form of the paper's reuse-past-work vision.  Answers
        live in an LRU-bounded :class:`AnswerCache` and are evicted by
        capacity pressure, :meth:`clear_answers`, or when the base Context
        is invalidated in the ContextManager.
        """
        import dataclasses

        root_name = context.lineage()[-1].name
        query_vec = self.llm.embed(instruction, tag="answer-cache")
        cached = self.answers.lookup(root_name, query_vec, similarity_floor)
        if cached is not None:
            return dataclasses.replace(cached, reused=True, cost_usd=0.0, time_s=0.0)

        result = compute(context, instruction, self, **kwargs)
        self.answers.put(root_name, query_vec, result)
        return result

    def clear_answers(self) -> None:
        self.answers.clear()

    # ------------------------------------------------------------------
    # Optimizer configuration for semantic programs
    # ------------------------------------------------------------------

    def program_config(self, tag: str = "program") -> QueryProcessorConfig:
        kwargs = {}
        if self.embed_batch_size is not None:
            kwargs["embed_batch_size"] = self.embed_batch_size
        if self.reuse_contexts:
            kwargs["materialization_store"] = self.materialization_store
        return QueryProcessorConfig(
            stats_store=self.stats_store,
            replan=self.replan,
            replan_threshold=self.replan_threshold,
            llm=self.llm,
            policy=self.policy,
            sample_size=self.sample_size,
            champion_model=self.champion_model,
            parallelism=self.parallelism,
            seed=self.seed,
            tag=tag,
            on_failure=self.on_failure,
            fallback_model=self.fallback_model,
            pipeline=self.pipeline,
            batch_size=self.batch_size,
            adaptive_parallelism=self.adaptive_parallelism,
            shards=self.shards,
            partitioner=self.partitioner,
            **kwargs,
        )

    def cheapest_model(self) -> str:
        return completion_models_by_cost()[0].name

    # ------------------------------------------------------------------
    # SQL materialization
    # ------------------------------------------------------------------

    def materialize_rows(
        self, table_name: str, rows: list[dict], replace: bool = True
    ):
        """Materialize dictionaries into a SQL table for future queries."""
        return self.db.create_table_from_rows(table_name, rows, replace=replace)

    def materialize_records(
        self,
        table_name: str,
        records: Sequence[DataRecord],
        fields: Sequence[str] | None = None,
        replace: bool = True,
    ):
        """Materialize records (optionally projected) into a SQL table."""
        rows = []
        for record in records:
            if fields is None:
                rows.append(dict(record.fields))
            else:
                rows.append({name: record.get(name) for name in fields})
        return self.db.create_table_from_rows(table_name, rows, replace=replace)

    def sql(self, query: str) -> ResultSet:
        """Run SQL against materialized tables."""
        return self.db.execute(query)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def usage(self) -> Usage:
        return self.llm.tracker.total()

    def usage_report(self) -> str:
        """Render a spend breakdown (per model, per pipeline stage)."""
        return self.llm.tracker.render_report(
            title=f"LLM usage (simulated) — elapsed {self.elapsed_s:.1f}s"
        )

    @property
    def tracer(self) -> Any:
        """The span tracer the LLM substrate (and everything above) uses."""
        return self.llm.tracer

    @property
    def metrics(self) -> Any:
        """The runtime-wide metrics registry."""
        return self.llm.metrics

    def metrics_report(self) -> str:
        """Render the counters/histograms collected so far."""
        return self.llm.metrics.render(title="RUNTIME METRICS")

    @property
    def elapsed_s(self) -> float:
        return self.llm.clock.elapsed

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serving(self, **kwargs: Any) -> Any:
        """A multi-tenant :class:`~repro.serve.ServingRuntime` over this runtime.

        Sessions share this runtime's LLM substrate, generation cache, and
        materialization store; see :mod:`repro.serve` for admission control
        and cross-query batching semantics.
        """
        from repro.serve import ServingRuntime

        return ServingRuntime(self, **kwargs)

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------

    def standing(self, **kwargs: Any) -> Any:
        """A :class:`~repro.sem.streaming.StandingQueryManager` on this runtime.

        Standing queries registered through it share this runtime's clock,
        tracer, metrics, materialization store (delta reuse across ticks),
        statistics store (governor estimates + version-aware prior decay),
        and context manager (update-event invalidation cascade).
        """
        from repro.sem.streaming import StandingQueryManager

        kwargs.setdefault("clock", self.llm.clock)
        kwargs.setdefault("tracer", self.llm.tracer)
        kwargs.setdefault("metrics", self.llm.metrics)
        kwargs.setdefault("store", self.materialization_store)
        kwargs.setdefault("stats_store", self.stats_store)
        kwargs.setdefault("context_manager", self.context_manager)
        return StandingQueryManager(**kwargs)


def _wire_explicit_llm(
    llm: SimulatedLLM,
    fault_config: FaultConfig | None,
    retry_policy: RetryPolicy | None,
    tracer: Any,
    metrics: Any,
) -> None:
    """Wire constructor kwargs onto an explicitly provided LLM substrate.

    Historically ``AnalyticsRuntime(llm=..., tracer=...)`` silently dropped
    ``fault_config`` / ``retry_policy`` / ``tracer`` / ``metrics``.  Each is
    now applied to the client when the client has nothing configured there;
    a *genuine conflict* — the client already carries a different value —
    raises ``ValueError`` instead of guessing which one the caller meant.
    """
    if fault_config is not None:
        if llm.faults is None:
            llm.faults = FaultInjector(fault_config, seed=llm.seed)
            if llm.metrics.enabled:
                llm.faults.metrics = llm.metrics
        elif llm.faults.config != fault_config:
            raise ValueError(
                "conflicting fault configuration: the provided llm already "
                "carries a different FaultConfig; configure one or the other"
            )
    if retry_policy is not None and llm.retry != retry_policy:
        if llm.retry == RetryPolicy():
            llm.retry = retry_policy
        else:
            raise ValueError(
                "conflicting retry policy: the provided llm already carries "
                "a non-default RetryPolicy; configure one or the other"
            )
    if tracer is not None and tracer is not llm.tracer:
        if llm.tracer.enabled:
            raise ValueError(
                "conflicting tracer: the provided llm already carries an "
                "enabled tracer; configure one or the other"
            )
        llm.tracer = tracer
        if tracer.enabled and tracer.clock is None:
            tracer.clock = llm.clock
    if metrics is not None and metrics is not llm.metrics:
        if llm.metrics.enabled:
            raise ValueError(
                "conflicting metrics registry: the provided llm already "
                "carries an enabled registry; configure one or the other"
            )
        llm.metrics = metrics
        if metrics.enabled:
            llm.cache.metrics = metrics
            if llm.faults is not None:
                llm.faults.metrics = metrics
