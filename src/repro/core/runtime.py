"""The AnalyticsRuntime facade.

Wires together everything a user needs for AI-driven analytics over a data
lake: the (simulated) LLM service, Contexts, the compute/search operators,
the ContextManager, the semantic-operator optimizer configuration, and the
SQL engine for structured materialization.

Typical use::

    runtime = AnalyticsRuntime.for_bundle(bundle, seed=7)
    ctx = runtime.make_context(bundle)
    found = runtime.search(ctx, "information on identity thefts")
    result = runtime.compute(found.output_context, QUERY_RATIO)
    runtime.materialize_rows("answers", [{"ratio": result.answer["ratio"]}])
    runtime.sql("SELECT * FROM answers")
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.context import Context
from repro.core.context_manager import ContextManager
from repro.core.operators import ComputeResult, SearchResult, compute, search
from repro.data.datasets.base import DatasetBundle
from repro.data.records import DataRecord
from repro.data.schemas import Schema
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.models import DEFAULT_MODEL, completion_models_by_cost
from repro.llm.oracle import IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.llm.usage import Usage
from repro.sem.config import QueryProcessorConfig
from repro.sem.materialize import MaterializationStore
from repro.sem.optimizer.policies import Balanced, OptimizationPolicy
from repro.sql.database import Database
from repro.sql.executor import ResultSet


class AnalyticsRuntime:
    """One user-facing runtime instance (paper's envisioned system)."""

    def __init__(
        self,
        llm: SimulatedLLM | None = None,
        registry: IntentRegistry | None = None,
        seed: int = 0,
        policy: OptimizationPolicy | None = None,
        sample_size: int = 16,
        parallelism: int = 1,
        champion_model: str = DEFAULT_MODEL,
        reuse_contexts: bool = False,
        context_threshold: float = ContextManager.DEFAULT_THRESHOLD,
        fault_config: FaultConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        on_failure: str = "skip",
        fallback_model: str | None = None,
        pipeline: bool = True,
        batch_size: int | None = None,
        embed_batch_size: int | None = None,
        adaptive_parallelism: bool = True,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.llm = llm or SimulatedLLM(
            oracle=SemanticOracle(registry or IntentRegistry()),
            seed=seed,
            faults=FaultInjector(fault_config, seed=seed) if fault_config else None,
            retry=retry_policy,
            tracer=tracer,
            metrics=metrics,
        )
        self.seed = seed
        self.on_failure = on_failure
        self.fallback_model = fallback_model
        self.pipeline = pipeline
        self.batch_size = batch_size
        self.embed_batch_size = embed_batch_size
        self.adaptive_parallelism = adaptive_parallelism
        self.policy = policy or Balanced(quality_floor=0.95)
        self.sample_size = sample_size
        self.parallelism = parallelism
        self.champion_model = champion_model
        self.reuse_contexts = reuse_contexts
        self.context_manager = ContextManager(self.llm, threshold=context_threshold)
        #: Runtime-wide sub-plan materialization store.  Semantic programs
        #: launched by compute/search agents share it (when
        #: ``reuse_contexts`` is on), so fingerprint-matched plan prefixes
        #: replay across queries; ContextManager.invalidate cascades into it.
        self.materialization_store = MaterializationStore()
        self.context_manager.materialization_store = self.materialization_store
        self.db = Database()
        #: Execution result of the most recent optimized program (debugging).
        self.last_program_result = None
        #: Whole-query answer cache: (root context name, embedding, result).
        self._answers: list[tuple[str, Any, ComputeResult]] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_bundle(cls, bundle: DatasetBundle, **kwargs: Any) -> "AnalyticsRuntime":
        """Runtime whose oracle understands ``bundle``'s intents."""
        return cls(registry=bundle.registry, **kwargs)

    def make_context(
        self,
        bundle_or_records: DatasetBundle | Sequence[DataRecord],
        schema: Schema | None = None,
        desc: str | None = None,
        name: str | None = None,
        build_index: bool = False,
    ) -> Context:
        """Create a Context from a dataset bundle or a record list."""
        if isinstance(bundle_or_records, DatasetBundle):
            bundle = bundle_or_records
            context = Context(
                records=bundle.records(),
                schema=bundle.schema,
                desc=desc or bundle.description,
                name=name or bundle.name,
            )
        else:
            if schema is None or desc is None:
                raise ValueError("records-based contexts require schema and desc")
            context = Context(
                records=list(bundle_or_records), schema=schema, desc=desc, name=name
            )
        if build_index:
            context.index(llm=self.llm)
        return context

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def compute(self, context: Context, instruction: str, **kwargs: Any) -> ComputeResult:
        return compute(context, instruction, self, **kwargs)

    def search(self, context: Context, instruction: str, **kwargs: Any) -> SearchResult:
        return search(context, instruction, self, **kwargs)

    def answer(
        self,
        context: Context,
        instruction: str,
        similarity_floor: float = 0.92,
        **kwargs: Any,
    ) -> ComputeResult:
        """Compute with whole-query answer caching.

        If a near-identical instruction (embedding similarity >=
        ``similarity_floor``) was already answered against the same base
        Context, the cached result is returned at zero marginal LLM cost —
        the coarsest form of the paper's reuse-past-work vision.  Answers
        are evicted by :meth:`clear_answers` or when the base Context is
        invalidated in the ContextManager.
        """
        import dataclasses

        root_name = context.lineage()[-1].name
        query_vec = self.llm.embed(instruction, tag="answer-cache")
        from repro.llm.embeddings import cosine_similarity

        for cached_root, cached_vec, cached_result in self._answers:
            if cached_root != root_name:
                continue
            if cosine_similarity(query_vec, cached_vec) >= similarity_floor:
                return dataclasses.replace(cached_result, reused=True, cost_usd=0.0, time_s=0.0)

        result = compute(context, instruction, self, **kwargs)
        self._answers.append((root_name, query_vec, result))
        return result

    def clear_answers(self) -> None:
        self._answers.clear()

    # ------------------------------------------------------------------
    # Optimizer configuration for semantic programs
    # ------------------------------------------------------------------

    def program_config(self, tag: str = "program") -> QueryProcessorConfig:
        kwargs = {}
        if self.embed_batch_size is not None:
            kwargs["embed_batch_size"] = self.embed_batch_size
        if self.reuse_contexts:
            kwargs["materialization_store"] = self.materialization_store
        return QueryProcessorConfig(
            llm=self.llm,
            policy=self.policy,
            sample_size=self.sample_size,
            champion_model=self.champion_model,
            parallelism=self.parallelism,
            seed=self.seed,
            tag=tag,
            on_failure=self.on_failure,
            fallback_model=self.fallback_model,
            pipeline=self.pipeline,
            batch_size=self.batch_size,
            adaptive_parallelism=self.adaptive_parallelism,
            **kwargs,
        )

    def cheapest_model(self) -> str:
        return completion_models_by_cost()[0].name

    # ------------------------------------------------------------------
    # SQL materialization
    # ------------------------------------------------------------------

    def materialize_rows(
        self, table_name: str, rows: list[dict], replace: bool = True
    ):
        """Materialize dictionaries into a SQL table for future queries."""
        return self.db.create_table_from_rows(table_name, rows, replace=replace)

    def materialize_records(
        self,
        table_name: str,
        records: Sequence[DataRecord],
        fields: Sequence[str] | None = None,
        replace: bool = True,
    ):
        """Materialize records (optionally projected) into a SQL table."""
        rows = []
        for record in records:
            if fields is None:
                rows.append(dict(record.fields))
            else:
                rows.append({name: record.get(name) for name in fields})
        return self.db.create_table_from_rows(table_name, rows, replace=replace)

    def sql(self, query: str) -> ResultSet:
        """Run SQL against materialized tables."""
        return self.db.execute(query)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def usage(self) -> Usage:
        return self.llm.tracker.total()

    def usage_report(self) -> str:
        """Render a spend breakdown (per model, per pipeline stage)."""
        return self.llm.tracker.render_report(
            title=f"LLM usage (simulated) — elapsed {self.elapsed_s:.1f}s"
        )

    @property
    def tracer(self) -> Any:
        """The span tracer the LLM substrate (and everything above) uses."""
        return self.llm.tracer

    @property
    def metrics(self) -> Any:
        """The runtime-wide metrics registry."""
        return self.llm.metrics

    def metrics_report(self) -> str:
        """Render the counters/histograms collected so far."""
        return self.llm.metrics.render(title="RUNTIME METRICS")

    @property
    def elapsed_s(self) -> float:
        return self.llm.clock.elapsed
