"""Logical optimizations for search/compute operators (paper Section 3).

The paper sketches three logical optimizations and marks them future work;
we implement working versions of each:

- **Splitting** (DocETL-style): an over-complex compute/search directive is
  decomposed into smaller sequential operations.  An (simulated) LLM judge
  decides *whether* to split; deterministic sentence/conjunction analysis
  decides *where*.
- **Merging**: compute/search instructions that are near-duplicates of one
  another are grouped, executed once per group, and the result shared.
- **Dynamic search insertion**: when a compute operator's answer fails
  validation, the optimizer inserts a logical ``search`` before it and
  retries the compute against the enriched Context.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.agent_policies import DescGuidedComputePolicy
from repro.core.context import Context
from repro.core.operators import ComputeResult
from repro.llm.models import DEFAULT_MODEL
from repro.utils.text import jaccard_similarity

if TYPE_CHECKING:
    from repro.core.runtime import AnalyticsRuntime

#: Markers that separate sub-directives inside one instruction.
_SEQUENCE_MARKERS = ("; then ", ". then ", " and then ", "; ")

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z])")


def should_split(instruction: str, runtime: "AnalyticsRuntime | None" = None) -> bool:
    """Judge whether ``instruction`` should be decomposed.

    When a runtime is supplied, a short LLM-judge call is charged (as
    DocETL pays for its rewrite judges); the decision itself is the
    deterministic part of the judge: multiple sentences or sequence
    markers mean the directive bundles several operations.
    """
    if runtime is not None:
        runtime.llm.complete(
            "Decide whether this analytics directive should be split into "
            f"smaller operations: {instruction}",
            model=DEFAULT_MODEL,
            max_output_tokens=8,
            tag="rewrite:judge",
            expected_output="yes" if _split_points(instruction) > 0 else "no",
        )
    return _split_points(instruction) > 0


def _split_points(instruction: str) -> int:
    lowered = instruction.lower()
    marker_hits = sum(lowered.count(marker) for marker in _SEQUENCE_MARKERS)
    sentences = [s for s in _SENTENCE_RE.split(instruction.strip()) if s.strip()]
    return marker_hits + max(0, len(sentences) - 1)


def split_instruction(instruction: str) -> list[str]:
    """Split a compound instruction into sequential sub-instructions."""
    pieces = [instruction.strip()]
    for marker in _SEQUENCE_MARKERS:
        next_pieces: list[str] = []
        for piece in pieces:
            next_pieces.extend(
                part.strip() for part in re.split(re.escape(marker), piece, flags=re.IGNORECASE)
            )
        pieces = next_pieces
    final: list[str] = []
    for piece in pieces:
        final.extend(s.strip() for s in _SENTENCE_RE.split(piece) if s.strip())
    return [piece if piece.endswith(".") else piece + "." for piece in final if piece]


@dataclass
class InstructionGroup:
    """A merged group of near-duplicate instructions."""

    representative: str
    member_indexes: list[int] = field(default_factory=list)


def merge_similar_instructions(
    instructions: Sequence[str], threshold: float = 0.7
) -> list[InstructionGroup]:
    """Group instructions whose token Jaccard similarity clears ``threshold``.

    The first member of each group is its representative (executed once on
    behalf of the whole group).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    groups: list[InstructionGroup] = []
    for index, instruction in enumerate(instructions):
        placed = False
        for group in groups:
            if jaccard_similarity(group.representative, instruction) >= threshold:
                group.member_indexes.append(index)
                placed = True
                break
        if not placed:
            groups.append(InstructionGroup(instruction, [index]))
    return groups


def compute_batch(
    context: Context,
    instructions: Sequence[str],
    runtime: "AnalyticsRuntime",
    threshold: float = 0.7,
) -> list[ComputeResult]:
    """Execute a batch of compute instructions with merge optimization.

    Near-duplicate instructions run once; every member of a group receives
    the group's result.  Returns one result per input instruction, in
    order.
    """
    groups = merge_similar_instructions(instructions, threshold)
    results: list[ComputeResult | None] = [None] * len(instructions)
    for group in groups:
        outcome = runtime.compute(context, group.representative)
        for index in group.member_indexes:
            results[index] = outcome
    return [result for result in results if result is not None]


def compute_with_recovery(
    context: Context,
    instruction: str,
    runtime: "AnalyticsRuntime",
    is_valid: Callable[[Any], bool] | None = None,
) -> tuple[ComputeResult, bool]:
    """Compute with dynamic search insertion on failure (paper §3).

    Runs the compute operator; if its answer fails ``is_valid`` (default:
    answer is not None), a logical ``search`` is inserted to enrich the
    Context and the compute is retried with a description-guided policy
    against the enriched Context.  Returns ``(result, recovered)`` where
    ``recovered`` says whether the retry path ran.
    """
    validator = is_valid or (lambda answer: answer is not None)
    result = runtime.compute(context, instruction)
    if validator(result.answer):
        return result, False

    enriched = runtime.search(context, instruction).output_context
    retry = runtime.compute(
        enriched,
        instruction,
        policy=DescGuidedComputePolicy(context_desc=enriched.desc),
    )
    retry.cost_usd += result.cost_usd
    retry.time_s += result.time_s
    return retry, True
