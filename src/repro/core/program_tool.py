"""The optimized-semantic-program tool, plus standard Context tools.

``run_semantic_program`` is the tool that makes the paper's compute/search
operators more than plain CodeAgents: it compiles a natural-language
instruction into a semantic-operator program over the Context, hands the
plan to the cost-based optimizer, executes it, registers the materialized
output as a new Context, and returns plain dictionaries the agent's Python
can manipulate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agents.tools import Tool, ToolRegistry
from repro.core.context import Context
from repro.core.synthesis import synthesize_program
from repro.data.schemas import Field
from repro.errors import ToolError
from repro.sem.dataset import Dataset

if TYPE_CHECKING:
    from repro.core.runtime import AnalyticsRuntime


def default_key_field(context: Context) -> str:
    """Field used to identify records in tool results ('filename' if present)."""
    names = context.schema.field_names()
    if "filename" in names:
        return "filename"
    return names[0] if names else "uid"


def build_program_tool(
    context: Context, runtime: "AnalyticsRuntime", key_field: str | None = None
) -> Tool:
    """The agent tool that writes & executes optimized semantic programs."""
    key = key_field or default_key_field(context)

    def run_semantic_program(instruction: str) -> list[dict]:
        """Execute a natural-language instruction as an optimized semantic-operator program."""
        spec = synthesize_program(instruction)
        if not spec.filters and not spec.extracts:
            raise ToolError(f"could not synthesize a program from {instruction!r}")

        base: Context = context
        reuse_note = ""
        if runtime.reuse_contexts:
            entry, score = runtime.context_manager.find_similar(instruction)
            if entry is not None and len(entry.context) > 0:
                # Physical optimization (paper §3): narrow the input to a
                # previously materialized Context with a similar purpose.
                base = entry.context
                reuse_note = (
                    f" (reused context {entry.context.name} at similarity {score:.2f})"
                )

        dataset: Dataset = Dataset.from_source(base.source())
        if spec.retrieve_query:
            dataset = dataset.retrieve(spec.retrieve_query, spec.retrieve_k)
        for filter_instruction in spec.filters:
            dataset = dataset.sem_filter(filter_instruction)
        if spec.extracts:
            dataset = dataset.sem_map(
                [
                    (Field(name, object, instr), instr)
                    for name, instr in spec.extracts
                ]
            )

        result = dataset.run(runtime.program_config(tag="program"))
        derived = context.derived(
            description=(
                f"Materialized by semantic program for: {instruction}"
                f"{reuse_note}. {len(result.records)} matching record(s)."
            ),
            records=result.records,
        )
        runtime.context_manager.register(derived, instruction)
        runtime.last_program_result = result

        output = []
        for record in result.records:
            row = {key: record.get(key)}
            for name, _ in spec.extracts:
                row[name] = record.get(name)
            output.append(row)
        return output

    return Tool(
        "run_semantic_program",
        "Execute a natural-language instruction as an optimized "
        "semantic-operator program over the context; returns matching "
        "records as dictionaries.",
        run_semantic_program,
    )


def build_context_tools(
    context: Context, runtime: "AnalyticsRuntime", key_field: str | None = None
) -> ToolRegistry:
    """Standard tool set the compute/search agents receive.

    Includes the Context's access methods (iteration keys, point reads,
    vector search), any custom tools registered on the Context, and the
    optimized-program tool.
    """
    key = key_field or default_key_field(context)
    by_key = {record.get(key): record for record in context.records()}

    def list_items() -> list[str]:
        """List the keys of all items in the context."""
        return sorted(str(value) for value in by_key)

    def get_item(item_key: str) -> str:
        """Read one item's full text by key."""
        record = by_key.get(item_key)
        if record is None:
            raise ToolError(f"no item with key {item_key!r}")
        return record.as_text()

    def vector_search(query: str, k: int = 5) -> list[dict]:
        """Vector-search the context; returns [{key, score}] for the top k."""
        hits = context.vector_search(query, k, llm=runtime.llm)
        return [
            {"key": record.get(key), "score": round(score, 4)}
            for record, score in hits
        ]

    registry = ToolRegistry(
        [
            Tool("list_items", "List the keys of all items in the context.", list_items),
            Tool("get_item", "Read one item's full text by key.", get_item),
            Tool(
                "vector_search",
                "Vector-search the context; returns [{key, score}] for the top k.",
                vector_search,
            ),
        ]
    )
    for name in context.tools.names():
        registry.add(context.tools.get(name))
    registry.add(build_program_tool(context, runtime, key_field=key))
    return registry
