"""SQL tools for agents: parse structured files once, query them forever.

The paper's vision (§1, §2.4) wants the runtime to "leverage structured
information, possibly generated from unstructured data, which it can then
query using SQL."  These tools give compute/search agents that capability:

- ``materialize_table(filename, table)`` parses a CSV file (or the tables
  of an HTML report) from the Context into the runtime's SQL database;
- ``sql(query)`` runs SQL over materialized tables, costing zero LLM
  tokens.

Registered on a Context via :func:`add_sql_tools`, they appear in the
agents' sandboxes alongside the standard Context tools.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.agents.tools import Tool
from repro.core.context import Context
from repro.data.tabular import parse_html_tables
from repro.errors import ToolError

if TYPE_CHECKING:
    from repro.core.runtime import AnalyticsRuntime


def _sanitize_identifier(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name.strip())
    if not cleaned or cleaned[0].isdigit():
        cleaned = "c_" + cleaned
    return cleaned.lower()


def _coerce_cell(value: str):
    """Best-effort typing of a textual cell (ints, floats, else text)."""
    text = value.strip().replace(",", "")
    if text.startswith("$"):
        text = text[1:]
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if re.fullmatch(r"-?\d*\.\d+", text):
        return float(text)
    return value.strip()


def rows_from_file(contents: str, fmt: str) -> list[dict]:
    """Parse a file's contents into typed row dictionaries.

    CSV files parse directly; HTML files contribute their first table
    (header row + data rows).  Column names are sanitized to SQL
    identifiers; duplicate names get positional suffixes.
    """
    if fmt == "csv":
        # csv.reader (not DictReader) so duplicate headers survive intact.
        import csv as _csv
        import io as _io

        parsed = list(_csv.reader(_io.StringIO(contents)))
        if len(parsed) < 2:
            raise ToolError("the CSV file has no data rows")
        headers = parsed[0]
        cells = parsed[1:]
    else:
        tables = parse_html_tables(contents)
        if not tables or len(tables[0]) < 2:
            raise ToolError("the file contains no parseable table")
        headers = tables[0][0]
        cells = tables[0][1:]

    names: list[str] = []
    for position, header in enumerate(headers):
        name = _sanitize_identifier(str(header))
        if name in names:
            name = f"{name}_{position}"
        names.append(name)

    rows = []
    for row in cells:
        rows.append(
            {
                name: _coerce_cell(str(value)) if value is not None else None
                for name, value in zip(names, row)
            }
        )
    return rows


def add_sql_tools(context: Context, runtime: "AnalyticsRuntime") -> Context:
    """Register ``materialize_table`` and ``sql`` tools on ``context``."""
    by_filename = {
        record.get("filename"): record
        for record in context.records()
        if "filename" in record
    }

    def materialize_table(filename: str, table: str) -> str:
        """Parse a CSV/HTML file from the context into a SQL table."""
        record = by_filename.get(filename)
        if record is None:
            raise ToolError(f"no file named {filename!r} in the context")
        rows = rows_from_file(
            record.get("contents", ""), record.get("format", "csv")
        )
        runtime.db.create_table_from_rows(
            _sanitize_identifier(table), rows, replace=True
        )
        return (
            f"created table {_sanitize_identifier(table)} with {len(rows)} rows; "
            f"columns: {sorted(rows[0])}"
        )

    def sql(query: str) -> list[dict]:
        """Run a SQL query over previously materialized tables."""
        return runtime.db.execute(query).to_dicts()

    context.add_tool(
        Tool(
            "materialize_table",
            "Parse a CSV/HTML file from the context into a SQL table.",
            materialize_table,
        )
    )
    context.add_tool(
        Tool("sql", "Run a SQL query over previously materialized tables.", sql)
    )
    return context
