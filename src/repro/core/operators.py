"""The ``search`` and ``compute`` semantic operators (paper Section 2.3).

Both are *logical* operators over a Context, physically implemented with a
CodeAgent that holds the optimized-semantic-program tool.  The logical /
physical split is explicit: :func:`compile_operator` performs the physical
decision the paper describes (which model drives the operator's agent),
then the physical operator runs the agent episode.

Semantics (paper §2.3):

- ``compute`` seeks to generate a specific output (a value, a set of
  records);
- ``search`` tries to find information that *enriches the Context's
  description*; its output is a new Context whose ``desc`` contains a
  summary of the search execution trace.

Both register their materialized output Context with the runtime's
ContextManager so later queries can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.agents.codeagent import AgentResult, CodeAgent
from repro.agents.policies.base import AgentPolicy
from repro.core.agent_policies import ComputeAgentPolicy, SearchAgentPolicy
from repro.core.context import Context
from repro.core.program_tool import build_context_tools
from repro.data.records import DataRecord
from repro.sem.optimizer.policies import MinCost
from repro.utils.seeding import derive_seed
from repro.utils.text import snippet

if TYPE_CHECKING:
    from repro.core.runtime import AnalyticsRuntime


@dataclass(frozen=True)
class LogicalAgentOp:
    """Logical description of a compute/search operator invocation."""

    kind: str  # "compute" | "search"
    instruction: str
    context_name: str


@dataclass
class CompiledAgentOp:
    """Physical decision for one agent operator: which model plans it."""

    logical: LogicalAgentOp
    agent_model: str
    max_steps: int


@dataclass
class ComputeResult:
    """Output of one compute-operator execution."""

    answer: Any
    output_context: Context
    agent: AgentResult
    cost_usd: float = 0.0
    time_s: float = 0.0
    #: True when this result was served from the runtime's answer cache.
    reused: bool = False

    @property
    def records(self) -> list[DataRecord]:
        return self.output_context.records()


@dataclass
class SearchResult:
    """Output of one search-operator execution."""

    output_context: Context
    findings: dict = field(default_factory=dict)
    agent: AgentResult | None = None
    cost_usd: float = 0.0
    time_s: float = 0.0


def compile_operator(
    logical: LogicalAgentOp, runtime: "AnalyticsRuntime", max_steps: int
) -> CompiledAgentOp:
    """Choose the physical agent model for a logical compute/search op.

    This is the paper's §3 physical optimization hook: under a MinCost
    policy the agent itself runs on the cheapest tier; otherwise agents
    plan with the champion model (their per-step cost is small relative to
    the programs they launch).
    """
    model = runtime.champion_model
    if isinstance(runtime.policy, MinCost):
        model = runtime.cheapest_model()
    return CompiledAgentOp(logical=logical, agent_model=model, max_steps=max_steps)


def _run_agent_op(
    compiled: CompiledAgentOp,
    context: Context,
    runtime: "AnalyticsRuntime",
    policy: AgentPolicy,
) -> AgentResult:
    tools = build_context_tools(context, runtime)
    agent = CodeAgent(
        llm=runtime.llm,
        tools=tools,
        policy=policy,
        model=compiled.agent_model,
        max_steps=compiled.max_steps,
        name=compiled.logical.kind,
        seed=derive_seed(runtime.seed, compiled.logical.kind, compiled.logical.instruction),
    )
    return agent.run(compiled.logical.instruction, context_note=context.desc)


def _seed_context(
    context: Context, instruction: str, runtime: "AnalyticsRuntime"
) -> tuple[Context, str]:
    """Swap in a previously materialized Context for a near-miss instruction.

    When ``reuse_contexts`` is on, the ContextManager's similarity index is
    consulted before the agent episode starts; a cached Context materialized
    for a similar instruction, derived from the *same* base data (root
    lineage guard) and strictly narrower than the input, seeds the operator
    instead.  The agent then reads the already-filtered view rather than
    re-deriving it.  Returns ``(context, note)`` where the note documents
    the substitution in the output Context's description.
    """
    if not runtime.reuse_contexts:
        return context, ""
    entry, score = runtime.context_manager.find_similar(instruction)
    if entry is None or len(entry.context) == 0:
        return context, ""
    if entry.context.lineage()[-1].name != context.lineage()[-1].name:
        return context, ""  # different base data; not a view of this input
    if len(entry.context) >= len(context):
        return context, ""  # no narrowing: seeding would not save work
    note = f"\nSeeded from cached context {entry.context.name} (similarity {score:.2f})"
    return entry.context, note


def compute(
    context: Context,
    instruction: str,
    runtime: "AnalyticsRuntime",
    max_steps: int = 12,
    policy: AgentPolicy | None = None,
) -> ComputeResult:
    """Execute a compute operator: agent + optimized semantic programs."""
    context, seed_note = _seed_context(context, instruction, runtime)
    logical = LogicalAgentOp("compute", instruction, context.name)
    compiled = compile_operator(logical, runtime, max_steps)
    agent_result = _run_agent_op(compiled, context, runtime, policy or ComputeAgentPolicy())

    answer = agent_result.answer
    output_records = _records_from_answer(answer, context)
    output_context = context.derived(
        description=(
            f"{context.desc}{seed_note}\nComputed for: {instruction}\n"
            f"Result: {snippet(repr(answer), 300)}\n"
            f"Trace: {agent_result.trace.summary()}"
        ),
        records=output_records if output_records is not None else context.records(),
    )
    runtime.context_manager.register(output_context, instruction)
    return ComputeResult(
        answer=answer,
        output_context=output_context,
        agent=agent_result,
        cost_usd=agent_result.cost_usd,
        time_s=agent_result.time_s,
    )


def search(
    context: Context,
    instruction: str,
    runtime: "AnalyticsRuntime",
    max_steps: int = 8,
    policy: AgentPolicy | None = None,
) -> SearchResult:
    """Execute a search operator: enrich the Context's description."""
    context, seed_note = _seed_context(context, instruction, runtime)
    logical = LogicalAgentOp("search", instruction, context.name)
    compiled = compile_operator(logical, runtime, max_steps)
    agent_result = _run_agent_op(compiled, context, runtime, policy or SearchAgentPolicy())

    findings = agent_result.answer if isinstance(agent_result.answer, dict) else {}
    relevant_keys = findings.get("relevant_items") or []
    notes = findings.get("notes", "")
    output_context = context.derived(
        description=(
            f"{context.desc}{seed_note}\nSearch for: {instruction}\n"
            f"Relevant items: {', '.join(map(str, relevant_keys)) or '(none found)'}\n"
            f"Notes: {snippet(str(notes), 400)}"
        )
    )
    runtime.context_manager.register(output_context, instruction)
    return SearchResult(
        output_context=output_context,
        findings=findings,
        agent=agent_result,
        cost_usd=agent_result.cost_usd,
        time_s=agent_result.time_s,
    )


def _records_from_answer(answer: Any, context: Context) -> list[DataRecord] | None:
    """Map a record-set answer (list of dicts) back to Context records.

    Returns None when the answer is not a record set (e.g. a scalar), in
    which case the output Context keeps the input records.
    """
    if not isinstance(answer, list) or not answer:
        return None
    if not all(isinstance(item, dict) for item in answer):
        return None
    key_fields = [name for name in ("filename", "key", "uid") if name in answer[0]]
    if not key_fields:
        return None
    key_field = key_fields[0]
    wanted = {item.get(key_field) for item in answer}
    lookup_field = key_field if key_field != "key" else None
    matched: list[DataRecord] = []
    for record in context.records():
        candidates = (
            [record.get(lookup_field)] if lookup_field else list(record.fields.values())
        )
        if any(value in wanted for value in candidates):
            matched.append(record)
    return matched or None
