"""The Context abstraction (paper Section 2.2).

A Context is a :class:`~repro.sem.dataset.Dataset` over a concrete set of
records that additionally supports:

- **index access methods**: key-based point lookups and vector search, so
  agents can avoid full scans (the paper's fix for iterator semantics);
- **custom tools**: dataset-specific capabilities a programmer registers
  for agents to use;
- **a description** (``desc``): natural language describing the data,
  which agents read to decide access patterns and which the ContextManager
  embeds for reuse.

``search``/``compute`` produce *derived* Contexts whose descriptions are
enriched with (a summary of) the producing execution trace — the
materialized-view analog the paper builds on.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

import numpy as np

from repro.agents.tools import Tool, ToolRegistry
from repro.data.records import DataRecord
from repro.data.schemas import Schema
from repro.data.sources import MemorySource
from repro.errors import ContextError
from repro.llm.embeddings import top_k_similar
from repro.llm.simulated import SimulatedLLM
from repro.sem.dataset import Dataset
from repro.sem.logical import ScanOp

_CONTEXT_COUNTER = itertools.count()


class VectorIndex:
    """Embedding index over records (built lazily, cached per Context)."""

    def __init__(self, text_fields: Sequence[str] | None = None) -> None:
        self.text_fields = list(text_fields) if text_fields else None
        self._matrix: np.ndarray | None = None
        self._records: list[DataRecord] = []

    def text_of(self, record: DataRecord) -> str:
        if self.text_fields is None:
            return record.as_text()
        parts = [str(record.get(field, "")) for field in self.text_fields]
        return "\n".join(parts)

    def build(self, records: list[DataRecord], llm: SimulatedLLM, tag: str = "index") -> None:
        self._records = list(records)
        if not records:
            self._matrix = np.zeros((0, llm.embedding_model.dim), dtype=np.float32)
            return
        vectors = [llm.embed(self.text_of(record), tag=tag) for record in records]
        self._matrix = np.stack(vectors)

    @property
    def built(self) -> bool:
        return self._matrix is not None

    def search(self, query: str, k: int, llm: SimulatedLLM, tag: str = "index") -> list[tuple[DataRecord, float]]:
        if not self.built:
            raise ContextError("vector index has not been built")
        query_vec = llm.embed(query, tag=tag)
        hits = top_k_similar(query_vec, self._matrix, k)
        return [(self._records[index], score) for index, score in hits]


class KeyIndex:
    """Exact-match point-lookup index on one record field."""

    def __init__(self, key_field: str) -> None:
        self.key_field = key_field
        self._by_key: dict[Any, DataRecord] = {}

    def build(self, records: list[DataRecord]) -> None:
        self._by_key = {}
        for record in records:
            if self.key_field in record:
                self._by_key[record[self.key_field]] = record

    def lookup(self, key: Any) -> DataRecord | None:
        return self._by_key.get(key)

    def keys(self) -> list[Any]:
        return list(self._by_key)


class Context(Dataset):
    """A dataset with description, indexes, and tools (paper Fig. 2)."""

    def __init__(
        self,
        records: Sequence[DataRecord],
        schema: Schema,
        desc: str,
        name: str | None = None,
        tools: ToolRegistry | None = None,
        parent: "Context | None" = None,
    ) -> None:
        self.name = name or f"context-{next(_CONTEXT_COUNTER)}"
        self._records = list(records)
        self.schema = schema
        self.desc = desc
        self.tools = tools or ToolRegistry()
        self.parent = parent
        self._source = MemorySource(self._records, schema, source_id=self.name)
        self._vector_index: VectorIndex | None = None
        self._key_indexes: dict[str, KeyIndex] = {}
        super().__init__(ScanOp(child=None, source=self._source))

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def records(self) -> list[DataRecord]:  # type: ignore[override]
        """The materialized records of this Context (no execution needed)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def source(self) -> MemorySource:
        return self._source

    # ------------------------------------------------------------------
    # Index registration (the paper's ``index`` method)
    # ------------------------------------------------------------------

    def index(
        self,
        llm: SimulatedLLM | None = None,
        text_fields: Sequence[str] | None = None,
        key_field: str | None = None,
    ) -> "Context":
        """Register (and, if ``llm`` is given, build) indexes.

        ``text_fields`` configures a vector index over those fields (all
        fields when omitted); ``key_field`` additionally registers an exact
        point-lookup index.  Returns self for chaining.
        """
        self._vector_index = VectorIndex(text_fields)
        if llm is not None:
            self._vector_index.build(self._records, llm, tag=f"{self.name}:index")
        if key_field is not None:
            key_index = KeyIndex(key_field)
            key_index.build(self._records)
            self._key_indexes[key_field] = key_index
        return self

    @property
    def has_vector_index(self) -> bool:
        return self._vector_index is not None

    def vector_search(
        self, query: str, k: int, llm: SimulatedLLM
    ) -> list[tuple[DataRecord, float]]:
        """Top-k vector search (builds the index on first use)."""
        if self._vector_index is None:
            self._vector_index = VectorIndex()
        if not self._vector_index.built:
            self._vector_index.build(self._records, llm, tag=f"{self.name}:index")
        return self._vector_index.search(query, k, llm, tag=f"{self.name}:index")

    def lookup(self, key_field: str, key: Any) -> DataRecord | None:
        """Exact point lookup on a registered key index."""
        if key_field not in self._key_indexes:
            raise ContextError(
                f"no key index on field {key_field!r}; registered: "
                f"{sorted(self._key_indexes)}"
            )
        return self._key_indexes[key_field].lookup(key)

    # ------------------------------------------------------------------
    # Tools
    # ------------------------------------------------------------------

    def add_tool(self, tool: Tool) -> "Context":
        """Register a custom tool agents may use against this Context."""
        self.tools.add(tool)
        return self

    # ------------------------------------------------------------------
    # Derivation (materialized views)
    # ------------------------------------------------------------------

    def derived(
        self,
        description: str,
        records: Sequence[DataRecord] | None = None,
        name: str | None = None,
    ) -> "Context":
        """A child Context: same (or narrowed) data, enriched description."""
        child = Context(
            records=self._records if records is None else list(records),
            schema=self.schema,
            desc=description,
            name=name,
            tools=self.tools,
            parent=self,
        )
        return child

    def lineage(self) -> list["Context"]:
        """This Context and its ancestors, newest first."""
        chain: list[Context] = []
        node: Context | None = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def __repr__(self) -> str:
        return (
            f"Context({self.name!r}, records={len(self._records)}, "
            f"desc={self.desc[:60]!r})"
        )
