"""Generation cache for the simulated LLM service.

Mirrors the reuse-of-previous-results optimization the paper cites (SGLang
[30]): repeated identical requests hit the cache and incur neither cost nor
latency.  The semantic-operator executor relies on this when the optimizer's
sampling phase re-executes operators on already-seen records.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.utils.hashing import stable_digest


class GenerationCache:
    """A bounded LRU cache keyed by (model, request payload)."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Entries dropped from the LRU end because the cache was full.
        self.evictions = 0
        #: Puts that overwrote an existing key (previously silent).
        self.updates = 0
        #: Times :meth:`clear` ran, and entries it dropped.  Clearing is not
        #: eviction (no capacity pressure), so it gets its own counters.
        self.clears = 0
        self.cleared_entries = 0
        #: Window counters archived by ``clear(reset_stats=True)`` — the
        #: lifetime totals survive any number of clears.
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0, "updates": 0}
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when attached
        #: (by an observability-enabled ``SimulatedLLM``) the counters above
        #: are mirrored into the shared registry.
        self.metrics = None

    @staticmethod
    def key(model: str, *payload: Any) -> str:
        return stable_digest("gen-cache", model, *payload)

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; moves the entry to most-recently-used."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self.metrics is not None:
                self.metrics.counter("cache.hits").inc()
            return True, self._entries[key]
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.misses").inc()
        return False, None

    def put(self, key: str, value: Any) -> None:
        if key in self._entries:
            self.updates += 1
            if self.metrics is not None:
                self.metrics.counter("cache.updates").inc()
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.counter("cache.evictions").inc()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self, reset_stats: bool = True) -> None:
        """Drop all entries; pass ``reset_stats=False`` to keep the counters.

        Clearing entries does not count as eviction — stats resetting is an
        explicit choice, not a side effect.  Either way the window counters
        are archived into the lifetime totals (``reset_stats=True`` then
        zeroes the window), so accounting is never silently lost: the
        mirrored ``MetricsRegistry`` counters and :meth:`lifetime_stats`
        both survive any number of clears.
        """
        self.clears += 1
        self.cleared_entries += len(self._entries)
        if self.metrics is not None:
            self.metrics.counter("cache.clears").inc()
            self.metrics.counter("cache.cleared_entries").inc(len(self._entries))
        self._entries.clear()
        if reset_stats:
            for name in self._lifetime:
                self._lifetime[name] += getattr(self, name)
                setattr(self, name, 0)

    def lifetime_stats(self) -> dict:
        """Counters accumulated across clears (archived + current window)."""
        return {
            name: archived + getattr(self, name)
            for name, archived in self._lifetime.items()
        }

    def stats(self) -> dict:
        """Snapshot of the window counters plus lifetime totals."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "updates": self.updates,
            "clears": self.clears,
            "cleared_entries": self.cleared_entries,
            "lifetime": self.lifetime_stats(),
        }
