"""Ground-truth oracle for simulated semantic tasks.

The simulated LLM must *answer* natural-language tasks ("does this email
contain firsthand discussion of the Raptor deal?") without a real model.
The synthetic datasets therefore attach hidden **annotations** to each
record: a mapping from canonical *intent keys* to ground-truth values.
Dataset generators register their intents (keyword patterns + key) in an
:class:`IntentRegistry`; at query time the oracle resolves a free-form
instruction to the best-matching intent and reads the truth off the record.

The simulated LLM then corrupts the truth with model-tier-dependent noise —
the oracle itself is always right; models are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.utils.text import jaccard_similarity, tokenize

#: Annotation key prefix for per-intent difficulty scores in [0, 1].
DIFFICULTY_PREFIX = "_difficulty:"


@runtime_checkable
class AnnotatedRecord(Protocol):
    """Anything the oracle can judge: an id, annotations, and text."""

    @property
    def uid(self) -> str: ...

    @property
    def annotations(self) -> dict[str, Any]: ...

    def as_text(self) -> str: ...


@dataclass(frozen=True)
class Intent:
    """A canonical semantic task the datasets know the answer to."""

    key: str
    #: Keywords that signal this intent in a natural-language instruction.
    keywords: tuple[str, ...]
    description: str = ""

    def score(self, instruction_tokens: set[str]) -> float:
        """Fraction of this intent's keywords present in the instruction."""
        if not self.keywords:
            return 0.0
        matched = sum(1 for keyword in self.keywords if keyword in instruction_tokens)
        return matched / len(self.keywords)


class IntentRegistry:
    """Registry mapping natural-language instructions to intent keys."""

    #: Minimum keyword-match fraction for an intent to be considered resolved.
    RESOLVE_THRESHOLD = 0.6

    def __init__(self) -> None:
        self._intents: dict[str, Intent] = {}

    def register(self, key: str, keywords: Iterable[str], description: str = "") -> Intent:
        """Register (or overwrite) an intent under ``key``."""
        intent = Intent(
            key=key,
            keywords=tuple(keyword.lower() for keyword in keywords),
            description=description,
        )
        self._intents[key] = intent
        return intent

    def merge(self, other: "IntentRegistry") -> None:
        """Add all intents from ``other`` (later registrations win)."""
        self._intents.update(other._intents)

    def get(self, key: str) -> Intent | None:
        return self._intents.get(key)

    def resolve(self, instruction: str) -> Intent | None:
        """Return the best-matching intent for ``instruction``, if any.

        Scoring is keyword-match fraction; ties break toward intents with
        more keywords (more specific), then lexicographic key for stability.
        """
        tokens = set(tokenize(instruction))
        best: Intent | None = None
        best_rank: tuple[float, int, str] | None = None
        for intent in self._intents.values():
            score = intent.score(tokens)
            if score < self.RESOLVE_THRESHOLD:
                continue
            rank = (score, len(intent.keywords), intent.key)
            # Key sorts *descending* via comparison below; we want the
            # lexicographically smallest key on ties, so invert with min().
            if best_rank is None or (rank[0], rank[1]) > (best_rank[0], best_rank[1]) or (
                (rank[0], rank[1]) == (best_rank[0], best_rank[1]) and rank[2] < best_rank[2]
            ):
                best, best_rank = intent, rank
        return best

    def __len__(self) -> int:
        return len(self._intents)

    def keys(self) -> list[str]:
        return sorted(self._intents)


@dataclass
class JudgeResult:
    """Outcome of resolving a task against ground truth."""

    #: Ground-truth value, or None if the oracle could not resolve the task.
    truth: Any
    #: Resolved intent key ("" when unresolved).
    intent_key: str
    #: Difficulty of this (record, intent) pair in [0, 1].
    difficulty: float
    resolved: bool


class SemanticOracle:
    """Resolves natural-language tasks to ground truth on annotated records."""

    DEFAULT_DIFFICULTY = 0.5

    def __init__(self, registry: IntentRegistry | None = None) -> None:
        self.registry = registry or IntentRegistry()

    def judge_filter(self, instruction: str, record: AnnotatedRecord) -> JudgeResult:
        """Ground truth for "does ``record`` satisfy ``instruction``?"."""
        intent = self.registry.resolve(instruction)
        if intent is not None and intent.key in record.annotations:
            return JudgeResult(
                truth=bool(record.annotations[intent.key]),
                intent_key=intent.key,
                difficulty=self._difficulty(record, intent.key),
                resolved=True,
            )
        return self._heuristic_filter(instruction, record)

    def judge_join(
        self,
        instruction: str,
        left: AnnotatedRecord,
        right: AnnotatedRecord,
    ) -> JudgeResult:
        """Ground truth for "do ``left`` and ``right`` satisfy ``instruction``?".

        Equality-style joins ("the records discuss the same topic") resolve
        to an intent whose annotation holds a comparable value on both
        sides; truth is value equality.  When only one side carries the
        annotation the task is unresolvable and falls back to the lexical
        heuristic over the concatenated pair.
        """
        intent = self.registry.resolve(instruction)
        if (
            intent is not None
            and intent.key in left.annotations
            and intent.key in right.annotations
        ):
            return JudgeResult(
                truth=left.annotations[intent.key] == right.annotations[intent.key],
                intent_key=intent.key,
                difficulty=max(
                    self._difficulty(left, intent.key),
                    self._difficulty(right, intent.key),
                ),
                resolved=True,
            )
        merged_text = left.as_text() + "\n" + right.as_text()
        similarity = jaccard_similarity(instruction, merged_text)
        return JudgeResult(
            truth=similarity >= 0.08,
            intent_key="",
            difficulty=0.9,
            resolved=False,
        )

    def extract_value(self, instruction: str, record: AnnotatedRecord) -> JudgeResult:
        """Ground truth for "extract the value ``instruction`` asks for"."""
        intent = self.registry.resolve(instruction)
        if intent is not None and intent.key in record.annotations:
            return JudgeResult(
                truth=record.annotations[intent.key],
                intent_key=intent.key,
                difficulty=self._difficulty(record, intent.key),
                resolved=True,
            )
        return JudgeResult(
            truth=None,
            intent_key="",
            difficulty=self.DEFAULT_DIFFICULTY,
            resolved=False,
        )

    def _difficulty(self, record: AnnotatedRecord, intent_key: str) -> float:
        raw = record.annotations.get(DIFFICULTY_PREFIX + intent_key, self.DEFAULT_DIFFICULTY)
        return min(1.0, max(0.0, float(raw)))

    def _heuristic_filter(self, instruction: str, record: AnnotatedRecord) -> JudgeResult:
        """Fallback when no intent matches: lexical-overlap guess.

        Mirrors an LLM "doing its best" on an out-of-distribution predicate.
        The guess is marked unresolved so callers know quality is degraded.
        """
        similarity = jaccard_similarity(instruction, record.as_text())
        return JudgeResult(
            truth=similarity >= 0.08,
            intent_key="",
            difficulty=0.9,
            resolved=False,
        )
