"""Deterministic simulated LLM service.

See the package docstring for the simulation contract.  Three mechanisms
matter for fidelity to the paper:

- **Noise is a property of the input, not the call**: whether a model errs
  on a (task, record) pair is decided by a stable hash of
  ``(trial seed, model, intent, record)``.  Re-asking the same model the same
  question yields the same answer (consistent with temperature-0 APIs), and
  the multi-armed-bandit sampler can therefore measure stable per-operator
  quality.
- **Difficulty scaling**: each record carries a per-intent difficulty; the
  effective error probability is ``base_rate * 2 * difficulty^2`` plus an
  additive ambiguity boost above difficulty 0.7, so hard records are where
  cheap models fail first — exactly the trade-off a cost-based optimizer
  must navigate — while genuinely ambiguous records trip up even strong
  models some of the time.
- **Parallel sections**: callers batching concurrent calls wrap them in
  :meth:`SimulatedLLM.parallel`, which charges the virtual clock the
  *makespan* of the batch rather than the sum.  The pipelined executor
  instead wraps each (batch, stage) cell in :meth:`SimulatedLLM.measure`,
  which captures the cell's duration without advancing the clock so the
  engine can charge the cross-operator critical path
  (:class:`repro.utils.clock.PipelineSchedule`) instead of the stage sum.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

import numpy as np

from repro.errors import CircuitOpenError
from repro.errors import TimeoutError as LLMTimeoutError
from repro.errors import RateLimitError, TransientLLMError
from repro.llm.cache import GenerationCache
from repro.llm.client import CompletionResult, ExtractionResult, FilterJudgment
from repro.llm.embeddings import DEFAULT_EMBED_BATCH, EmbeddingModel
from repro.llm.faults import CircuitBreaker, FaultInjector, RetryPolicy
from repro.llm.models import DEFAULT_MODEL, EMBEDDING_MODEL, ModelCard, get_model
from repro.llm.oracle import AnnotatedRecord, SemanticOracle
from repro.llm.usage import UsageEvent, UsageTracker
from repro.obs.metrics import MetricsRegistry, NullMetrics, get_default_metrics
from repro.obs.tracer import NoopTracer, Tracer, get_default_tracer
from repro.utils.clock import VirtualClock
from repro.utils.hashing import stable_hash, stable_uniform
from repro.utils.text import approx_token_count, extract_keywords, normalize_text

#: Tokens charged for the fixed system/instruction scaffolding of each call.
SYSTEM_PROMPT_TOKENS = 60

#: Output tokens for a terse boolean judgment ("Yes." / "No.").
JUDGMENT_OUTPUT_TOKENS = 5

#: Distractor annotation prefix: datasets may store a plausible wrong answer.
DISTRACTOR_PREFIX = "_distractor:"


class MeasuredTime:
    """Mutable holder filled in when a :meth:`SimulatedLLM.measure` block exits."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


class SimulatedLLM:
    """The simulated chat-completion + embedding service."""

    def __init__(
        self,
        oracle: SemanticOracle | None = None,
        tracker: UsageTracker | None = None,
        clock: VirtualClock | None = None,
        cache: GenerationCache | None = None,
        embedding_model: EmbeddingModel | None = None,
        seed: int = 0,
        use_cache: bool = True,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        tracer: "Tracer | NoopTracer | None" = None,
        metrics: "MetricsRegistry | NullMetrics | None" = None,
    ) -> None:
        self.oracle = oracle or SemanticOracle()
        self.tracker = tracker or UsageTracker()
        self.clock = clock or VirtualClock()
        self.cache = cache or GenerationCache()
        self.embedding_model = embedding_model or EmbeddingModel()
        self.seed = seed
        self.use_cache = use_cache
        self.faults = faults
        self.retry = retry or RetryPolicy()
        # Observability: adopt the process defaults (no-op singletons unless
        # the CLI/harness enabled tracing) and bind the tracer to this clock
        # so span times share the virtual-time axis with all accounting.
        self.tracer = tracer if tracer is not None else get_default_tracer()
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = self.clock
        self.metrics = metrics if metrics is not None else get_default_metrics()
        if self.metrics.enabled:
            self.cache.metrics = self.metrics
            if self.faults is not None:
                self.faults.metrics = self.metrics
        self._breakers: dict[str, CircuitBreaker] = {}
        self._parallel_stack: list[tuple[int, list[float]]] = []
        #: Serving-layer hook: when set (see ``repro.serve``), outermost
        #: latency charges are diverted to the sink as *call steps* instead
        #: of advancing the clock — the serving scheduler replays them on
        #: its own cross-query schedule.  Body execution stays eager and
        #: ordered, so cache evolution is identical with or without a sink.
        self.serve_sink: Any | None = None
        #: Tenant namespace prefixed into generation-cache keys.  Empty
        #: (the default) preserves historical key digests exactly; serving
        #: sessions set it per tenant so one tenant's cached generations
        #: are invisible to another's accounting.
        self.cache_scope: str = ""
        #: Depth of enclosing ``measure`` sections: cell-level spans replace
        #: per-call spans there (the engine re-times cells on the schedule).
        self._measure_depth = 0
        #: Monotonic per-call counter: namespaces the backoff-jitter stream.
        self._call_sequence = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def parallel(self, parallelism: int) -> Iterator[None]:
        """Charge calls inside the block as waves of ``parallelism`` calls."""
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self._parallel_stack.append((parallelism, []))
        try:
            yield
        finally:
            width, latencies = self._parallel_stack.pop()
            if latencies:
                if not self._parallel_stack and self.serve_sink is not None:
                    # Serving capture: the outermost section's items form one
                    # precedence step in the query's call timeline; no clock
                    # time passes during body execution.
                    self.serve_sink.end_step(width, latencies)
                else:
                    # The section's makespan is one unit of work in the
                    # enclosing section (if any); only at the outermost level
                    # does it reach the clock.  Advancing directly here would
                    # double-schedule nested sections against their parent's
                    # waves.
                    self._advance_latency(_makespan(latencies, width))

    @contextlib.contextmanager
    def measure(self) -> Iterator[MeasuredTime]:
        """Capture seconds charged inside the block instead of spending them.

        The pipelined executor wraps each (batch, stage) cell in a measure
        section: inner ``parallel`` waves resolve to their makespans as
        usual, but the cell's total duration lands in the returned
        :class:`MeasuredTime` rather than on the clock (or a parent
        section).  The engine then advances the clock by the *pipeline*
        critical path those cells form — overlapping stages that a direct
        charge would serialize.
        """
        holder = MeasuredTime()
        self._parallel_stack.append((1, []))
        self._measure_depth += 1
        try:
            yield holder
        finally:
            self._measure_depth -= 1
            _, latencies = self._parallel_stack.pop()
            # Width 1: sequential sub-sections within one cell add up.
            holder.seconds = sum(latencies)

    def _advance_latency(self, seconds: float) -> None:
        if self._parallel_stack:
            # Zero-latency (cached) calls never occupy a wave slot: they
            # return instantly and must not displace real calls in the
            # positional chunking of ``_makespan``.
            if seconds > 0.0:
                self._parallel_stack[-1][1].append(seconds)
        elif self.serve_sink is not None:
            # A bare sequential call is its own single-item step.
            if seconds > 0.0:
                self.serve_sink.end_step(1, [seconds])
        else:
            self.clock.advance(seconds)

    def _cache_key(self, model: str, *payload: Any) -> str:
        """Generation-cache key, namespaced by :attr:`cache_scope` when set."""
        if self.cache_scope:
            return GenerationCache.key(model, "scope", self.cache_scope, *payload)
        return GenerationCache.key(model, *payload)

    def _breaker(self, model: str) -> CircuitBreaker | None:
        if self.retry.breaker_threshold <= 0:
            return None
        breaker = self._breakers.get(model)
        if breaker is None:
            breaker = CircuitBreaker(
                self.retry.breaker_threshold, self.retry.breaker_cooldown_s
            )
            self._breakers[model] = breaker
        return breaker

    def _charge(
        self,
        card: ModelCard,
        input_tokens: int,
        output_tokens: int,
        tag: str,
        cached: bool = False,
    ) -> UsageEvent:
        """Account for one logical call, retrying injected faults per policy.

        A successful call charges its full latency (plus any failed-attempt
        latencies and backoff waits accrued on the way) as a *single* item in
        the enclosing parallel section — the slot is occupied for the whole
        retry saga.  Cache hits cost nothing and never reach the fault path:
        a cached response involves no API round trip.
        """
        tracer = self.tracer
        metrics = self.metrics
        if tracer.enabled and not tag:
            # Untagged call inside an instrumented scope: attribute it to the
            # enclosing span so per-operator cost accounting stays whole.
            current = tracer.current
            if current is not None:
                tag = current.name
        if cached:
            event = UsageEvent(
                model=card.name,
                input_tokens=0,
                output_tokens=0,
                cost_usd=0.0,
                latency_s=0.0,
                tag=tag,
                cached=True,
            )
            self.tracker.record(event)
            if metrics.enabled:
                metrics.counter("llm.calls").inc()
                metrics.counter("llm.cached_calls").inc()
            if tracer.enabled and self._measure_depth == 0:
                now = self.clock.elapsed
                tracer.add_span(
                    f"{card.name} (cached)", "llm-call", now, now,
                    track="llm cached", tag=tag,
                )
            return event

        policy = self.retry
        breaker = self._breaker(card.name)
        if breaker is not None and not breaker.allow(self.clock.elapsed):
            if metrics.enabled:
                metrics.counter("llm.breaker_rejections").inc()
            raise CircuitOpenError(
                f"circuit open for {card.name} "
                f"(cooldown {policy.breaker_cooldown_s}s from t={breaker.opened_at:.1f}s)"
            )

        # Per-call spans are suppressed inside ``measure`` cells (the engine
        # re-times those on the pipeline schedule and emits cell spans) and
        # inside *nested* parallel sections, where a call's absolute start
        # is only known to the outermost section's scheduler.
        emit_span = (
            tracer.enabled
            and self._measure_depth == 0
            and len(self._parallel_stack) <= 1
        )
        span_start = 0.0
        span_track: str | None = None
        if emit_span:
            span_start, span_track = self._call_span_origin()

        self._call_sequence += 1
        sequence = self._call_sequence
        is_embedding = card.usd_per_1m_output <= 0.0
        # Innermost section width: storms throttle wide fan-out, and retries
        # stay in their slot, so they keep the width they were issued at.
        width = self._parallel_stack[-1][0] if self._parallel_stack else 1
        latency_total = 0.0
        retries = 0
        while True:
            fault = (
                self.faults.draw(
                    card.name,
                    is_embedding,
                    width=width,
                    # Saga-local time: backoff waits push later attempts
                    # forward, so a long enough wait rides out a storm window.
                    now=self.clock.elapsed + latency_total,
                )
                if self.faults is not None
                else None
            )
            latency = card.call_latency(input_tokens, output_tokens)
            if (
                fault is None
                and policy.timeout_s is not None
                and latency > policy.timeout_s
            ):
                fault = LLMTimeoutError(
                    f"simulated {card.name} call would take {latency:.1f}s, "
                    f"over the per-call timeout of {policy.timeout_s:.1f}s"
                )
            if fault is None:
                event = UsageEvent(
                    model=card.name,
                    input_tokens=input_tokens,
                    output_tokens=output_tokens,
                    cost_usd=card.call_cost(input_tokens, output_tokens),
                    latency_s=latency,
                    tag=tag,
                    retries=retries,
                )
                self.tracker.record(event)
                if breaker is not None:
                    breaker.record_success()
                if metrics.enabled:
                    metrics.counter("llm.calls").inc()
                    metrics.counter("llm.tokens_in").inc(input_tokens)
                    metrics.counter("llm.tokens_out").inc(output_tokens)
                    metrics.counter("llm.cost_usd").inc(event.cost_usd)
                    if retries:
                        metrics.counter("llm.retries").inc(retries)
                    metrics.histogram("llm.latency_s").observe(latency_total + latency)
                if emit_span:
                    tracer.add_span(
                        card.name, "llm-call",
                        span_start, span_start + latency_total + latency,
                        track=span_track, tag=tag, cost_usd=event.cost_usd,
                        tokens_in=input_tokens, tokens_out=output_tokens,
                        retries=retries,
                    )
                if self.serve_sink is not None:
                    self.serve_sink.note_call(
                        card.name,
                        is_embedding,
                        input_tokens,
                        output_tokens,
                        latency_total + latency,
                    )
                self._advance_latency(latency_total + latency)
                return event

            fail_latency, fail_tokens = self._fault_price(card, fault, input_tokens, latency)
            fail_cost = card.input_cost(fail_tokens)
            self.tracker.record(
                UsageEvent(
                    model=card.name,
                    input_tokens=fail_tokens,
                    output_tokens=0,
                    cost_usd=fail_cost,
                    latency_s=fail_latency,
                    tag=tag,
                    failed=True,
                    error=_fault_kind(fault),
                )
            )
            if metrics.enabled:
                metrics.counter("llm.failed_attempts").inc()
                metrics.counter(f"llm.faults.{_fault_kind(fault)}").inc()
                metrics.counter("llm.tokens_in").inc(fail_tokens)
                metrics.counter("llm.cost_usd").inc(fail_cost)
            latency_total += fail_latency
            retries += 1
            if not policy.enabled or retries >= policy.max_attempts:
                if breaker is not None:
                    opened_before = breaker.times_opened
                    breaker.record_failure(self.clock.elapsed)
                    if metrics.enabled and breaker.times_opened > opened_before:
                        metrics.counter("llm.breaker_opens").inc()
                if emit_span:
                    tracer.add_span(
                        f"{card.name} (gave up)", "llm-call",
                        span_start, span_start + latency_total,
                        track=span_track, tag=tag, retries=retries,
                        error=_fault_kind(fault),
                    )
                if self.serve_sink is not None:
                    self.serve_sink.note_call(
                        card.name, is_embedding, input_tokens, 0, latency_total
                    )
                self._advance_latency(latency_total)
                raise fault
            latency_total += policy.backoff_s(
                retries, fault, self.seed, card.name, sequence
            )

    def _call_span_origin(self) -> tuple[float, str | None]:
        """(start time, export track) for a call issued right now.

        Inside a parallel section the clock is frozen until the section
        exits, but :func:`_makespan` schedules items positionally: item
        ``i`` runs in wave ``i // width``, slot ``i % width``, starting
        when the previous waves' maxima have drained.  Reconstructing that
        start here makes exported call spans tile the per-slot tracks
        exactly as the charged makespan implies.
        """
        if not self._parallel_stack:
            return self.clock.elapsed, None
        width, latencies = self._parallel_stack[-1]
        index = len(latencies)
        if width <= 1:
            return self.clock.elapsed + sum(latencies), None
        offset = 0.0
        for wave_start in range(0, (index // width) * width, width):
            offset += max(latencies[wave_start : wave_start + width])
        return self.clock.elapsed + offset, f"llm slot {index % width}"

    def _fault_price(
        self,
        card: ModelCard,
        fault: TransientLLMError,
        input_tokens: int,
        latency: float,
    ) -> tuple[float, int]:
        """(latency, billed input tokens) burned by one failed attempt.

        Rate limits bounce at the door: overhead latency, nothing billed.
        Timeouts hang for the full timeout with prefill already paid.
        Generic API errors die mid-flight: half the latency, prefill paid.
        """
        if isinstance(fault, RateLimitError):
            return card.per_call_overhead_s, 0
        if isinstance(fault, LLMTimeoutError):
            capped = latency
            if self.retry.timeout_s is not None:
                capped = min(latency, self.retry.timeout_s)
            return capped, input_tokens
        return 0.5 * latency, input_tokens

    # ------------------------------------------------------------------
    # Semantic task endpoints
    # ------------------------------------------------------------------

    def judge_filter(
        self,
        instruction: str,
        record: AnnotatedRecord,
        model: str = DEFAULT_MODEL,
        tag: str = "",
    ) -> FilterJudgment:
        """Answer "does ``record`` satisfy ``instruction``?" as ``model`` would."""
        card = get_model(model)
        cache_key = self._cache_key(model, "filter", normalize_text(instruction), record.uid)
        if self.use_cache:
            hit, value = self.cache.get(cache_key)
            if hit:
                event = self._charge(card, 0, 0, tag, cached=True)
                answer, resolved, intent_key = value
                return FilterJudgment(answer, resolved, intent_key, event)

        judgment = self.oracle.judge_filter(instruction, record)
        noise_key = judgment.intent_key or normalize_text(instruction)
        erred = self._errs(card, "filter", noise_key, record.uid, judgment.difficulty)
        answer = bool(judgment.truth) != erred

        input_tokens = self._prompt_tokens(instruction, record)
        event = self._charge(card, input_tokens, JUDGMENT_OUTPUT_TOKENS, tag)
        if self.use_cache:
            self.cache.put(cache_key, (answer, judgment.resolved, judgment.intent_key))
        return FilterJudgment(answer, judgment.resolved, judgment.intent_key, event)

    def judge_join(
        self,
        instruction: str,
        left: AnnotatedRecord,
        right: AnnotatedRecord,
        model: str = DEFAULT_MODEL,
        tag: str = "",
    ) -> FilterJudgment:
        """Answer "do ``left`` and ``right`` jointly satisfy ``instruction``?"."""
        card = get_model(model)
        cache_key = self._cache_key(
            model, "join", normalize_text(instruction), left.uid, right.uid
        )
        if self.use_cache:
            hit, value = self.cache.get(cache_key)
            if hit:
                event = self._charge(card, 0, 0, tag, cached=True)
                answer, resolved, intent_key = value
                return FilterJudgment(answer, resolved, intent_key, event)

        judgment = self.oracle.judge_join(instruction, left, right)
        noise_key = judgment.intent_key or normalize_text(instruction)
        erred = self._errs(
            card, "filter", noise_key, f"{left.uid}|{right.uid}", judgment.difficulty
        )
        answer = bool(judgment.truth) != erred

        input_tokens = (
            SYSTEM_PROMPT_TOKENS
            + approx_token_count(instruction)
            + approx_token_count(left.as_text())
            + approx_token_count(right.as_text())
        )
        event = self._charge(card, input_tokens, JUDGMENT_OUTPUT_TOKENS, tag)
        if self.use_cache:
            self.cache.put(cache_key, (answer, judgment.resolved, judgment.intent_key))
        return FilterJudgment(answer, judgment.resolved, judgment.intent_key, event)

    def extract(
        self,
        instruction: str,
        record: AnnotatedRecord,
        model: str = DEFAULT_MODEL,
        tag: str = "",
    ) -> ExtractionResult:
        """Extract the value ``instruction`` asks for from ``record``."""
        card = get_model(model)
        cache_key = self._cache_key(model, "extract", normalize_text(instruction), record.uid)
        if self.use_cache:
            hit, value = self.cache.get(cache_key)
            if hit:
                event = self._charge(card, 0, 0, tag, cached=True)
                extracted, resolved, intent_key = value
                return ExtractionResult(extracted, resolved, intent_key, event)

        judgment = self.oracle.extract_value(instruction, record)
        value = judgment.truth
        if judgment.resolved:
            erred = self._errs(
                card, "extract", judgment.intent_key, record.uid, judgment.difficulty
            )
            if erred:
                value = self._corrupt(judgment.truth, judgment.intent_key, record)
        input_tokens = self._prompt_tokens(instruction, record)
        output_tokens = max(8, approx_token_count(str(value)))
        event = self._charge(card, input_tokens, output_tokens, tag)
        if self.use_cache:
            self.cache.put(cache_key, (value, judgment.resolved, judgment.intent_key))
        return ExtractionResult(value, judgment.resolved, judgment.intent_key, event)

    def classify(
        self,
        instruction: str,
        options: list[str],
        record: AnnotatedRecord,
        model: str = DEFAULT_MODEL,
        tag: str = "",
    ) -> ExtractionResult:
        """Pick one of ``options`` for ``record`` according to ``instruction``."""
        if not options:
            raise ValueError("classify requires at least one option")
        card = get_model(model)
        judgment = self.oracle.extract_value(instruction, record)
        truth = judgment.truth if judgment.truth in options else options[0]
        erred = judgment.resolved and self._errs(
            card, "classify", judgment.intent_key, record.uid, judgment.difficulty
        )
        value = truth
        if erred and len(options) > 1:
            alternatives = [option for option in options if option != truth]
            pick = stable_hash(self.seed, "classify-pick", record.uid) % len(alternatives)
            value = alternatives[pick]
        input_tokens = self._prompt_tokens(instruction, record) + approx_token_count(
            " ".join(options)
        )
        event = self._charge(card, input_tokens, JUDGMENT_OUTPUT_TOKENS, tag)
        return ExtractionResult(value, judgment.resolved, judgment.intent_key, event)

    def complete(
        self,
        prompt: str,
        model: str = DEFAULT_MODEL,
        max_output_tokens: int = 256,
        tag: str = "",
        expected_output: str | None = None,
    ) -> CompletionResult:
        """Free-text completion (agent reasoning steps, summaries, reports).

        Scripted agent policies supply ``expected_output``; otherwise a
        deterministic keyword-echo summary is produced.  Either way the call
        is priced and timed like a real completion.
        """
        card = get_model(model)
        if expected_output is not None:
            text = expected_output
        else:
            keywords = ", ".join(extract_keywords(prompt, limit=8))
            text = f"[simulated {card.name} response covering: {keywords}]"
        output_tokens = min(max_output_tokens, max(8, approx_token_count(text)))
        input_tokens = SYSTEM_PROMPT_TOKENS + approx_token_count(prompt)
        event = self._charge(card, input_tokens, output_tokens, tag)
        return CompletionResult(text, event)

    def embed(self, text: str, tag: str = "") -> np.ndarray:
        """Embed ``text``, charging the embedding model's price and latency."""
        card = get_model(EMBEDDING_MODEL)
        cache_key = self._cache_key(EMBEDDING_MODEL, "embed", text)
        if self.use_cache:
            hit, value = self.cache.get(cache_key)
            if hit:
                self._charge(card, 0, 0, tag, cached=True)
                return value
        vector = self.embedding_model.embed(text)
        self._charge(card, approx_token_count(text), 0, tag)
        if self.use_cache:
            self.cache.put(cache_key, vector)
        return vector

    def embed_batch(
        self,
        texts: list[str],
        tag: str = "",
        batch_size: int = DEFAULT_EMBED_BATCH,
    ) -> list[np.ndarray]:
        """Embed ``texts`` with chunked batch requests instead of one call each.

        Duplicates are collapsed and already-cached texts are skipped (one
        zero-cost cached event per unique hit, mirroring :meth:`embed`); the
        remaining unique misses go out in batches of ``batch_size``, each
        priced as a single request carrying the chunk's total tokens.  Token
        pricing is linear, so the dollar cost is identical to the per-record
        path — the win is latency: one per-call overhead per chunk instead
        of per text.  Returns vectors positionally aligned with ``texts``.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        card = get_model(EMBEDDING_MODEL)
        vectors: dict[str, np.ndarray] = {}
        misses: list[str] = []
        for text in texts:
            if text in vectors or text in misses:
                continue
            if self.use_cache:
                hit, value = self.cache.get(self._cache_key(EMBEDDING_MODEL, "embed", text))
                if hit:
                    self._charge(card, 0, 0, tag, cached=True)
                    vectors[text] = value
                    continue
            misses.append(text)
        for start in range(0, len(misses), batch_size):
            chunk = misses[start : start + batch_size]
            self._charge(card, sum(approx_token_count(text) for text in chunk), 0, tag)
            for text in chunk:
                vector = self.embedding_model.embed(text)
                vectors[text] = vector
                if self.use_cache:
                    self.cache.put(self._cache_key(EMBEDDING_MODEL, "embed", text), vector)
        return [vectors[text] for text in texts]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _errs(
        self,
        card: ModelCard,
        task_kind: str,
        noise_key: str,
        record_uid: str,
        difficulty: float,
    ) -> bool:
        """Deterministically decide whether ``card`` errs on this input.

        Error probability scales superlinearly with difficulty
        (``base * 2 * d^2``): easy records (d ~ 0.1) are answered almost
        perfectly by every tier — matching the paper's 100% precision on
        clear negatives — while a median-difficulty record errs at roughly
        the model's base rate.  Genuinely ambiguous records (d > 0.7) add an
        additive boost so even strong models disagree across trials on them,
        reproducing the paper's observation that two of three
        semantic-operator trials admitted an errant file.
        """
        base = card.error_rate(task_kind)
        ambiguity_boost = max(0.0, difficulty - 0.7)
        probability = min(0.95, base * 2.0 * difficulty * difficulty + ambiguity_boost)
        draw = stable_uniform(self.seed, "llm-noise", card.name, task_kind, noise_key, record_uid)
        return draw < probability

    def _prompt_tokens(self, instruction: str, record: AnnotatedRecord) -> int:
        return (
            SYSTEM_PROMPT_TOKENS
            + approx_token_count(instruction)
            + approx_token_count(record.as_text())
        )

    def _corrupt(self, truth: Any, intent_key: str, record: AnnotatedRecord) -> Any:
        """Produce a plausible wrong answer for an extraction error.

        Prefers a dataset-provided distractor (a wrong value that actually
        appears in the corpus); otherwise perturbs numerics deterministically
        and degrades strings to their keywords.
        """
        distractor_key = DISTRACTOR_PREFIX + intent_key
        if distractor_key in record.annotations:
            return record.annotations[distractor_key]
        if isinstance(truth, bool):
            return not truth
        if isinstance(truth, (int, float)):
            factors = (0.1, 0.5, 2.0, 10.0)
            pick = stable_hash(self.seed, "corrupt", intent_key, record.uid) % len(factors)
            corrupted = truth * factors[pick]
            return type(truth)(corrupted)
        if isinstance(truth, str):
            keywords = extract_keywords(truth, limit=3)
            return " ".join(keywords) if keywords else ""
        return None


def _fault_kind(fault: TransientLLMError) -> str:
    """Short kind label for a failed-attempt usage event."""
    if isinstance(fault, RateLimitError):
        return "rate_limit"
    if isinstance(fault, LLMTimeoutError):
        return "timeout"
    return "api"


def _makespan(latencies: list[float], parallelism: int) -> float:
    """Makespan of ``latencies`` scheduled greedily in submission order."""
    total = 0.0
    for start in range(0, len(latencies), parallelism):
        total += max(latencies[start : start + parallelism])
    return total
