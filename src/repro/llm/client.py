"""Client-facing protocol for LLM services.

The rest of the library programs against this protocol so a real API-backed
client could be dropped in without touching operators, agents, or the
optimizer.  :class:`repro.llm.simulated.SimulatedLLM` is the only
implementation shipped (the sandbox has no network access).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.llm.oracle import AnnotatedRecord
from repro.llm.usage import UsageEvent, UsageTracker
from repro.utils.clock import VirtualClock


@dataclass(frozen=True)
class CompletionResult:
    """Free-text completion plus its accounting record."""

    text: str
    event: UsageEvent


@dataclass(frozen=True)
class FilterJudgment:
    """Boolean semantic judgment plus provenance."""

    answer: bool
    #: Whether the oracle resolved the instruction to a known intent.
    resolved: bool
    intent_key: str
    event: UsageEvent


@dataclass(frozen=True)
class ExtractionResult:
    """Value extracted for a natural-language instruction."""

    value: Any
    resolved: bool
    intent_key: str
    event: UsageEvent


@runtime_checkable
class LLMClient(Protocol):
    """Minimal surface the library needs from an LLM service."""

    tracker: UsageTracker
    clock: VirtualClock

    def complete(
        self,
        prompt: str,
        model: str = ...,
        max_output_tokens: int = ...,
        tag: str = "",
        expected_output: str | None = None,
    ) -> CompletionResult: ...

    def judge_filter(
        self,
        instruction: str,
        record: AnnotatedRecord,
        model: str = ...,
        tag: str = "",
    ) -> FilterJudgment: ...

    def extract(
        self,
        instruction: str,
        record: AnnotatedRecord,
        model: str = ...,
        tag: str = "",
    ) -> ExtractionResult: ...

    def classify(
        self,
        instruction: str,
        options: list[str],
        record: AnnotatedRecord,
        model: str = ...,
        tag: str = "",
    ) -> ExtractionResult: ...

    def embed(self, text: str, tag: str = "") -> np.ndarray: ...
