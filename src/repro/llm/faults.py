"""Seeded fault injection and fault-tolerance policy for the LLM substrate.

The paper's runtime vision assumes flaky, rate-limited LLM APIs; production
systems in this space treat transient failure as the common case.  This
module makes that failure mode *simulable and deterministic*:

- :class:`FaultInjector` decides, per call attempt, whether the (simulated)
  service fails and with which typed error (`RateLimitError`, `TimeoutError`,
  `TransientAPIError`).  Decisions are a pure function of
  ``(seed, model, attempt index)`` via :func:`repro.utils.hashing.stable_uniform`,
  so two runs with the same seed see the identical fault schedule.  A burst
  mode models correlated failures (rate-limit windows, provider incidents):
  once a fault fires, the next ``burst_length`` attempts fail with elevated
  probability.  *Rate-limit storms* add time-windowed, width-sensitive 429s:
  inside a ``(start_s, end_s)`` window of virtual time, attempts issued at
  concurrency above ``storm_safe_parallelism`` are throttled — the signal
  the executor's adaptive parallelism controller backs off from.
- :class:`RetryPolicy` bounds attempts and computes exponential backoff with
  seeded jitter.  Backoff waits are *charged to the virtual clock* by the
  caller (:class:`~repro.llm.simulated.SimulatedLLM`), so benchmarks show the
  real latency price of resilience.
- :class:`CircuitBreaker` opens after a run of consecutive exhausted calls
  and fail-fasts until its cooldown elapses on the virtual clock, then
  half-opens to probe.

Nothing here sleeps: faults and waits exist purely in virtual time/money.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    RateLimitError,
    TimeoutError,
    TransientAPIError,
    TransientLLMError,
)
from repro.utils.hashing import stable_hash, stable_uniform

#: Fault kinds the injector can produce, in rotation order.
FAULT_KINDS = ("rate_limit", "timeout", "api")

_KIND_ERRORS = {
    "rate_limit": RateLimitError,
    "timeout": TimeoutError,
    "api": TransientAPIError,
}


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for the seeded fault schedule."""

    #: Base per-attempt fault probability for chat models.
    rate: float = 0.0
    #: Per-model overrides (e.g. a flakier cheap tier).
    per_model_rates: dict[str, float] = field(default_factory=dict)
    #: Whether embedding calls can fault too (off by default: embedding
    #: endpoints are far more reliable and far cheaper to retry silently).
    include_embeddings: bool = False
    #: After a fault fires, this many subsequent attempts fail with
    #: ``burst_rate`` instead of the base rate (0 disables bursts).
    burst_length: int = 0
    #: Elevated probability inside a burst window.
    burst_rate: float = 0.8
    #: Which typed errors to inject (subset of :data:`FAULT_KINDS`).
    kinds: tuple[str, ...] = FAULT_KINDS
    #: ``Retry-After`` hint carried by injected rate-limit errors.
    retry_after_s: float = 2.0
    #: Rate-limit *storms*: ``(start_s, end_s)`` windows of virtual time in
    #: which calls issued at high concurrency draw 429s with ``storm_rate``.
    #: Models provider-side throttling that punishes wide fan-out — the
    #: signal the adaptive parallelism controller reacts to.
    rate_limit_storms: tuple[tuple[float, float], ...] = ()
    #: Per-attempt 429 probability inside a storm window (width-sensitive).
    storm_rate: float = 0.9
    #: Concurrency at or below which storm throttling never fires — a
    #: narrowed executor rides out the storm.
    storm_safe_parallelism: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ConfigurationError("FaultConfig.kinds must not be empty")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown fault kinds {sorted(unknown)}; known: {list(FAULT_KINDS)}"
            )
        if self.burst_length < 0:
            raise ConfigurationError(
                f"burst_length must be >= 0, got {self.burst_length}"
            )
        if not 0.0 <= self.storm_rate <= 1.0:
            raise ConfigurationError(
                f"storm_rate must be in [0, 1], got {self.storm_rate}"
            )
        if self.storm_safe_parallelism < 1:
            raise ConfigurationError(
                f"storm_safe_parallelism must be >= 1, got {self.storm_safe_parallelism}"
            )
        for window in self.rate_limit_storms:
            if len(window) != 2 or window[0] > window[1]:
                raise ConfigurationError(
                    f"storm windows must be (start_s, end_s) with start <= end, got {window}"
                )

    def in_storm(self, now: float) -> bool:
        """Whether virtual time ``now`` falls inside a storm window."""
        return any(start <= now < end for start, end in self.rate_limit_storms)

    def to_dict(self) -> dict:
        """JSON-friendly form (tuples become lists); see :meth:`from_dict`."""
        return {
            "rate": self.rate,
            "per_model_rates": dict(self.per_model_rates),
            "include_embeddings": self.include_embeddings,
            "burst_length": self.burst_length,
            "burst_rate": self.burst_rate,
            "kinds": list(self.kinds),
            "retry_after_s": self.retry_after_s,
            "rate_limit_storms": [list(window) for window in self.rate_limit_storms],
            "storm_rate": self.storm_rate,
            "storm_safe_parallelism": self.storm_safe_parallelism,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultConfig":
        """Rebuild a config serialized with :meth:`to_dict` (replay bundles)."""
        data = dict(payload)
        if "kinds" in data:
            data["kinds"] = tuple(data["kinds"])
        if "rate_limit_storms" in data:
            data["rate_limit_storms"] = tuple(
                tuple(window) for window in data["rate_limit_storms"]
            )
        return cls(**data)

    def model_rate(self, model: str, is_embedding: bool) -> float:
        if model in self.per_model_rates:
            return self.per_model_rates[model]
        if is_embedding and not self.include_embeddings:
            return 0.0
        return self.rate


class FaultInjector:
    """Draws deterministic faults from a seeded schedule.

    The injector consumes one draw per call *attempt* (retries draw again),
    keyed by a monotonically increasing attempt counter — so the schedule is
    a pure function of the seed and the sequence of attempts made, and two
    identical runs fault at identical points.
    """

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.attempts = 0
        self.injected = 0
        self.injected_by_kind: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._burst_remaining = 0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.
        self.metrics = None

    def _count(self, kind: str) -> None:
        self.injected += 1
        self.injected_by_kind[kind] += 1
        if self.metrics is not None:
            self.metrics.counter(f"faults.injected.{kind}").inc()

    def draw(
        self,
        model: str,
        is_embedding: bool = False,
        width: int = 1,
        now: float = 0.0,
    ) -> TransientLLMError | None:
        """Return a typed error to inject for this attempt, or None.

        ``width`` is the concurrency the attempt was issued at and ``now``
        the virtual time it lands — together they decide whether a
        rate-limit storm window throttles it (wide fan-out inside a storm
        draws 429s; narrow fan-out is safe).
        """
        self.attempts += 1
        index = self.attempts
        if (
            not is_embedding
            and width > self.config.storm_safe_parallelism
            and self.config.in_storm(now)
            and stable_uniform(self.seed, "storm", model, index) < self.config.storm_rate
        ):
            self._count("rate_limit")
            return RateLimitError(
                f"simulated 429 storm throttle from {model} "
                f"(attempt {index}, width {width} at t={now:.1f}s)",
                retry_after_s=self.config.retry_after_s,
            )
        rate = self.config.model_rate(model, is_embedding)
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            if rate > 0.0:
                rate = max(rate, self.config.burst_rate)
        if rate <= 0.0:
            return None
        if stable_uniform(self.seed, "fault", model, index) >= rate:
            return None
        kinds = self.config.kinds
        kind = kinds[stable_hash(self.seed, "fault-kind", index) % len(kinds)]
        self._count(kind)
        if self.config.burst_length and self._burst_remaining == 0:
            self._burst_remaining = self.config.burst_length
        if kind == "rate_limit":
            return RateLimitError(
                f"simulated 429 from {model} (attempt {index})",
                retry_after_s=self.config.retry_after_s,
            )
        return _KIND_ERRORS[kind](f"simulated {kind} fault from {model} (attempt {index})")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout/breaker policy for simulated LLM calls.

    The default policy retries but — absent a :class:`FaultInjector` — never
    fires, so a fault-free run is byte-identical with or without it.
    """

    #: Master switch: False raises on the first fault (no retries).
    enabled: bool = True
    #: Total attempts per call, including the first.
    max_attempts: int = 4
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0
    #: Jitter as a +/- fraction of the backoff, drawn from the seeded stream.
    jitter: float = 0.25
    #: Per-call latency cap; a simulated call whose latency would exceed it
    #: times out (charged ``timeout_s`` plus prefill tokens).  None disables.
    timeout_s: float | None = None
    #: Consecutive exhausted calls before the breaker opens (0 disables).
    breaker_threshold: int = 0
    #: Virtual seconds the breaker stays open before half-opening.
    breaker_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive, got {self.timeout_s}")

    def to_dict(self) -> dict:
        """JSON-friendly form; see :meth:`from_dict`."""
        return {
            "enabled": self.enabled,
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "timeout_s": self.timeout_s,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryPolicy":
        """Rebuild a policy serialized with :meth:`to_dict` (replay bundles)."""
        return cls(**payload)

    def backoff_s(
        self,
        failed_attempts: int,
        error: TransientLLMError | None = None,
        *jitter_key: object,
    ) -> float:
        """Backoff before the next attempt, after ``failed_attempts`` failures.

        Exponential with seeded jitter; a rate-limit error's ``retry_after_s``
        acts as a floor (the server told us when to come back).
        """
        wait = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_multiplier ** max(0, failed_attempts - 1),
        )
        if self.jitter > 0.0:
            swing = 2.0 * stable_uniform("backoff-jitter", failed_attempts, *jitter_key) - 1.0
            wait *= 1.0 + self.jitter * swing
        if isinstance(error, RateLimitError):
            wait = max(wait, error.retry_after_s)
        return max(0.0, wait)


class CircuitBreaker:
    """Consecutive-failure breaker over the virtual clock.

    closed --(threshold consecutive failures)--> open --(cooldown elapses on
    the virtual clock)--> half-open --(success)--> closed / --(failure)--> open.
    """

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.times_opened = 0

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at virtual time ``now``."""
        if self.state == "open":
            if now - self.opened_at >= self.cooldown_s:
                self.state = "half_open"
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open" or self.consecutive_failures >= self.threshold:
            self.state = "open"
            self.opened_at = now
            self.times_opened += 1
