"""Usage, cost, and latency accounting for the simulated LLM service.

Every simulated call appends a :class:`UsageEvent`; benchmarks read the
aggregate :class:`Usage` to report the Cost ($) and (together with the
virtual clock) Time (s) columns of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceededError


@dataclass
class Usage:
    """Aggregate token and dollar usage."""

    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    calls: int = 0

    def add(self, other: "Usage") -> None:
        self.input_tokens += other.input_tokens
        self.output_tokens += other.output_tokens
        self.cost_usd += other.cost_usd
        self.calls += other.calls

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass(frozen=True)
class UsageEvent:
    """One simulated LLM call attempt."""

    model: str
    input_tokens: int
    output_tokens: int
    cost_usd: float
    latency_s: float
    tag: str = ""
    cached: bool = False
    #: True for an attempt that faulted (rate limit, timeout, API error).
    #: Failed attempts still carry the cost/latency they burned.
    failed: bool = False
    #: On a successful event: how many failed attempts preceded it.
    retries: int = 0
    #: Fault kind for a failed attempt ("rate_limit", "timeout", "api", ...).
    error: str = ""


class UsageTracker:
    """Accumulates :class:`UsageEvent` records with optional budget limits."""

    def __init__(self, budget_usd: float | None = None) -> None:
        self.events: list[UsageEvent] = []
        self.budget_usd = budget_usd
        #: Running sum of event costs — O(1) spend checks for budget guards
        #: that fire on every call (the pipelined executor checks mid-batch).
        self.spent_usd: float = 0.0

    def record(self, event: UsageEvent) -> None:
        """Record ``event``, enforcing the spend budget if one is set."""
        if self.budget_usd is not None:
            projected = self.spent_usd + event.cost_usd
            if projected > self.budget_usd:
                raise BudgetExceededError(
                    f"call to {event.model} for ${event.cost_usd:.4f} would bring "
                    f"spend to ${projected:.4f}, over budget ${self.budget_usd:.4f}"
                )
        self.events.append(event)
        self.spent_usd += event.cost_usd

    def total(self, tag_prefix: str | None = None) -> Usage:
        """Aggregate usage, optionally restricted to events whose tag matches."""
        usage = Usage()
        for event in self.events:
            if tag_prefix is not None and not event.tag.startswith(tag_prefix):
                continue
            usage.add(
                Usage(
                    input_tokens=event.input_tokens,
                    output_tokens=event.output_tokens,
                    cost_usd=event.cost_usd,
                    calls=1,
                )
            )
        return usage

    def by_model(self) -> dict[str, Usage]:
        """Aggregate usage grouped by model name."""
        result: dict[str, Usage] = {}
        for event in self.events:
            usage = result.setdefault(event.model, Usage())
            usage.add(
                Usage(
                    input_tokens=event.input_tokens,
                    output_tokens=event.output_tokens,
                    cost_usd=event.cost_usd,
                    calls=1,
                )
            )
        return result

    def failed_calls(self, checkpoint: int = 0) -> int:
        """Number of faulted attempts recorded at or after ``checkpoint``."""
        return sum(1 for event in self.events[checkpoint:] if event.failed)

    def checkpoint(self) -> int:
        """Return a marker for :meth:`since` (the current event count)."""
        return len(self.events)

    def since(self, checkpoint: int) -> Usage:
        """Aggregate usage recorded after ``checkpoint``."""
        usage = Usage()
        for event in self.events[checkpoint:]:
            usage.add(
                Usage(
                    input_tokens=event.input_tokens,
                    output_tokens=event.output_tokens,
                    cost_usd=event.cost_usd,
                    calls=1,
                )
            )
        return usage

    def reset(self) -> None:
        self.events.clear()
        self.spent_usd = 0.0

    def render_report(self, title: str = "LLM usage") -> str:
        """Human-readable spend breakdown by model and by tag prefix."""
        lines = [title]
        total = self.total()
        lines.append(
            f"  total: {total.calls} calls, {total.input_tokens:,} in / "
            f"{total.output_tokens:,} out tokens, ${total.cost_usd:.4f}"
        )
        for model, usage in sorted(self.by_model().items()):
            lines.append(
                f"  {model}: {usage.calls} calls, ${usage.cost_usd:.4f}"
            )
        by_prefix: dict[str, Usage] = {}
        for event in self.events:
            prefix = event.tag.split(":")[0] if event.tag else "(untagged)"
            usage = by_prefix.setdefault(prefix, Usage())
            usage.add(
                Usage(
                    input_tokens=event.input_tokens,
                    output_tokens=event.output_tokens,
                    cost_usd=event.cost_usd,
                    calls=1,
                )
            )
        for prefix, usage in sorted(by_prefix.items()):
            lines.append(f"  [{prefix}] {usage.calls} calls, ${usage.cost_usd:.4f}")
        cached = sum(1 for event in self.events if event.cached)
        lines.append(f"  cache hits: {cached}")
        failed = self.failed_calls()
        if failed:
            wasted = sum(event.cost_usd for event in self.events if event.failed)
            lines.append(f"  failed attempts: {failed} (${wasted:.4f} burned)")
        return "\n".join(lines)
