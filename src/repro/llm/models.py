"""Model catalog for the simulated LLM service.

Each :class:`ModelCard` captures the three axes the optimizer trades off:
price (per million tokens, mirroring mid-2025 OpenAI list prices), latency
(per-call overhead plus per-output-token decode time), and per-task error
rates.  The evaluation in the paper uses GPT-4o everywhere and notes that
Palimpzest's optimizer "was able to use cheaper models for some of the
semantic operators"; the catalog therefore includes cheaper tiers with
higher error rates so that trade-off is real in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownModelError

#: Task kinds the quality model distinguishes.
TASK_KINDS = ("filter", "extract", "classify", "generate", "agent_step", "judge")


@dataclass(frozen=True)
class ModelCard:
    """Static description of a model tier in the simulated service."""

    name: str
    #: USD per 1M input tokens.
    usd_per_1m_input: float
    #: USD per 1M output tokens.
    usd_per_1m_output: float
    #: Fixed seconds of overhead per API call (network, queueing).
    per_call_overhead_s: float
    #: Seconds per generated output token (decode speed).
    seconds_per_output_token: float
    #: Seconds per prompt token (prefill speed); dominates for long documents.
    seconds_per_input_token: float = 0.0
    #: Base error probability per task kind (on a median-difficulty input).
    error_rates: dict[str, float] = field(default_factory=dict)
    #: Maximum context window in tokens.
    context_window: int = 128_000

    def input_cost(self, tokens: int) -> float:
        return tokens * self.usd_per_1m_input / 1_000_000

    def output_cost(self, tokens: int) -> float:
        return tokens * self.usd_per_1m_output / 1_000_000

    def call_cost(self, input_tokens: int, output_tokens: int) -> float:
        return self.input_cost(input_tokens) + self.output_cost(output_tokens)

    def call_latency(self, input_tokens: int, output_tokens: int) -> float:
        return (
            self.per_call_overhead_s
            + input_tokens * self.seconds_per_input_token
            + output_tokens * self.seconds_per_output_token
        )

    def error_rate(self, task_kind: str) -> float:
        """Base error rate for ``task_kind`` (defaults to the 'generate' rate)."""
        if task_kind in self.error_rates:
            return self.error_rates[task_kind]
        return self.error_rates.get("generate", 0.05)


def _card(
    name: str,
    usd_in: float,
    usd_out: float,
    overhead: float,
    s_per_tok: float,
    errors: dict[str, float],
    s_per_in_tok: float = 0.0,
) -> ModelCard:
    return ModelCard(
        name=name,
        usd_per_1m_input=usd_in,
        usd_per_1m_output=usd_out,
        per_call_overhead_s=overhead,
        seconds_per_output_token=s_per_tok,
        seconds_per_input_token=s_per_in_tok,
        error_rates=errors,
    )


#: The model used throughout the paper's evaluation.
DEFAULT_MODEL = "gpt-4o"

#: Embedding model used by Context indexes and the ContextManager.
EMBEDDING_MODEL = "text-embedding-3-small"

MODEL_CATALOG: dict[str, ModelCard] = {
    "gpt-4o": _card(
        "gpt-4o",
        usd_in=2.50,
        usd_out=10.00,
        overhead=0.60,
        s_per_tok=0.018,
        s_per_in_tok=0.0004,
        errors={
            "filter": 0.02,
            "extract": 0.03,
            "classify": 0.03,
            "generate": 0.04,
            "agent_step": 0.05,
            "judge": 0.02,
        },
    ),
    "gpt-4o-mini": _card(
        "gpt-4o-mini",
        usd_in=0.15,
        usd_out=0.60,
        overhead=0.40,
        s_per_tok=0.009,
        s_per_in_tok=0.0002,
        errors={
            "filter": 0.10,
            "extract": 0.14,
            "classify": 0.12,
            "generate": 0.15,
            "agent_step": 0.18,
            "judge": 0.10,
        },
    ),
    "gpt-3.5-turbo": _card(
        "gpt-3.5-turbo",
        usd_in=0.50,
        usd_out=1.50,
        overhead=0.35,
        s_per_tok=0.008,
        s_per_in_tok=0.00015,
        errors={
            "filter": 0.18,
            "extract": 0.24,
            "classify": 0.20,
            "generate": 0.25,
            "agent_step": 0.30,
            "judge": 0.20,
        },
    ),
    "text-embedding-3-small": ModelCard(
        name="text-embedding-3-small",
        usd_per_1m_input=0.02,
        usd_per_1m_output=0.0,
        per_call_overhead_s=0.10,
        seconds_per_output_token=0.0,
        seconds_per_input_token=0.00002,
        error_rates={},
        context_window=8_192,
    ),
}


def get_model(name: str) -> ModelCard:
    """Look up a model card, raising :class:`UnknownModelError` if absent."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise UnknownModelError(f"unknown model {name!r}; known models: {known}") from None


def list_models(chat_only: bool = False) -> list[ModelCard]:
    """Return catalog entries, optionally excluding embedding models."""
    cards = list(MODEL_CATALOG.values())
    if chat_only:
        cards = [card for card in cards if card.usd_per_1m_output > 0]
    return cards


def completion_models_by_cost() -> list[ModelCard]:
    """Chat models sorted from cheapest to most expensive (per output token)."""
    return sorted(list_models(chat_only=True), key=lambda card: card.usd_per_1m_output)
