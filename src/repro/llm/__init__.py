"""Simulated LLM substrate.

The paper's prototype calls the OpenAI API (GPT-4o / GPT-4o-mini).  This
sandbox has no network access, so the substrate simulates a chat-completion
service deterministically while preserving the three properties the paper's
evaluation depends on:

1. **Cost** is proportional to tokens, with per-model pricing.
2. **Latency** is proportional to tokens plus per-call overhead, charged to a
   virtual clock.
3. **Quality** differs by model tier: semantic judgments are resolved by a
   ground-truth oracle and then corrupted with seeded, model-dependent noise,
   so cheaper models are consistently less accurate on the same hard records.
"""

from repro.llm.cache import GenerationCache
from repro.llm.client import LLMClient
from repro.llm.embeddings import EmbeddingModel, cosine_similarity
from repro.llm.faults import (
    FAULT_KINDS,
    CircuitBreaker,
    FaultConfig,
    FaultInjector,
    RetryPolicy,
)
from repro.llm.models import (
    DEFAULT_MODEL,
    EMBEDDING_MODEL,
    MODEL_CATALOG,
    ModelCard,
    get_model,
    list_models,
)
from repro.llm.oracle import IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.llm.usage import Usage, UsageEvent, UsageTracker

__all__ = [
    "CircuitBreaker",
    "DEFAULT_MODEL",
    "EMBEDDING_MODEL",
    "EmbeddingModel",
    "FAULT_KINDS",
    "FaultConfig",
    "FaultInjector",
    "GenerationCache",
    "RetryPolicy",
    "IntentRegistry",
    "LLMClient",
    "MODEL_CATALOG",
    "ModelCard",
    "SemanticOracle",
    "SimulatedLLM",
    "Usage",
    "UsageEvent",
    "UsageTracker",
    "cosine_similarity",
    "get_model",
    "list_models",
]
