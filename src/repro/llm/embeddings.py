"""Deterministic text embeddings.

Implements feature-hashed bag-of-tokens embeddings (the classic "hashing
trick"): each token hashes to a dimension and a sign, weighted by
``1 + log(count)``, then L2-normalized.  The result behaves like a real
embedding model for the purposes of the paper's prototype — texts sharing
vocabulary land near each other — while being exactly reproducible offline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.hashing import stable_hash
from repro.utils.text import STOPWORDS, tokenize

DEFAULT_DIM = 256

#: Texts per embedding-API request on the batched path (providers accept
#: arrays of inputs; one request amortizes the per-call overhead).
DEFAULT_EMBED_BATCH = 64


class EmbeddingModel:
    """Feature-hashing embedding model with a fixed dimensionality."""

    def __init__(self, dim: int = DEFAULT_DIM) -> None:
        if dim < 8:
            raise ValueError(f"embedding dim must be >= 8, got {dim}")
        self.dim = dim

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm float32 vector.

        Empty or all-stopword texts map to the zero vector.
        """
        vector = np.zeros(self.dim, dtype=np.float64)
        counts: dict[str, int] = {}
        for token in tokenize(text):
            if token in STOPWORDS:
                continue
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            bucket = stable_hash("emb-bucket", token) % self.dim
            sign = 1.0 if stable_hash("emb-sign", token) % 2 == 0 else -1.0
            vector[bucket] += sign * (1.0 + math.log(count))
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector.astype(np.float32)

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embed a batch of texts into an ``(n, dim)`` matrix.

        Duplicate texts are embedded once and the vector reused, so the
        vectorized operators can pass raw record text without pre-deduping.
        """
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        unique: dict[str, np.ndarray] = {}
        for text in texts:
            if text not in unique:
                unique[text] = self.embed(text)
        return np.stack([unique[text] for text in texts])


def cosine_similarity(vec_a: np.ndarray, vec_b: np.ndarray) -> float:
    """Cosine similarity; zero vectors yield 0.0 rather than NaN."""
    norm_a = float(np.linalg.norm(vec_a))
    norm_b = float(np.linalg.norm(vec_b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(vec_a, vec_b) / (norm_a * norm_b))


def top_k_similar(
    query: np.ndarray, matrix: np.ndarray, k: int
) -> list[tuple[int, float]]:
    """Return ``[(row_index, similarity)]`` for the ``k`` most similar rows."""
    if matrix.shape[0] == 0 or k < 1:
        return []
    norms = np.linalg.norm(matrix, axis=1)
    query_norm = float(np.linalg.norm(query))
    if query_norm == 0.0:
        return []
    safe_norms = np.where(norms == 0.0, 1.0, norms)
    sims = (matrix @ query) / (safe_norms * query_norm)
    sims = np.where(norms == 0.0, 0.0, sims)
    k = min(k, matrix.shape[0])
    top = np.argsort(-sims, kind="stable")[:k]
    return [(int(idx), float(sims[idx])) for idx in top]
