#!/usr/bin/env python
"""Regenerate every file under ``tests/goldens/`` deterministically.

Usage::

    PYTHONPATH=src python scripts/update_goldens.py          # rewrite
    PYTHONPATH=src python scripts/update_goldens.py --check  # verify only

The builders live in ``tests/golden_builders.py`` and are pure functions,
so running this script twice always produces identical bytes.  ``--check``
exits non-zero if any golden on disk differs from its builder's output —
the same comparison ``test_goldens_are_up_to_date`` makes in CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests.golden_builders import GOLDEN_BUILDERS, render_golden  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "goldens"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify goldens match their builders instead of rewriting",
    )
    args = parser.parse_args(argv)

    stale = []
    for filename, builder in sorted(GOLDEN_BUILDERS.items()):
        path = GOLDEN_DIR / filename
        rendered = render_golden(builder())
        on_disk = path.read_text(encoding="utf-8") if path.exists() else None
        if on_disk == rendered:
            print(f"  up to date: {path.relative_to(REPO_ROOT)}")
            continue
        if args.check:
            stale.append(filename)
            state = "MISSING" if on_disk is None else "STALE"
            print(f"  {state}: {path.relative_to(REPO_ROOT)}")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(rendered, encoding="utf-8")
            print(f"  rewrote: {path.relative_to(REPO_ROOT)}")

    if stale:
        print(
            f"{len(stale)} golden(s) out of date; "
            "run: PYTHONPATH=src python scripts/update_goldens.py"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
