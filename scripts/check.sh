#!/usr/bin/env bash
# Fast correctness gate: tier-1 test suite + the fault-tolerance smoke sweep.
# Runs in well under a minute; use before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== fault-tolerance smoke sweep =="
python benchmarks/bench_fault_tolerance.py --smoke

echo
echo "== pipelined-execution smoke sweep =="
python benchmarks/bench_pipeline.py --smoke

echo
echo "check.sh: all green"
