#!/usr/bin/env bash
# Fast correctness gate: tier-1 test suite + the fault-tolerance smoke sweep.
# Runs in well under a minute; use before pushing.
#
#   scripts/check.sh          full gate (all tests + smoke sweeps + fuzz lane)
#   scripts/check.sh --fast   unit tests only, skipping slow property/
#                             integration modules and the smoke sweeps
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

if [[ "${1:-}" == "--fast" ]]; then
    echo "== fast lane: tier-1 tests (-m 'not slow') =="
    python -m pytest -x -q -m "not slow"
    echo
    echo "== fast lane: sharded-execution smoke =="
    python benchmarks/bench_sharding.py --smoke
    echo
    echo "== fast lane: standing-query smoke =="
    python benchmarks/bench_streaming.py --smoke
    echo
    echo "check.sh --fast: all green"
    exit 0
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== fault-tolerance smoke sweep =="
python benchmarks/bench_fault_tolerance.py --smoke

echo
echo "== pipelined-execution smoke sweep =="
python benchmarks/bench_pipeline.py --smoke

echo
echo "== materialization-reuse smoke sweep =="
python benchmarks/bench_context_reuse.py --smoke

echo
echo "== multi-tenant serving smoke sweep =="
python benchmarks/bench_serving.py --smoke

echo
echo "== sql-pushdown smoke sweep =="
python benchmarks/bench_pushdown.py --smoke

echo
echo "== mid-query replan smoke sweep =="
python benchmarks/bench_replan.py --smoke

echo
echo "== sharded-execution smoke sweep =="
python benchmarks/bench_sharding.py --smoke

echo
echo "== standing-query smoke sweep =="
python benchmarks/bench_streaming.py --smoke

echo
echo "== benchmark artifact placement guard =="
stray="$(find . -name 'BENCH_*.json' -not -path './benchmarks/results/*' -not -path './.git/*')"
if [[ -n "$stray" ]]; then
    echo "benchmark artifacts escaped benchmarks/results/:"
    echo "$stray"
    exit 1
fi
echo "all BENCH_*.json artifacts under benchmarks/results/"

echo
echo "== differential-testing fuzz lane =="
python -m repro.qa fuzz --n 15 --seed 0
python -m repro.qa selftest --n 10

echo
echo "== tracing smoke (query --trace + validation) =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
python -m repro query "What is the ratio of identity theft reports?" \
    --dataset legal --trace "$TRACE_TMP/smoke.trace.json" > /dev/null
python - "$TRACE_TMP/smoke.trace.json" <<'PY'
import sys
from repro.obs import validate_chrome_trace

summary = validate_chrome_trace(sys.argv[1])
print(f"trace ok: {summary['events']} events, "
      f"end={summary['trace_end_s']:.2f}s, drift={summary.get('drift', 0.0):.2%}")
PY

echo
echo "check.sh: all green"
