"""Deterministic builders for the files under ``tests/goldens/``.

Shared between the golden-comparison tests (``test_obs_export.py``) and
``scripts/update_goldens.py`` so that regeneration and verification can
never drift apart: both sides call the same builder and the same
serializer.  Every builder must be a pure function of nothing — no seeds
taken from the environment, no wall-clock reads — so the goldens are
byte-reproducible on any machine.
"""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry, Tracer, chrome_trace
from repro.utils.clock import VirtualClock


def hand_built_tracer() -> tuple[Tracer, MetricsRegistry]:
    """A small deterministic span tree: query > operator > 2 wave calls,
    plus a pipelined cell on its own track and a sharded exchange with
    per-shard cells (the scale-out executor's span shape)."""
    clock = VirtualClock()
    tracer = Tracer(clock)
    metrics = MetricsRegistry()
    metrics.counter("llm.calls").inc(3)
    metrics.histogram("llm.latency_s").observe(2.0)
    with tracer.span("query:test", kind="query", pipeline=False):
        with tracer.span("SemFilter('x')", kind="operator"):
            tracer.add_span(
                "gpt-4o", "llm-call", 0.0, 2.0, track="llm slot 0", tag="t"
            )
            tracer.add_span(
                "gpt-4o", "llm-call", 0.0, 1.5, track="llm slot 1", tag="t"
            )
            clock.advance(2.0)
        tracer.add_span("SemFilter('x') b0", "cell", 2.0, 3.0, track="stage 0")
        clock.advance(1.0)
        with tracer.span(
            "exchange[SemMap('y')]", kind="exchange",
            strategy="scatter", shards=2, partitioner="hash",
        ) as exchange_span:
            tracer.add_span(
                "SemMap('y') s0b1", "cell", 3.0, 4.0,
                track="shard 0 stage 0", parent=exchange_span, shard=0,
            )
            tracer.add_span(
                "SemMap('y') s1b1", "cell", 3.0, 3.5,
                track="shard 1 stage 0", parent=exchange_span, shard=1,
            )
            clock.advance(1.0)
    return tracer, metrics


def build_chrome_trace_golden() -> dict:
    """The payload stored in ``goldens/chrome_trace_golden.json``."""
    tracer, metrics = hand_built_tracer()
    return chrome_trace(tracer, metrics=metrics)


def build_explain_pushdown_golden() -> str:
    """The EXPLAIN ANALYZE text in ``goldens/explain_pushdown_golden.txt``.

    A pushdown-eligible plan (sem_filter -> where -> sem_map) over the
    seeded QA corpus, executed on two shards: the rendering must tag the
    ``SqlScan`` row in the SQL column, emit both pushdown footers
    (records pruned before the first LLM operator, and the compiled SQL
    text), fill the ``Shards`` column for shard-parallel operators, and
    emit the exchange footer with its makespan/straggler diagnostics.
    """
    from repro.data.records import reset_uid_counter
    from repro.data.schemas import Field
    from repro.llm.oracle import SemanticOracle
    from repro.llm.simulated import SimulatedLLM
    from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
    from repro.sem.config import QueryProcessorConfig
    from repro.sem.dataset import Dataset

    reset_uid_counter()
    bundle = build_corpus(CorpusSpec(seed=5, n_records=18))
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=5)
    config = QueryProcessorConfig(llm=llm, optimize=False, seed=5, shards=2)
    dataset = (
        Dataset.from_source(bundle.source())
        .sem_filter(instruction_for("qa.flag_urgent"))
        .where("priority >= 3")
        .sem_map(
            Field("amount", float, "extracted amount"),
            instruction_for("qa.amount"),
        )
    )
    return dataset.explain(analyze=True, config=config)


def render_golden(payload) -> str:
    """Serialize a golden payload exactly as stored on disk.

    Dict payloads become pretty-printed JSON; string payloads (rendered
    reports) are stored verbatim with a trailing newline.
    """
    if isinstance(payload, str):
        return payload if payload.endswith("\n") else payload + "\n"
    return json.dumps(payload, indent=1) + "\n"


#: filename -> builder; ``scripts/update_goldens.py`` and the up-to-date
#: test iterate this table, so adding a golden means adding one entry.
GOLDEN_BUILDERS = {
    "chrome_trace_golden.json": build_chrome_trace_golden,
    "explain_pushdown_golden.txt": build_explain_pushdown_golden,
}
