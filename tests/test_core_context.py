"""Tests for the Context abstraction."""

import pytest

from repro.agents.tools import Tool
from repro.core.context import Context, KeyIndex, VectorIndex
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.errors import ContextError
from repro.llm.simulated import SimulatedLLM

SCHEMA = Schema([Field("name", str), Field("text", str)])


def _records():
    topics = [
        ("doc0", "identity theft statistics for the nation"),
        ("doc1", "fraud reports by category"),
        ("doc2", "birdwatching raptors and condors"),
        ("doc3", "identity theft reports by state"),
    ]
    return [
        DataRecord({"name": name, "text": text}, uid=name)
        for name, text in topics
    ]


def _context(**kwargs):
    return Context(_records(), SCHEMA, desc="a tiny demo lake", **kwargs)


def test_context_is_a_dataset():
    context = _context()
    plan = context.sem_filter("anything").plan()
    assert plan.operators()[0].source is context.source()


def test_records_and_len():
    context = _context()
    assert len(context) == 4
    assert len(context.records()) == 4


def test_vector_search_builds_lazily_and_ranks():
    context = _context()
    llm = SimulatedLLM(seed=0)
    hits = context.vector_search("identity theft statistics", k=2, llm=llm)
    assert len(hits) == 2
    assert hits[0][0]["name"] in ("doc0", "doc3")
    assert hits[0][1] >= hits[1][1]


def test_index_with_key_field_lookup():
    context = _context().index(key_field="name")
    assert context.lookup("name", "doc2")["text"].startswith("birdwatching")
    assert context.lookup("name", "missing") is None


def test_lookup_without_index_raises():
    with pytest.raises(ContextError):
        _context().lookup("name", "doc0")


def test_index_prebuild_with_llm():
    llm = SimulatedLLM(seed=0)
    context = _context().index(llm=llm)
    assert context.has_vector_index
    cost_after_build = llm.tracker.total().cost_usd
    context.vector_search("fraud", 1, llm=llm)
    # Only the query embedding is charged; corpus embeddings were cached.
    assert llm.tracker.total().calls >= 5


def test_index_restricted_text_fields():
    index = VectorIndex(text_fields=["name"])
    llm = SimulatedLLM(seed=0)
    index.build(_records(), llm)
    hits = index.search("doc2", 1, llm)
    assert hits[0][0]["name"] == "doc2"


def test_vector_index_search_before_build_raises():
    with pytest.raises(ContextError):
        VectorIndex().search("q", 1, SimulatedLLM(seed=0))


def test_key_index_standalone():
    index = KeyIndex("name")
    index.build(_records())
    assert index.lookup("doc1")["name"] == "doc1"
    assert sorted(index.keys()) == ["doc0", "doc1", "doc2", "doc3"]


def test_add_tool_available_on_context():
    context = _context()
    context.add_tool(Tool("shout", "uppercases", lambda s: s.upper()))
    assert "shout" in context.tools


def test_derived_context_lineage_and_desc():
    parent = _context(name="parent")
    child = parent.derived("enriched description", records=_records()[:2])
    assert child.parent is parent
    assert len(child) == 2
    assert child.desc == "enriched description"
    assert [c.name for c in child.lineage()][-1] == "parent"


def test_derived_shares_tools():
    parent = _context()
    parent.add_tool(Tool("t", "d", lambda: 1))
    child = parent.derived("new desc")
    assert "t" in child.tools


def test_context_names_unique_by_default():
    assert _context().name != _context().name
