"""Tests for the benchmark system builders."""

import pytest

from repro.bench.systems import (
    enron_codeagent_plus_system,
    enron_codeagent_system,
    enron_compute_system,
    kramabench_codeagent_system,
    kramabench_compute_system,
    kramabench_semops_system,
)

ALL_KRAMABENCH = [
    kramabench_semops_system,
    kramabench_codeagent_system,
    kramabench_compute_system,
]
ALL_ENRON = [
    enron_codeagent_system,
    enron_codeagent_plus_system,
    enron_compute_system,
]


@pytest.mark.parametrize("builder", ALL_KRAMABENCH)
def test_kramabench_systems_deterministic(legal_bundle, builder):
    system = builder(legal_bundle)
    first, second = system(123), system(123)
    assert first.quality == second.quality
    assert first.cost_usd == second.cost_usd
    assert first.time_s == second.time_s


@pytest.mark.parametrize("builder", ALL_ENRON)
def test_enron_systems_deterministic(enron_bundle, builder):
    system = builder(enron_bundle)
    first, second = system(321), system(321)
    assert first.quality == second.quality
    assert first.cost_usd == second.cost_usd


@pytest.mark.parametrize("builder", ALL_KRAMABENCH)
def test_kramabench_outcomes_well_formed(legal_bundle, builder):
    outcome = builder(legal_bundle)(5)
    assert 0.0 <= outcome.quality["pct_err"] <= 100.0
    assert outcome.cost_usd > 0
    assert outcome.time_s > 0


@pytest.mark.parametrize("builder", ALL_ENRON)
def test_enron_outcomes_well_formed(enron_bundle, builder):
    outcome = builder(enron_bundle)(5)
    for metric in ("f1", "recall", "precision"):
        assert 0.0 <= outcome.quality[metric] <= 1.0
    assert outcome.cost_usd > 0


def test_trial_seeds_change_outcomes(legal_bundle):
    system = kramabench_codeagent_system(legal_bundle)
    outcomes = {round(system(seed).quality["pct_err"], 4) for seed in range(6)}
    assert len(outcomes) > 1  # trials genuinely vary
