"""Tests for physical operators over a small annotated dataset."""

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.data.sources import MemorySource
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import logical as L
from repro.sem import physical as P

SCHEMA = Schema([Field("name", str), Field("topic", str)])


def _registry():
    registry = IntentRegistry()
    registry.register("w.about_gadgets", ["about", "gadgets"])
    registry.register("w.owner", ["owner", "name"])
    registry.register("w.category", ["category", "label"])
    return registry


def _records():
    records = []
    for index in range(6):
        about_gadgets = index % 2 == 0
        records.append(
            DataRecord(
                {"name": f"item{index}", "topic": "gadgets" if about_gadgets else "plants"},
                uid=f"w{index}",
                annotations={
                    "w.about_gadgets": about_gadgets,
                    DIFFICULTY_PREFIX + "w.about_gadgets": 0.05,
                    "w.owner": f"owner{index}",
                    DIFFICULTY_PREFIX + "w.owner": 0.05,
                    "w.category": "gadget" if about_gadgets else "plant",
                    DIFFICULTY_PREFIX + "w.category": 0.05,
                },
            )
        )
    return records


@pytest.fixture
def ctx():
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    return P.ExecutionContext(llm=llm, parallelism=1, tag="test")


def _scan_op():
    return L.ScanOp(child=None, source=MemorySource(_records(), SCHEMA, "widgets"))


def test_scan_materializes(ctx):
    records = P.PhysScan(_scan_op()).execute([], ctx)
    assert len(records) == 6


def test_scan_rejects_input(ctx):
    with pytest.raises(Exception):
        P.PhysScan(_scan_op()).execute(_records(), ctx)


def test_sem_filter_keeps_matching(ctx):
    op = L.SemFilterOp(child=_scan_op(), instruction="the record is about gadgets")
    kept = P.PhysSemFilter(op, "gpt-4o").execute(_records(), ctx)
    assert {record["name"] for record in kept} == {"item0", "item2", "item4"}


def test_sem_filter_charges_per_record(ctx):
    op = L.SemFilterOp(child=_scan_op(), instruction="the record is about gadgets")
    P.PhysSemFilter(op, "gpt-4o").execute(_records(), ctx)
    assert ctx.llm.tracker.total().calls == 6


def test_sem_map_adds_coerced_field(ctx):
    op = L.SemMapOp(
        child=_scan_op(),
        outputs=((Field("who", str, "owner"), "extract the owner name"),),
    )
    output = P.PhysSemMap(op, "gpt-4o").execute(_records()[:2], ctx)
    assert output[0]["who"] == "owner0"
    assert output[0].parent_uids  # lineage recorded


def test_sem_classify_labels(ctx):
    op = L.SemClassifyOp(
        child=_scan_op(),
        output_field="kind",
        options=("gadget", "plant"),
        instruction="assign the category label",
    )
    output = P.PhysSemClassify(op, "gpt-4o").execute(_records(), ctx)
    assert [record["kind"] for record in output[:2]] == ["gadget", "plant"]


def test_py_filter_and_map(ctx):
    records = _records()
    filtered = P.PhysPyFilter(
        L.PyFilterOp(child=_scan_op(), fn=lambda r: r["topic"] == "plants")
    ).execute(records, ctx)
    assert len(filtered) == 3
    mapped = P.PhysPyMap(
        L.PyMapOp(child=_scan_op(), fn=lambda r: {"upper": r["name"].upper()})
    ).execute(filtered, ctx)
    assert mapped[0]["upper"].startswith("ITEM")
    assert ctx.llm.tracker.total().calls == 0  # free operators


def test_py_map_requires_dict(ctx):
    from repro.errors import ExecutionError

    op = L.PyMapOp(child=_scan_op(), fn=lambda r: "not a dict")
    with pytest.raises(ExecutionError):
        P.PhysPyMap(op).execute(_records()[:1], ctx)


def test_project_drops_fields(ctx):
    output = P.PhysProject(
        L.ProjectOp(child=_scan_op(), fields=("name",))
    ).execute(_records(), ctx)
    assert output[0].field_names() == ["name"]


def test_limit_truncates(ctx):
    output = P.PhysLimit(L.LimitOp(child=_scan_op(), n=2)).execute(_records(), ctx)
    assert len(output) == 2


def test_sem_topk_embedding_prefers_topic(ctx):
    op = L.SemTopKOp(child=_scan_op(), query="gadgets electronics", k=3)
    output = P.PhysSemTopK(op).execute(_records(), ctx)
    assert len(output) == 3
    assert sum(1 for record in output if record["topic"] == "gadgets") >= 2


def test_sem_agg_single_output(ctx):
    op = L.SemAggOp(child=_scan_op(), instruction="summarize the records", output_field="summary")
    output = P.PhysSemAgg(op, "gpt-4o").execute(_records(), ctx)
    assert len(output) == 1
    assert isinstance(output[0]["summary"], str)
    assert len(output[0].parent_uids) == 6


def test_sem_join_pairs(ctx):
    left = _records()[:2]
    right_source = MemorySource(_records()[:3], SCHEMA, "right")
    right_scan = L.ScanOp(child=None, source=right_source)
    join_op = L.SemJoinOp(
        child=_scan_op(), right=right_scan, instruction="both records are about gadgets"
    )
    physical = P.PhysSemJoin(join_op, [P.PhysScan(right_scan)], "gpt-4o")
    joined = physical.execute(left, ctx)
    # merged annotations: right record's truth wins; pairs where the merged
    # record is gadget-annotated pass.
    assert all(len(record.parent_uids) == 2 for record in joined)
    assert len(joined) >= 1


def test_retrieve_uses_source_index(ctx):
    class FakeIndexedSource:
        def __init__(self):
            self.calls = 0

        def vector_search(self, query, k, llm):
            self.calls += 1
            return [(record, 1.0) for record in _records()[:k]]

    source = FakeIndexedSource()
    op = L.RetrieveOp(child=_scan_op(), query="anything", k=2)
    output = P.PhysRetrieve(op, source=source).execute(_records(), ctx)
    assert source.calls == 1
    assert len(output) == 2


def test_retrieve_fallback_embeds(ctx):
    op = L.RetrieveOp(child=_scan_op(), query="gadgets", k=2)
    output = P.PhysRetrieve(op).execute(_records(), ctx)
    assert len(output) == 2
