"""Tests for the model catalog."""

import pytest

from repro.errors import UnknownModelError
from repro.llm.models import (
    DEFAULT_MODEL,
    EMBEDDING_MODEL,
    completion_models_by_cost,
    get_model,
    list_models,
)


def test_default_model_exists():
    card = get_model(DEFAULT_MODEL)
    assert card.name == DEFAULT_MODEL


def test_unknown_model_raises_with_suggestions():
    with pytest.raises(UnknownModelError) as excinfo:
        get_model("gpt-99")
    assert "gpt-4o" in str(excinfo.value)


def test_cost_proportional_to_tokens():
    card = get_model(DEFAULT_MODEL)
    assert card.call_cost(2000, 100) == pytest.approx(2 * card.call_cost(1000, 50))


def test_output_tokens_cost_more_than_input():
    card = get_model(DEFAULT_MODEL)
    assert card.output_cost(1000) > card.input_cost(1000)


def test_latency_includes_overhead_prefill_and_decode():
    card = get_model(DEFAULT_MODEL)
    base = card.call_latency(0, 0)
    assert base == pytest.approx(card.per_call_overhead_s)
    assert card.call_latency(1000, 0) > base
    assert card.call_latency(0, 100) > base


def test_cheaper_models_have_higher_error_rates():
    cheap, *_, champion = completion_models_by_cost()
    for task in ("filter", "extract", "generate"):
        assert cheap.error_rate(task) > champion.error_rate(task)


def test_champion_is_most_expensive():
    models = completion_models_by_cost()
    assert models[-1].name == DEFAULT_MODEL


def test_error_rate_falls_back_to_generate():
    card = get_model(DEFAULT_MODEL)
    assert card.error_rate("nonexistent-task") == card.error_rates["generate"]


def test_list_models_chat_only_excludes_embeddings():
    chat_names = {card.name for card in list_models(chat_only=True)}
    assert EMBEDDING_MODEL not in chat_names
    assert DEFAULT_MODEL in chat_names


def test_embedding_model_has_no_output_price():
    card = get_model(EMBEDDING_MODEL)
    assert card.usd_per_1m_output == 0.0
