"""Tests for table formatting."""

import pytest

from repro.utils.formatting import format_money, format_percent, format_table


def test_format_table_aligns_columns():
    table = format_table(["Name", "N"], [["a", 1], ["longer", 22]])
    lines = table.splitlines()
    assert len({len(line) for line in lines}) == 1  # all same width


def test_format_table_includes_title():
    table = format_table(["A"], [["x"]], title="My Title")
    assert table.splitlines()[0] == "My Title"


def test_format_table_formats_floats():
    table = format_table(["V"], [[1.23456]])
    assert "1.23" in table


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["A", "B"], [["only-one"]])


def test_format_money():
    assert format_money(1.666) == "1.67"
    assert format_money(0.0) == "0.00"


def test_format_percent():
    assert format_percent(0.9744) == "97.44%"
    assert format_percent(0.5, decimals=0) == "50%"
