"""Tests for usage tracking and budgets."""

import pytest

from repro.errors import BudgetExceededError
from repro.llm.usage import Usage, UsageEvent, UsageTracker


def _event(model="gpt-4o", cost=0.01, tag="", cached=False):
    return UsageEvent(
        model=model,
        input_tokens=100,
        output_tokens=10,
        cost_usd=cost,
        latency_s=1.0,
        tag=tag,
        cached=cached,
    )


def test_total_aggregates_all_events():
    tracker = UsageTracker()
    tracker.record(_event(cost=0.01))
    tracker.record(_event(cost=0.02))
    total = tracker.total()
    assert total.cost_usd == pytest.approx(0.03)
    assert total.calls == 2
    assert total.input_tokens == 200


def test_total_filters_by_tag_prefix():
    tracker = UsageTracker()
    tracker.record(_event(tag="query:filter"))
    tracker.record(_event(tag="optimize:filter"))
    assert tracker.total(tag_prefix="query").calls == 1


def test_by_model_groups():
    tracker = UsageTracker()
    tracker.record(_event(model="gpt-4o"))
    tracker.record(_event(model="gpt-4o-mini"))
    tracker.record(_event(model="gpt-4o"))
    grouped = tracker.by_model()
    assert grouped["gpt-4o"].calls == 2
    assert grouped["gpt-4o-mini"].calls == 1


def test_checkpoint_and_since():
    tracker = UsageTracker()
    tracker.record(_event(cost=0.01))
    mark = tracker.checkpoint()
    tracker.record(_event(cost=0.05))
    assert tracker.since(mark).cost_usd == pytest.approx(0.05)
    assert tracker.since(mark).calls == 1


def test_budget_enforced():
    tracker = UsageTracker(budget_usd=0.015)
    tracker.record(_event(cost=0.01))
    with pytest.raises(BudgetExceededError):
        tracker.record(_event(cost=0.01))


def test_budget_allows_exact_spend():
    tracker = UsageTracker(budget_usd=0.02)
    tracker.record(_event(cost=0.01))
    tracker.record(_event(cost=0.01))
    assert tracker.total().calls == 2


def test_usage_add():
    total = Usage()
    total.add(Usage(input_tokens=5, output_tokens=3, cost_usd=0.1, calls=1))
    assert total.total_tokens == 8


def test_reset_clears_events():
    tracker = UsageTracker()
    tracker.record(_event())
    tracker.reset()
    assert tracker.total().calls == 0
