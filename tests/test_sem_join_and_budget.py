"""Tests for the blocked semantic join and budget-capped execution."""

import pytest

from repro.data.datasets import enron as en
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.errors import ConfigurationError
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset

SCHEMA = Schema([Field("name", str), Field("text", str)])


def _join_registry():
    registry = IntentRegistry()
    registry.register("j.topic", ["records", "same", "topic"])
    return registry


def _side(prefix, topics):
    records = []
    for index, topic in enumerate(topics):
        # Pair-level truth: equality joins compare the two records' values
        # for the resolved intent ("j.topic" here).
        records.append(
            DataRecord(
                {"name": f"{prefix}{index}", "text": f"a document about {topic} " * 3},
                uid=f"{prefix}{index}",
                annotations={
                    "j.topic": topic,
                    DIFFICULTY_PREFIX + "j.topic": 0.05,
                },
            )
        )
    return records


def _run_join(method, seed=0):
    llm = SimulatedLLM(oracle=SemanticOracle(_join_registry()), seed=seed)
    left = Dataset.from_records(_side("l", ["gadgets"] * 4 + ["plants"] * 4), SCHEMA, "left")
    right_topics = ["gadgets"] * 4 + ["sports"] * 6 + ["cooking"] * 6
    right = Dataset.from_records(_side("r", right_topics), SCHEMA, "right")
    joined = left.sem_join(right, "the records discuss the same topic")
    config = QueryProcessorConfig(llm=llm, join_method=method, seed=seed)
    result = joined.run(config)
    return result, llm


def test_nested_join_judges_all_pairs():
    result, llm = _run_join("nested")
    judgments = [event for event in llm.tracker.events if event.tag.endswith(":join")]
    assert len(judgments) == 8 * 16


def test_blocked_join_judges_fewer_pairs():
    result_nested, llm_nested = _run_join("nested")
    result_blocked, llm_blocked = _run_join("blocked")
    nested_judgments = [
        e for e in llm_nested.tracker.events if e.tag.endswith(":join") and e.output_tokens
    ]
    blocked_judgments = [
        e for e in llm_blocked.tracker.events if e.tag.endswith(":join") and e.output_tokens
    ]
    assert len(blocked_judgments) < len(nested_judgments)


def test_nested_join_finds_equal_topic_pairs():
    result, _llm = _run_join("nested")
    # 4 gadget lefts x 4 gadget rights = 16 true pairs; low difficulty
    # keeps noise negligible.
    assert 14 <= len(result.records) <= 18


def test_blocked_join_keeps_high_similarity_matches():
    result, _llm = _run_join("blocked")
    # gadget-left x gadget-right pairs are lexically near-identical, so
    # blocking keeps them and the judge accepts them.
    assert len(result.records) >= 12


def test_join_method_validated():
    llm = SimulatedLLM(seed=0)
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=llm, join_method="psychic")


# ---------------------------------------------------------------------------
# Budget-capped execution
# ---------------------------------------------------------------------------


def test_budget_cap_truncates_run(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, max_cost_usd=0.02, seed=0
    )
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .run(config)
    )
    assert result.truncated
    # The cap stopped the run mid-batch: only part of the input ever entered
    # the filters, and spend lands within one call's price of the cap rather
    # than overshooting by a whole operator.
    filter_stats = [s for s in result.operator_stats if "Filter" in s.label]
    assert any(s.records_in < 250 for s in filter_stats)
    assert result.total_cost_usd < config.max_cost_usd + 0.01


def test_budget_cap_absent_runs_fully(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(llm=llm, optimize=False, seed=0)
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .run(config)
    )
    assert not result.truncated


def test_budget_cap_validation():
    llm = SimulatedLLM(seed=0)
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=llm, max_cost_usd=0.0)
