"""Tests for tools and the tool registry."""

import pytest

from repro.agents.tools import Tool, ToolRegistry, tool_from_function
from repro.errors import ToolError


def test_tool_call_counts():
    tool = Tool("t", "desc", lambda: "ok")
    assert tool() == "ok"
    tool()
    assert tool.calls == 2


def test_tool_wraps_exceptions():
    tool = Tool("boom", "desc", lambda: 1 / 0)
    with pytest.raises(ToolError) as excinfo:
        tool()
    assert "boom" in str(excinfo.value)


def test_tool_passes_through_tool_errors():
    def fails():
        raise ToolError("original")

    with pytest.raises(ToolError, match="original"):
        Tool("t", "d", fails)()


def test_tool_from_function_uses_docstring():
    def my_tool(x: int) -> int:
        """Doubles the input value."""
        return x * 2

    tool = tool_from_function(my_tool)
    assert tool.name == "my_tool"
    assert tool.description == "Doubles the input value."
    assert tool(3) == 6


def test_signature_rendered():
    tool = tool_from_function(lambda a, b=2: a + b, name="add")
    assert tool.signature().startswith("add(")


def test_registry_rejects_duplicates():
    registry = ToolRegistry([Tool("a", "d", lambda: 1)])
    with pytest.raises(ToolError):
        registry.add(Tool("a", "d", lambda: 2))


def test_registry_get_unknown_lists_available():
    registry = ToolRegistry([Tool("known", "d", lambda: 1)])
    with pytest.raises(ToolError) as excinfo:
        registry.get("unknown")
    assert "known" in str(excinfo.value)


def test_registry_namespace_and_describe():
    registry = ToolRegistry([Tool("alpha", "does alpha things", lambda: 1)])
    namespace = registry.as_namespace()
    assert namespace["alpha"]() == 1
    assert "does alpha things" in registry.describe()


def test_registry_reset_counters():
    tool = Tool("t", "d", lambda: 1)
    registry = ToolRegistry([tool])
    tool()
    registry.reset_counters()
    assert tool.calls == 0


def test_registry_len_and_names():
    registry = ToolRegistry([Tool("a", "d", lambda: 1), Tool("b", "d", lambda: 2)])
    assert len(registry) == 2
    assert registry.names() == ["a", "b"]
    assert "a" in registry
