"""Integration tests: single-trial versions of the paper's tables.

These run every Table 1 / Table 2 system once (the benchmarks run the full
three-trial protocol) and assert the qualitative relationships the paper's
evaluation section claims.
"""

import pytest

from repro.bench.systems import (
    enron_codeagent_plus_system,
    enron_codeagent_system,
    enron_compute_system,
    kramabench_codeagent_system,
    kramabench_compute_system,
    kramabench_semops_system,
)

pytestmark = pytest.mark.slow

SEED = 1


@pytest.fixture(scope="module")
def table1(legal_bundle):
    return {
        "semops": kramabench_semops_system(legal_bundle)(SEED),
        "codeagent": kramabench_codeagent_system(legal_bundle)(SEED),
        "compute": kramabench_compute_system(legal_bundle)(SEED),
    }


@pytest.fixture(scope="module")
def table2(enron_bundle):
    return {
        "codeagent": enron_codeagent_system(enron_bundle)(SEED),
        "codeagent_plus": enron_codeagent_plus_system(enron_bundle)(SEED),
        "compute": enron_compute_system(enron_bundle)(SEED),
    }


# --- Table 1 ---------------------------------------------------------------


def test_compute_near_exact_on_kramabench(table1):
    assert table1["compute"].quality["pct_err"] < 2.0


def test_codeagent_cheapest_on_kramabench(table1):
    assert table1["codeagent"].cost_usd < table1["semops"].cost_usd
    assert table1["codeagent"].cost_usd < table1["compute"].cost_usd


def test_codeagent_fastest_on_kramabench(table1):
    assert table1["codeagent"].time_s < table1["semops"].time_s
    assert table1["codeagent"].time_s < table1["compute"].time_s


def test_semops_processes_every_file(table1):
    # Iterator semantics: the handcrafted program judged all 132 files.
    assert table1["semops"].detail["n_records"] >= 1


def test_compute_slowest_but_most_accurate(table1):
    assert table1["compute"].time_s > table1["semops"].time_s
    assert table1["compute"].quality["pct_err"] <= table1["semops"].quality["pct_err"]


# --- Table 2 ---------------------------------------------------------------


def test_codeagent_low_recall_decent_precision(table2):
    assert table2["codeagent"].quality["recall"] < 0.6
    assert table2["codeagent"].quality["precision"] > 0.7


def test_codeagent_plus_fixes_recall_at_high_cost(table2):
    assert table2["codeagent_plus"].quality["recall"] > 0.9
    assert table2["codeagent_plus"].cost_usd > 10 * table2["codeagent"].cost_usd


def test_compute_matches_plus_quality_cheaper(table2):
    assert abs(
        table2["compute"].quality["f1"] - table2["codeagent_plus"].quality["f1"]
    ) < 0.08
    assert table2["compute"].cost_usd < 0.5 * table2["codeagent_plus"].cost_usd
    assert table2["compute"].time_s < 0.6 * table2["codeagent_plus"].time_s


def test_compute_f1_gain_over_codeagent(table2):
    gain = table2["compute"].quality["f1"] / table2["codeagent"].quality["f1"]
    assert gain > 1.4
